"""Decision records: immutability, picklability, exact JSON rendering."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.explain import (
    RECORD_KINDS,
    ArbitrageAssessmentRecord,
    BuildOutcomeRecord,
    DeltaTerm,
    EpochDeltaRecord,
    OptimizerSolveRecord,
    PolicyTriggerRecord,
    record_to_json,
)
from repro.money import Money


def _delta_record() -> EpochDeltaRecord:
    return EpochDeltaRecord(
        epoch=3,
        policy="regret(>0.05)",
        total=Money("10.123456789012345678"),
        previous_total=Money("9.000000000000000001"),
        terms=(
            DeltaTerm(cause="operating", amount=Money("1.2")),
            DeltaTerm(cause="builds", amount=Money("-0.076543210987654323")),
        ),
    )


SAMPLES = (
    PolicyTriggerRecord(
        epoch=0,
        policy="periodic(4)",
        trigger="initial",
        reoptimized=True,
        regret=0.0,
        streak=0,
        subset=("V1",),
        previous=None,
    ),
    OptimizerSolveRecord(
        epoch=1,
        policy="periodic(4)",
        algorithm="greedy",
        subset=("V1", "V4"),
        warm_start=("V1",),
        added=("V4",),
        dropped=(),
        evaluations=12,
        priced=7,
        cache_hits=5,
    ),
    ArbitrageAssessmentRecord(
        epoch=2,
        policy="arbitrage",
        target="flat-rate",
        stay_cost=Money("5"),
        move_cost=Money("4"),
        savings_per_epoch=Money("1"),
        switch_cost=Money("3"),
        amortized_savings=Money("6"),
        net_savings=Money("3"),
        horizon=6,
        worthwhile=True,
        streak=1,
        hold=2,
        migrated=False,
    ),
    BuildOutcomeRecord(
        epoch=4,
        policy="never",
        landed=("V2",),
        cancelled=(),
        build_cost=Money("0.25"),
        cancelled_cost=Money("0"),
        latency_months=0.5,
    ),
    _delta_record(),
)


class TestRecordContracts:
    def test_every_kind_is_registered(self):
        assert {type(r).kind for r in SAMPLES} == set(RECORD_KINDS)

    def test_records_are_frozen(self):
        for record in SAMPLES:
            with pytest.raises(dataclasses.FrozenInstanceError):
                object.__setattr__  # appease linters; the real poke:
                setattr(record, "epoch", 99)

    def test_records_pickle_round_trip(self):
        for record in SAMPLES:
            clone = pickle.loads(pickle.dumps(record))
            assert clone == record


class TestDeltaFold:
    def test_delta_folds_without_a_seed(self):
        """The fold is terms[0] + terms[1] + ...; no ZERO seed that
        could mask a coarse exponent (the byte-exactness rule 2)."""
        record = _delta_record()
        assert repr(record.delta()) == repr(
            Money("1.2") + Money("-0.076543210987654323")
        )

    def test_single_term_delta_is_the_term(self):
        record = dataclasses.replace(
            _delta_record(),
            terms=(DeltaTerm(cause="operating", amount=Money("0E-19")),),
        )
        assert repr(record.delta()) == repr(Money("0E-19"))


class TestJsonRendering:
    def test_kind_leads_and_money_is_exact(self):
        entry = record_to_json(_delta_record())
        assert list(entry)[0] == "kind"
        assert entry["kind"] == "epoch-delta"
        # Money is serialized as the exact decimal string, not the
        # cent-quantized display form.
        assert entry["total"] == "10.123456789012345678"
        assert entry["terms"][0]["amount"] == "1.2"

    def test_tuples_become_lists(self):
        entry = record_to_json(SAMPLES[1])
        assert entry["subset"] == ["V1", "V4"]
        assert entry["dropped"] == []

    def test_every_sample_is_json_clean(self):
        import json

        for record in SAMPLES:
            json.dumps(record_to_json(record), sort_keys=True)
