"""The ambient explain seam: NULL passivity, scoping, merge order."""

from __future__ import annotations

from repro.explain import (
    NULL,
    DeltaTerm,
    EpochDeltaRecord,
    ExplainLog,
    activate,
    current,
    explain_lines,
    install,
)
from repro.money import Money


def _record(epoch: int, trial=None) -> EpochDeltaRecord:
    return EpochDeltaRecord(
        epoch=epoch,
        policy="never",
        total=Money("1"),
        previous_total=None,
        terms=(DeltaTerm(cause="operating", amount=Money("1")),),
        trial=trial,
    )


class TestNullSeam:
    def test_null_is_ambient_by_default(self):
        assert current() is NULL
        assert not NULL.enabled

    def test_null_swallows_everything(self):
        NULL.emit(_record(0))
        with NULL.scope(3, "never"):
            assert NULL.context == (None, "")
        # Nothing grew anywhere: NULL has no entry storage at all.
        assert not hasattr(NULL, "_entries")

    def test_null_never_calls_deferred_thunks(self):
        calls = []
        NULL.emit_deferred(lambda: calls.append("ran"))
        assert calls == []

    def test_activate_restores_previous(self):
        log = ExplainLog()
        with activate(log) as active:
            assert active is log
            assert current() is log
        assert current() is NULL

    def test_install_returns_previous(self):
        log = ExplainLog()
        previous = install(log)
        try:
            assert previous is NULL
            assert current() is log
        finally:
            install(previous)
        assert current() is NULL


class TestExplainLog:
    def test_scope_sets_and_restores_context(self):
        log = ExplainLog()
        assert log.context == (None, "")
        with log.scope(5, "periodic(4)"):
            assert log.context == (5, "periodic(4)")
        assert log.context == (None, "")

    def test_emit_keeps_order(self):
        log = ExplainLog()
        log.emit(_record(0))
        log.emit(_record(1))
        assert [r.epoch for r in log.records] == [0, 1]

    def test_deferred_slots_keep_emission_order(self):
        log = ExplainLog()
        log.emit(_record(0))
        log.emit_deferred(lambda: _record(1))
        log.emit(_record(2))
        assert [r.epoch for r in log.records] == [0, 1, 2]

    def test_deferred_thunk_resolves_exactly_once(self):
        calls = []

        def thunk():
            calls.append("ran")
            return _record(4)

        log = ExplainLog()
        log.emit_deferred(thunk)
        assert calls == [], "emission must not run the thunk"
        assert [r.epoch for r in log.records] == [4]
        assert len(log.entries) == 1
        assert log.snapshot()[0]["epoch"] == 4
        assert calls == ["ran"]

    def test_deferred_slots_export_like_eager_ones(self):
        eager, lazy = ExplainLog(), ExplainLog()
        eager.emit(_record(3))
        lazy.emit_deferred(lambda: _record(3))
        assert explain_lines(lazy) == explain_lines(eager)

    def test_snapshot_is_plain_json_dicts(self):
        log = ExplainLog()
        log.emit(_record(0))
        snapshot = log.snapshot()
        assert isinstance(snapshot[0], dict)
        assert snapshot[0]["kind"] == "epoch-delta"

    def test_merge_stamps_trial_and_preserves_order(self):
        worker = ExplainLog()
        worker.emit(_record(0))
        worker.emit(_record(1))
        parent = ExplainLog()
        parent.merge(worker.snapshot(), trial=7)
        entries = parent.snapshot()
        assert [e["trial"] for e in entries] == [7, 7]
        assert [e["epoch"] for e in entries] == [0, 1]

    def test_lines_are_compact_sorted_json(self):
        log = ExplainLog()
        log.emit(_record(2))
        (line,) = explain_lines(log)
        assert line.startswith('{"')
        assert ": " not in line and ", " not in line
        # sort_keys: "epoch" precedes "kind" precedes "policy".
        assert line.index('"epoch"') < line.index('"kind"') < line.index(
            '"policy"'
        )
