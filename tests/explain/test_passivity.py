"""Explain is strictly passive: recording never moves a single byte.

Two directions:

* **Disabled is free of state** — with no log activated (the
  default), instrumented code takes the NULL path: no chain is
  allocated, nothing is emitted, and runs behave exactly as before
  the provenance layer existed.
* **Enabled never perturbs the books** — a run with a live
  :class:`~repro.explain.ExplainLog` produces ledgers that are
  ``repr``-identical to a run without one, cache-statistics counters
  included: in-run instrumentation only parks deferred closures over
  frozen facts, so not a single extra pricing flows through the
  shared evaluation cache until the log is first *read* — and by
  then every ledger row is a frozen record stamped during the run,
  beyond reach of the resolution's cache traffic.
"""

from __future__ import annotations

from repro.explain import ExplainLog, activate
from repro.simulate import NeverReselect, make_policy
from repro.simulate.presets import (
    DRIFT_MIN_EPOCHS,
    async_sales_simulator,
    drifting_sales_simulator,
    multi_tenant_sales_simulator,
)


def _billed_view(ledger):
    return [repr(record) for record in ledger.records]


def _tenant_view(fleet_ledger):
    return {
        name: [repr(r) for r in tenant.records]
        for name, tenant in fleet_ledger.tenants.items()
    }


class TestEnabledNeverPerturbs:
    def test_sync_ledger_is_byte_identical(self):
        baseline = drifting_sales_simulator(
            n_epochs=DRIFT_MIN_EPOCHS, n_rows=8_000, dataset_gb=2.0
        ).run(make_policy("regret"))
        with activate(ExplainLog()) as log:
            recorded = drifting_sales_simulator(
                n_epochs=DRIFT_MIN_EPOCHS, n_rows=8_000, dataset_gb=2.0
            ).run(make_policy("regret"))
        assert log.records, "the instrumented run must actually record"
        assert _billed_view(recorded) == _billed_view(baseline)
        assert recorded.summary() == baseline.summary()

    def test_async_ledger_is_byte_identical(self):
        baseline = async_sales_simulator(
            n_epochs=DRIFT_MIN_EPOCHS, n_rows=8_000, dataset_gb=2.0
        ).run(make_policy("periodic", period=4))
        with activate(ExplainLog()):
            recorded = async_sales_simulator(
                n_epochs=DRIFT_MIN_EPOCHS, n_rows=8_000, dataset_gb=2.0
            ).run(make_policy("periodic", period=4))
        assert _billed_view(recorded) == _billed_view(baseline)

    def test_tenant_ledgers_are_byte_identical(self):
        baseline = multi_tenant_sales_simulator(
            n_tenants=2, n_epochs=17, n_rows=6_000, dataset_gb=2.0
        ).run(NeverReselect())
        with activate(ExplainLog()):
            recorded = multi_tenant_sales_simulator(
                n_tenants=2, n_epochs=17, n_rows=6_000, dataset_gb=2.0
            ).run(NeverReselect())
        assert _tenant_view(recorded) == _tenant_view(baseline)
        assert _billed_view(recorded.fleet) == _billed_view(baseline.fleet)


class TestDisabledAllocatesNothing:
    def test_disabled_run_emits_nothing(self):
        """A run with no log active leaves the (later-activated) log
        empty: instrumentation reads the seam at call time, and the
        NULL object it found swallowed everything."""
        simulator = drifting_sales_simulator(
            n_epochs=DRIFT_MIN_EPOCHS, n_rows=8_000, dataset_gb=2.0
        )
        simulator.run(NeverReselect())
        with activate(ExplainLog()) as log:
            pass
        assert log.records == ()
        assert log.snapshot() == []
