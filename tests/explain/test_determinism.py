"""The export is deterministic: --jobs and --shards never move a byte.

The JSON-lines export a run writes must be byte-identical however the
work was parallelized: Monte Carlo trials across worker processes
(explain snapshots are folded in trial order, whatever order workers
finish in) and sharded attribution across tenant shards (the fold is
fed in the parent from the globally-ordered merge stream).  The CLI
round trip — ``simulate --explain-out`` then the ``explain`` query
family — is exercised end to end on the same files.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.explain import ExplainLog, activate, explain_lines
from repro.simulate import (
    MonteCarloConfig,
    NeverReselect,
    run_monte_carlo,
)
from repro.simulate.presets import multi_tenant_sales_simulator

MC_CONFIG = MonteCarloConfig(n_trials=3, n_epochs=6, n_rows=4_000, seed=11)


def _mc_lines(jobs: int):
    with activate(ExplainLog()) as log:
        run_monte_carlo(MC_CONFIG, jobs=jobs)
    return explain_lines(log)


def _sharded_lines(shards: int, jobs: int = 1):
    simulator = multi_tenant_sales_simulator(
        n_tenants=3, n_epochs=17, n_rows=6_000, dataset_gb=2.0
    )
    with activate(ExplainLog()) as log:
        simulator.run_sharded(NeverReselect(), shards=shards, jobs=jobs)
    return explain_lines(log)


class TestMonteCarloInvariance:
    def test_jobs_never_change_the_export(self):
        serial = _mc_lines(jobs=1)
        parallel = _mc_lines(jobs=4)
        assert serial, "Monte Carlo must emit explain records"
        assert serial == parallel

    def test_trials_are_stamped_in_order(self):
        lines = _mc_lines(jobs=1)
        import json

        trials = [json.loads(line)["trial"] for line in lines]
        assert trials == sorted(trials)
        assert set(trials) == {0, 1, 2}


class TestShardedInvariance:
    def test_shards_never_change_the_export(self):
        narrow = _sharded_lines(shards=1)
        wide = _sharded_lines(shards=8)
        assert narrow, "sharded runs must emit explain records"
        assert narrow == wide

    def test_worker_processes_never_change_the_export(self):
        serial = _sharded_lines(shards=4, jobs=1)
        parallel = _sharded_lines(shards=4, jobs=2)
        assert serial == parallel


class TestCliRoundTrip:
    @pytest.fixture(scope="class")
    def export(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("explain") / "run.jsonl"
        code = main(
            [
                "simulate",
                "--epochs",
                "19",
                "--policy",
                "regret",
                "--quiet",
                "--rows",
                "8000",
                "--explain-out",
                str(path),
            ]
        )
        assert code == 0
        return path

    def test_export_rewrites_identically(self, export, tmp_path):
        twin = tmp_path / "twin.jsonl"
        code = main(
            [
                "simulate",
                "--epochs",
                "19",
                "--policy",
                "regret",
                "--quiet",
                "--rows",
                "8000",
                "--explain-out",
                str(twin),
            ]
        )
        assert code == 0
        assert twin.read_bytes() == export.read_bytes()

    def test_why_bill(self, export, capsys):
        assert main(["explain", "why-bill", str(export), "--epoch", "5"]) == 0
        out = capsys.readouterr().out
        assert "epoch 5" in out and "operating" in out

    def test_why_reselect(self, export, capsys):
        assert main(["explain", "why-reselect", str(export)]) == 0
        out = capsys.readouterr().out
        assert "trigger=initial" in out

    def test_why_view(self, export, capsys):
        import json

        first_added = None
        for line in export.read_text().splitlines():
            entry = json.loads(line)
            if entry.get("kind") == "optimizer-solve" and entry["added"]:
                first_added = entry["added"][0]
                break
        assert first_added is not None
        assert main(["explain", "why-view", str(export), first_added]) == 0
        assert "added by" in capsys.readouterr().out

    def test_diff(self, export, capsys):
        code = main(
            ["explain", "diff", str(export), "--from", "2", "--to", "7"]
        )
        assert code == 0
        assert "epoch 2 -> 7" in capsys.readouterr().out

    def test_bad_queries_exit_nonzero(self, export, capsys):
        assert main(["explain", "why-bill", str(export), "--epoch", "99"]) == 1
        assert main(["explain", "why-view", str(export), "NOPE"]) == 1
        assert (
            main(["explain", "diff", str(export), "--from", "7", "--to", "2"])
            == 1
        )
        assert main(["explain", "why-bill", "/no/such/file", "--epoch", "1"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
