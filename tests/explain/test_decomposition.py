"""Byte-exactness of the delta decomposition, presets and random fleets.

The contract under test (see :mod:`repro.explain.delta`): every
:class:`~repro.explain.records.EpochDeltaRecord`'s terms fold to a
``Money`` whose ``repr`` equals the ledger's own epoch-over-epoch
delta — trailing zeros, exponent and all — and the causal sub-terms of
the ``operating`` term close value-exactly (``==``) against it.  This
is pinned live (records emitted by an instrumented run) for every
preset regime — sync, async builds, arbitrage, multi-tenant, elastic —
and post-hoc (:func:`~repro.explain.decompose_fleet` /
:func:`~repro.explain.decompose_tenant`) over ~50 seeded random
fleets.
"""

from __future__ import annotations

import pytest

from repro.explain import (
    FLEET_CAUSES,
    TENANT_CAUSES,
    ExplainLog,
    activate,
    decompose_fleet,
    decompose_tenant,
)
from repro.money import Money
from repro.optimizer.problem import SubsetEvaluationCache
from repro.simulate import NeverReselect, make_policy
from repro.simulate.presets import (
    DRIFT_MIN_EPOCHS,
    async_sales_simulator,
    default_market,
    drifting_sales_simulator,
    multi_tenant_sales_simulator,
)

RANDOM_SEEDS = range(50)


def _assert_exact(delta_records, ledger_records, causes):
    """Each record's terms fold repr-equal to the ledger's own delta."""
    assert len(delta_records) == len(ledger_records)
    previous = None
    for record, epoch in zip(delta_records, ledger_records):
        # Rule 1: every component term is present, even when zero.
        assert tuple(t.cause for t in record.terms) == tuple(causes)
        if previous is None:
            expected = epoch.total_cost
            assert record.previous_total is None
        else:
            expected = epoch.total_cost - previous.total_cost
            assert repr(record.previous_total) == repr(previous.total_cost)
        assert repr(record.delta()) == repr(expected), (
            f"epoch {record.epoch}: terms fold to {record.delta()!r}, "
            f"ledger says {expected!r}"
        )
        assert repr(record.total) == repr(epoch.total_cost)
        _assert_subterms_close(record)
        previous = epoch


def _assert_subterms_close(record):
    """Causal sub-terms close value-exactly against the parent term."""
    for term in record.terms:
        if not term.subterms:
            continue
        folded = term.subterms[0].amount
        for sub in term.subterms[1:]:
            folded = folded + sub.amount
        assert folded == term.amount, (
            f"epoch {record.epoch}: {term.cause} sub-terms sum to "
            f"{folded!r}, parent term is {term.amount!r}"
        )


def _deltas(log, tenant=None):
    return [
        r
        for r in log.records
        if type(r).kind == "epoch-delta" and r.tenant == tenant
    ]


class TestPresetRegimes:
    """Live emission is byte-exact in every simulation regime."""

    @pytest.mark.parametrize("policy_name", ["never", "periodic", "regret"])
    def test_sync_drifting(self, policy_name):
        simulator = drifting_sales_simulator(
            n_epochs=DRIFT_MIN_EPOCHS, n_rows=8_000, dataset_gb=2.0
        )
        with activate(ExplainLog()) as log:
            ledger = simulator.run(make_policy(policy_name))
        _assert_exact(_deltas(log), ledger.records, FLEET_CAUSES)
        triggers = [r for r in log.records if type(r).kind == "policy-trigger"]
        assert len(triggers) == len(ledger.records)
        assert triggers[0].trigger == "initial"

    def test_async_builds(self):
        simulator = async_sales_simulator(
            n_epochs=DRIFT_MIN_EPOCHS, n_rows=8_000, dataset_gb=2.0
        )
        with activate(ExplainLog()) as log:
            ledger = simulator.run(make_policy("periodic", period=4))
        _assert_exact(_deltas(log), ledger.records, FLEET_CAUSES)
        outcomes = [r for r in log.records if type(r).kind == "build-outcome"]
        assert outcomes, "async runs must record build outcomes"

    def test_arbitrage_market(self):
        simulator = drifting_sales_simulator(
            n_epochs=DRIFT_MIN_EPOCHS,
            n_rows=8_000,
            dataset_gb=2.0,
            market=default_market(),
        )
        from repro.simulate.arbitrage import ArbitrageAware

        policy = ArbitrageAware(
            make_policy("periodic", period=4), horizon=6, hysteresis=1
        )
        with activate(ExplainLog()) as log:
            ledger = simulator.run(policy)
        _assert_exact(_deltas(log), ledger.records, FLEET_CAUSES)
        quotes = [
            r for r in log.records if type(r).kind == "arbitrage-assessment"
        ]
        assert quotes, "arbitrage runs must record per-book assessments"

    def test_multi_tenant_fleet_and_tenants(self):
        simulator = multi_tenant_sales_simulator(
            n_tenants=2, n_epochs=17, n_rows=6_000, dataset_gb=2.0
        )
        with activate(ExplainLog()) as log:
            ledger = simulator.run(NeverReselect())
        _assert_exact(_deltas(log), ledger.fleet.records, FLEET_CAUSES)
        for name, tenant_ledger in ledger.tenants.items():
            _assert_exact(
                _deltas(log, tenant=name),
                tenant_ledger.records,
                TENANT_CAUSES,
            )


class TestRandomFleets:
    """Post-hoc decomposition is byte-exact over ~50 generated fleets."""

    def test_fifty_seeded_fleets(self, random_fleet_factory):
        cache = SubsetEvaluationCache()
        for seed in RANDOM_SEEDS:
            fleet = random_fleet_factory(seed)
            ledger = fleet.simulator(cache=cache).run(NeverReselect())
            _assert_exact(
                decompose_fleet(ledger.fleet),
                ledger.fleet.records,
                FLEET_CAUSES,
            )
            for tenant_ledger in ledger.tenants.values():
                _assert_exact(
                    decompose_tenant(tenant_ledger),
                    tenant_ledger.records,
                    TENANT_CAUSES,
                )

    def test_live_emission_matches_posthoc(self, random_fleet_factory):
        """The streamed fold and the post-hoc walk produce the same
        records for the same run — tenant by tenant, epoch by epoch."""
        cache = SubsetEvaluationCache()
        fleet = random_fleet_factory(0)
        with activate(ExplainLog()) as log:
            ledger = fleet.simulator(cache=cache).run(NeverReselect())
        for name, tenant_ledger in ledger.tenants.items():
            live = _deltas(log, tenant=name)
            posthoc = list(
                decompose_tenant(tenant_ledger, policy=live[0].policy)
            )
            assert live == posthoc


class TestChainSubterms:
    """The telescoping operating-cost chain, in isolation."""

    def test_empty_chain_is_pure_reselection(self):
        from repro.explain import chain_subterms

        (term,) = chain_subterms(Money("3"), (), Money("5"))
        assert term.cause == "re-selection"
        assert repr(term.amount) == repr(Money("5") - Money("3"))

    def test_chain_telescopes_and_closes(self):
        from repro.explain import chain_subterms

        subterms = chain_subterms(
            Money("10"),
            (
                ("carry-over", "", Money("10")),
                ("drift", "+queries[D1]", Money("13.5")),
                ("price", "reprice", Money("12")),
            ),
            Money("11.25"),
        )
        # Zero carry-over is elided; drift, price, residual remain.
        assert [t.cause for t in subterms] == [
            "drift",
            "price",
            "re-selection",
        ]
        folded = subterms[0].amount
        for term in subterms[1:]:
            folded = folded + term.amount
        assert folded == Money("11.25") - Money("10")

    def test_nonzero_carry_over_is_kept(self):
        from repro.explain import chain_subterms

        subterms = chain_subterms(
            Money("10"),
            (("carry-over", "builds landed", Money("9")),),
            Money("9.5"),
        )
        assert [t.cause for t in subterms] == ["carry-over", "re-selection"]
        assert subterms[0].amount == Money("-1")
