"""Ambient telemetry objects, spans, and the three exporters."""

from __future__ import annotations

import io
import json

from repro import telemetry
from repro.telemetry import (
    NULL,
    MetricsRegistry,
    Telemetry,
    activate,
    current,
    install,
    prometheus_text,
    summary_table,
    write_trace,
)


class TestAmbient:
    def test_null_is_the_default(self):
        assert current() is NULL
        assert not current().enabled

    def test_activate_scopes_the_collector(self):
        with activate(Telemetry()) as collector:
            assert current() is collector
            assert collector.enabled
        assert current() is NULL

    def test_activate_without_argument_makes_a_fresh_collector(self):
        with activate() as collector:
            collector.inc("x.y")
            assert collector.registry.counter("x.y") == 1
        assert current() is NULL

    def test_install_returns_the_previous_object(self):
        collector = Telemetry()
        previous = install(collector)
        try:
            assert previous is NULL
            assert current() is collector
        finally:
            install(previous)
        assert current() is NULL

    def test_activate_nests(self):
        with activate(Telemetry()) as outer:
            with activate(Telemetry()) as inner:
                assert current() is inner
            assert current() is outer


class TestNullTelemetry:
    def test_every_recording_method_is_a_no_op(self):
        NULL.inc("x.y")
        NULL.gauge_max("x.y", 3)
        NULL.observe("x.y", 1.5)
        with NULL.span("x.y", epoch=3):
            pass
        # NullTelemetry has no registry at all: nothing can accumulate.
        assert not hasattr(NULL, "registry")

    def test_span_returns_a_shared_context_manager(self):
        assert NULL.span("a") is NULL.span("b")


class TestSpans:
    def test_span_records_count_and_seconds(self):
        collector = Telemetry()
        with collector.span("epoch.decide", epoch=0):
            pass
        stats = collector.registry.spans["epoch.decide"]
        assert stats.count == 1
        assert stats.seconds >= 0.0

    def test_trace_off_by_default(self):
        collector = Telemetry()
        with collector.span("epoch.decide"):
            pass
        assert collector.trace_events == []

    def test_trace_keeps_attrs_start_and_duration(self):
        collector = Telemetry(trace=True)
        with collector.span("epoch.decide", epoch=7, policy="regret"):
            pass
        (event,) = collector.trace_events
        assert event["name"] == "epoch.decide"
        assert event["epoch"] == 7
        assert event["policy"] == "regret"
        assert event["seconds"] >= 0.0
        assert event["start"] >= 0.0


class TestPrometheusText:
    def test_empty_registry_exports_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_families_and_sorting(self):
        registry = MetricsRegistry()
        registry.inc("cache.hits", 613)
        registry.inc("optimizer.solves", 19, algorithm="greedy")
        registry.gauge_max("builds.queue_depth", 2)
        registry.observe("simulator.epoch_cost", 2.5)
        registry.record_span("epoch.decide", 0.5)
        text = prometheus_text(registry)
        assert text.endswith("\n")
        assert "repro_cache_hits_total 613" in text
        assert 'repro_optimizer_solves_total{algorithm="greedy"} 19' in text
        assert "repro_builds_queue_depth 2" in text
        assert "repro_simulator_epoch_cost_count 1" in text
        assert "repro_simulator_epoch_cost_sum 2.5" in text
        assert 'repro_span_calls_total{span="epoch.decide"} 1' in text
        # Wall-clock span seconds must never reach the deterministic dump.
        assert "0.5" not in text

    def test_dump_is_reproducible_whatever_insertion_order(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.inc("a.x")
        first.inc("b.y")
        second.inc("b.y")
        second.inc("a.x")
        assert prometheus_text(first) == prometheus_text(second)


class TestTraceExport:
    def test_write_trace_emits_one_json_object_per_span(self):
        collector = Telemetry(trace=True)
        with collector.span("outer"):
            with collector.span("inner", epoch=1):
                pass
        stream = io.StringIO()
        assert write_trace(collector, stream) == 2
        lines = stream.getvalue().splitlines()
        events = [json.loads(line) for line in lines]
        # Completion order: the inner span finishes first.
        assert [e["name"] for e in events] == ["inner", "outer"]


class TestSummaryTable:
    def test_empty_registry_says_so(self):
        assert "(no telemetry recorded)" in summary_table(MetricsRegistry())

    def test_sections_appear_when_populated(self):
        registry = MetricsRegistry()
        registry.inc("cache.hits", 3)
        registry.gauge_max("builds.queue_depth", 2)
        registry.observe("simulator.epoch_cost", 1.5)
        registry.record_span("epoch.decide", 0.002)
        table = summary_table(registry)
        for heading in ("spans:", "counters:", "gauges", "histograms:"):
            assert heading in table
        assert "cache.hits = 3" in table


class TestPackageSurface:
    def test_the_docstring_quickstart_works(self):
        """The usage sketch in repro.telemetry.core's docstring."""
        with telemetry.activate(telemetry.Telemetry()) as t:
            t.inc("epochs.total")
            assert t.registry.counter("epochs.total") == 1
