"""MetricsRegistry: recording, exact sums, deterministic merging."""

from __future__ import annotations

from decimal import Decimal

import pytest

from repro.money import Money
from repro.telemetry import MetricsRegistry, TelemetryError, prometheus_text


class TestCounters:
    def test_increment_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.inc("cache.hits")
        registry.inc("cache.hits")
        assert registry.counter("cache.hits") == 2

    def test_increment_by_value(self):
        registry = MetricsRegistry()
        registry.inc("cache.hits", 40)
        registry.inc("cache.hits", 2)
        assert registry.counter("cache.hits") == 42

    def test_label_order_is_irrelevant(self):
        """``a=1, b=2`` and ``b=2, a=1`` are the same series."""
        registry = MetricsRegistry()
        registry.inc("optimizer.solves", a="1", b="2")
        registry.inc("optimizer.solves", b="2", a="1")
        assert registry.counter("optimizer.solves", a="1", b="2") == 2
        assert len(registry.counters) == 1

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("never.touched") == 0

    def test_empty_name_rejected(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().inc("")


class TestGauges:
    def test_gauge_keeps_the_high_water_mark(self):
        registry = MetricsRegistry()
        for depth in (1, 3, 2):
            registry.gauge_max("builds.queue_depth", depth)
        assert registry.gauge("builds.queue_depth") == 3

    def test_unknown_gauge_reads_zero(self):
        assert MetricsRegistry().gauge("never.touched") == 0.0


class TestHistograms:
    def test_money_observations_sum_exactly(self):
        """The Decimal-safe property: cents never drift."""
        registry = MetricsRegistry()
        registry.observe("simulator.epoch_cost", Money("0.10"))
        registry.observe("simulator.epoch_cost", Money("0.20"))
        hist = registry.histogram("simulator.epoch_cost")
        assert hist.total == Decimal("0.30")  # not 0.30000000000000004

    def test_float_observations_sum_via_repr(self):
        registry = MetricsRegistry()
        registry.observe("x.y", 0.1)
        registry.observe("x.y", 0.2)
        assert registry.histogram("x.y").total == Decimal("0.3")

    def test_count_min_max_mean(self):
        registry = MetricsRegistry()
        for value in (4, 1, 7):
            registry.observe("builds.latency_months", value)
        hist = registry.histogram("builds.latency_months")
        assert hist.count == 3
        assert hist.minimum == 1.0
        assert hist.maximum == 7.0
        assert hist.mean == pytest.approx(4.0)

    def test_empty_histogram_reads_empty(self):
        hist = MetricsRegistry().histogram("never.touched")
        assert hist.count == 0
        assert hist.mean == 0.0


class TestSubsystems:
    def test_leading_segment_names_the_subsystem(self):
        registry = MetricsRegistry()
        registry.inc("cache.hits")
        registry.inc("cache.subsets_priced")
        registry.gauge_max("builds.queue_depth", 2)
        registry.observe("simulator.epoch_cost", 1)
        assert registry.subsystems() == ("builds", "cache", "simulator")

    def test_spans_do_not_count_as_a_subsystem(self):
        registry = MetricsRegistry()
        registry.record_span("epoch.decide", 0.01)
        assert registry.subsystems() == ()
        assert len(registry) == 1


def _worker_registry(trial: int) -> MetricsRegistry:
    """What one Monte Carlo worker would ship back for ``trial``."""
    registry = MetricsRegistry()
    registry.inc("cache.hits", 10 * (trial + 1))
    registry.gauge_max("builds.queue_depth", trial)
    registry.observe("simulator.epoch_cost", Money("1.25"))
    registry.record_span("epoch.decide", 0.001 * trial)
    return registry


class TestMerge:
    def test_counters_add_gauges_max_histograms_combine(self):
        parent = MetricsRegistry()
        for trial in range(3):
            parent.merge(_worker_registry(trial).snapshot())
        assert parent.counter("cache.hits") == 60
        assert parent.gauge("builds.queue_depth") == 2
        hist = parent.histogram("simulator.epoch_cost")
        assert hist.count == 3
        assert hist.total == Decimal("3.75")
        assert parent.spans["epoch.decide"].count == 3

    def test_merge_order_does_not_matter_for_the_export(self):
        """The --jobs invariance property at the registry level."""
        snapshots = [_worker_registry(t).snapshot() for t in range(4)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snapshots:
            forward.merge(snap)
        for snap in reversed(snapshots):
            backward.merge(snap)
        assert prometheus_text(forward) == prometheus_text(backward)

    def test_snapshot_round_trips_through_pickle_types(self):
        """Snapshots are plain dicts: Decimals travel as strings."""
        snapshot = _worker_registry(1).snapshot()
        assert isinstance(snapshot["histograms"], dict)
        for entry in snapshot["histograms"].values():
            assert isinstance(entry["total"], str)

    def test_merging_garbage_raises(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().merge({"not": "a snapshot"})
