"""Regressions: exposition-format escaping and span min/max extremes."""

from __future__ import annotations

from repro.telemetry import MetricsRegistry, prometheus_text, summary_table


class TestLabelEscaping:
    """Prometheus label values must escape ``\\``, ``"`` and newlines.

    Before the fix, a label value containing any of the three slipped
    into the dump raw, producing an exposition line no scraper could
    parse back to the original value.
    """

    def test_backslash_is_doubled(self):
        registry = MetricsRegistry()
        registry.inc("paths.seen", path="C:\\temp\\x")
        assert 'path="C:\\\\temp\\\\x"' in prometheus_text(registry)

    def test_quote_is_escaped(self):
        registry = MetricsRegistry()
        registry.inc("events.seen", detail='drop "Q4"')
        assert 'detail="drop \\"Q4\\""' in prometheus_text(registry)

    def test_newline_becomes_literal_backslash_n(self):
        registry = MetricsRegistry()
        registry.inc("events.seen", detail="line1\nline2")
        dump = prometheus_text(registry)
        assert 'detail="line1\\nline2"' in dump
        # The dump itself stays one line per series.
        assert len(dump.splitlines()) == 1

    def test_escape_order_backslash_first(self):
        """Escaping the backslash first keeps ``\\n`` in the input from
        double-escaping into ``\\\\n`` incorrectly ordered output."""
        registry = MetricsRegistry()
        registry.inc("events.seen", detail='\\"')
        assert 'detail="\\\\\\""' in prometheus_text(registry)

    def test_span_name_label_is_escaped(self):
        registry = MetricsRegistry()
        registry.record_span('step "fast"\n', 0.1)
        assert 'span="step \\"fast\\"\\n"' in prometheus_text(registry)


class TestSpanExtremes:
    def test_record_tracks_min_and_max(self):
        registry = MetricsRegistry()
        registry.record_span("epoch.step", 0.3)
        registry.record_span("epoch.step", 0.1)
        registry.record_span("epoch.step", 0.2)
        stats = registry.spans["epoch.step"]
        assert stats.minimum == 0.1
        assert stats.maximum == 0.3
        assert stats.count == 3

    def test_merge_takes_min_of_mins_and_max_of_maxes(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.record_span("solve", 0.5)
        left.record_span("solve", 0.9)
        right.record_span("solve", 0.2)
        right.record_span("solve", 0.7)
        left.merge(right.snapshot())
        stats = left.spans["solve"]
        assert stats.count == 4
        assert stats.minimum == 0.2
        assert stats.maximum == 0.9

    def test_merge_accepts_legacy_two_tuple_snapshots(self):
        """Snapshots taken before min/max tracking carried only
        ``(count, seconds)``; merging one must still work and leave
        this side's extremes alone."""
        registry = MetricsRegistry()
        registry.record_span("solve", 0.4)
        registry.merge(
            {
                "counters": {},
                "gauges": {},
                "histograms": {},
                "spans": {"solve": (2, 1.0)},
            }
        )
        stats = registry.spans["solve"]
        assert stats.count == 3
        assert stats.seconds == 1.4
        assert stats.minimum == 0.4
        assert stats.maximum == 0.4

    def test_summary_table_shows_extremes(self):
        registry = MetricsRegistry()
        registry.record_span("epoch.step", 0.25)
        registry.record_span("epoch.step", 0.75)
        table = summary_table(registry)
        assert "min=250.000ms" in table
        assert "max=750.000ms" in table

    def test_prometheus_dump_stays_wall_clock_free(self):
        """Span seconds — extremes included — must never reach the
        deterministic exporter; only the call count does."""
        registry = MetricsRegistry()
        registry.record_span("epoch.step", 0.123)
        dump = prometheus_text(registry)
        assert 'repro_span_calls_total{span="epoch.step"} 1' in dump
        assert "0.123" not in dump
