"""Hierarchies and dimensions: ordering, ALL, validation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.schema.hierarchy import ALL, Dimension, Hierarchy


@pytest.fixture
def time_hierarchy():
    return Hierarchy("time", ["day", "month", "year"])


class TestHierarchy:
    def test_levels_finest_first(self, time_hierarchy):
        assert time_hierarchy.finest == "day"
        assert list(time_hierarchy.levels) == ["day", "month", "year"]

    def test_all_is_coarsest(self, time_hierarchy):
        assert time_hierarchy.index_of(ALL) == 3
        assert time_hierarchy.is_finer_or_equal("year", ALL)
        assert not time_hierarchy.is_finer_or_equal(ALL, "year")

    def test_finer_or_equal_is_reflexive(self, time_hierarchy):
        for level in list(time_hierarchy.levels) + [ALL]:
            assert time_hierarchy.is_finer_or_equal(level, level)

    def test_day_rolls_up_to_year_not_vice_versa(self, time_hierarchy):
        assert time_hierarchy.is_finer_or_equal("day", "year")
        assert not time_hierarchy.is_finer_or_equal("year", "day")

    def test_coarser_levels(self, time_hierarchy):
        assert list(time_hierarchy.coarser_levels("month")) == ["year", ALL]
        assert list(time_hierarchy.coarser_levels("year")) == [ALL]

    def test_contains(self, time_hierarchy):
        assert "month" in time_hierarchy
        assert ALL in time_hierarchy
        assert "week" not in time_hierarchy

    def test_unknown_level_raises_with_known_levels(self, time_hierarchy):
        with pytest.raises(SchemaError, match="day"):
            time_hierarchy.index_of("week")

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy("empty", [])

    def test_duplicate_levels_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy("time", ["day", "day"])

    def test_naming_virtual_all_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy("time", ["day", ALL])


class TestDimension:
    def test_cardinalities(self, time_hierarchy):
        dim = Dimension(
            "time", time_hierarchy, {"day": 3650, "month": 120, "year": 10}
        )
        assert dim.cardinality("day") == 3650
        assert dim.cardinality(ALL) == 1

    def test_missing_cardinality_rejected(self, time_hierarchy):
        with pytest.raises(SchemaError, match="month"):
            Dimension("time", time_hierarchy, {"day": 10, "year": 1})

    def test_extra_cardinality_rejected(self, time_hierarchy):
        with pytest.raises(SchemaError, match="week"):
            Dimension(
                "time",
                time_hierarchy,
                {"day": 10, "month": 5, "year": 1, "week": 2},
            )

    def test_coarser_level_cannot_outnumber_finer(self, time_hierarchy):
        with pytest.raises(SchemaError, match="cannot be larger"):
            Dimension(
                "time", time_hierarchy, {"day": 10, "month": 20, "year": 1}
            )

    def test_nonpositive_cardinality_rejected(self, time_hierarchy):
        with pytest.raises(SchemaError):
            Dimension("time", time_hierarchy, {"day": 0, "month": 0, "year": 0})

    def test_unknown_level_lookup_raises(self, time_hierarchy):
        dim = Dimension(
            "time", time_hierarchy, {"day": 10, "month": 5, "year": 1}
        )
        with pytest.raises(SchemaError):
            dim.cardinality("week")


class TestOrderProperties:
    """is_finer_or_equal must be a total order per hierarchy."""

    levels = ["day", "month", "year", ALL]

    @given(
        a=st.sampled_from(levels),
        b=st.sampled_from(levels),
        c=st.sampled_from(levels),
    )
    def test_transitivity(self, time_hierarchy_factory, a, b, c):
        h = time_hierarchy_factory
        if h.is_finer_or_equal(a, b) and h.is_finer_or_equal(b, c):
            assert h.is_finer_or_equal(a, c)

    @given(a=st.sampled_from(levels), b=st.sampled_from(levels))
    def test_antisymmetry(self, time_hierarchy_factory, a, b):
        h = time_hierarchy_factory
        if h.is_finer_or_equal(a, b) and h.is_finer_or_equal(b, a):
            assert a == b

    @given(a=st.sampled_from(levels), b=st.sampled_from(levels))
    def test_totality(self, time_hierarchy_factory, a, b):
        h = time_hierarchy_factory
        assert h.is_finer_or_equal(a, b) or h.is_finer_or_equal(b, a)


@pytest.fixture(scope="module")
def time_hierarchy_factory():
    return Hierarchy("time", ["day", "month", "year"])
