"""Star schemas: grains, answerability, logical widths."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.schema import ALL, sales_schema, ssb_schema
from repro.schema.hierarchy import Dimension, Hierarchy
from repro.schema.star import Measure, StarSchema


@pytest.fixture(scope="module")
def schema():
    return sales_schema()


def sales_grains():
    """All 16 grains of the sales schema, as a hypothesis strategy."""
    time_levels = ["day", "month", "year", ALL]
    geo_levels = ["department", "region", "country", ALL]
    return st.tuples(st.sampled_from(time_levels), st.sampled_from(geo_levels))


class TestStructure:
    def test_dimension_order_is_canonical(self, schema):
        assert schema.dimension_names == ("time", "geography")

    def test_base_and_apex(self, schema):
        assert schema.base_grain == ("day", "department")
        assert schema.apex_grain == (ALL, ALL)

    def test_dimension_lookup(self, schema):
        assert schema.dimension("time").name == "time"
        with pytest.raises(SchemaError, match="geography"):
            schema.dimension("product")

    def test_needs_dimension_and_measure(self):
        time = Dimension(
            "t", Hierarchy("t", ["d"]), {"d": 10}
        )
        with pytest.raises(SchemaError):
            StarSchema("x", [], [Measure("m")])
        with pytest.raises(SchemaError):
            StarSchema("x", [time], [])

    def test_duplicate_names_rejected(self):
        time = Dimension("t", Hierarchy("t", ["d"]), {"d": 10})
        with pytest.raises(SchemaError):
            StarSchema("x", [time, time], [Measure("m")])
        with pytest.raises(SchemaError):
            StarSchema("x", [time], [Measure("m"), Measure("m")])


class TestGrains:
    def test_validate_grain_length(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_grain(("day",))

    def test_validate_grain_levels(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_grain(("week", "country"))

    def test_grain_from_mapping_defaults_to_all(self, schema):
        grain = schema.grain_from_mapping({"time": "year"})
        assert grain == ("year", ALL)

    def test_grain_from_mapping_unknown_dimension(self, schema):
        with pytest.raises(SchemaError, match="product"):
            schema.grain_from_mapping({"product": "sku"})


class TestAnswerability:
    def test_base_answers_everything(self, schema):
        assert schema.grain_answers(("day", "department"), ("year", ALL))

    def test_apex_answers_only_itself(self, schema):
        assert schema.grain_answers((ALL, ALL), (ALL, ALL))
        assert not schema.grain_answers((ALL, ALL), ("year", ALL))

    def test_incomparable_grains(self, schema):
        # (month, ALL) and (ALL, country) answer neither each other.
        assert not schema.grain_answers(("month", ALL), (ALL, "country"))
        assert not schema.grain_answers((ALL, "country"), ("month", ALL))

    def test_paper_example_view_answers_query(self, schema):
        # V1 = "sales per month and country" answers Q1 = "per year and
        # country" (Section 2.1).
        assert schema.grain_answers(("month", "country"), ("year", "country"))

    @given(a=sales_grains(), b=sales_grains(), c=sales_grains())
    def test_partial_order_transitive(self, schema, a, b, c):
        if schema.grain_answers(a, b) and schema.grain_answers(b, c):
            assert schema.grain_answers(a, c)

    @given(a=sales_grains(), b=sales_grains())
    def test_partial_order_antisymmetric(self, schema, a, b):
        if schema.grain_answers(a, b) and schema.grain_answers(b, a):
            assert a == b

    @given(a=sales_grains())
    def test_partial_order_reflexive(self, schema, a):
        assert schema.grain_answers(a, a)


class TestSizeModel:
    def test_fact_row_bytes_counts_finest_levels_and_measures(self, schema):
        # day (10) + department (16) + profit (8).
        assert schema.fact_row_bytes == 34

    def test_all_levels_store_nothing(self, schema):
        assert schema.row_logical_bytes((ALL, ALL)) == 8  # measures only

    def test_coarser_grains_are_narrower(self, schema):
        fine = schema.row_logical_bytes(("day", "department"))
        coarse = schema.row_logical_bytes(("year", "country"))
        assert coarse < fine

    def test_default_level_width(self):
        time = Dimension("t", Hierarchy("t", ["d"]), {"d": 10})
        bare = StarSchema("x", [time], [Measure("m", 8)])
        assert bare.level_logical_bytes("t", "d") == 8

    def test_level_bytes_validation(self):
        time = Dimension("t", Hierarchy("t", ["d"]), {"d": 10})
        with pytest.raises(SchemaError):
            StarSchema("x", [time], [Measure("m")], {"nope.d": 4})
        with pytest.raises(SchemaError):
            StarSchema("x", [time], [Measure("m")], {"t.nope": 4})


class TestSsbSchema:
    def test_four_dimensions(self):
        schema = ssb_schema()
        assert len(schema.dimensions) == 4
        assert schema.dimension_names == ("date", "customer", "supplier", "part")

    def test_scale_factor_scales_customers(self):
        small = ssb_schema(0.1).dimension("customer")
        large = ssb_schema(2.0).dimension("customer")
        assert large.cardinality("city") >= small.cardinality("city")

    def test_two_measures(self):
        assert [m.name for m in ssb_schema().measures] == [
            "revenue",
            "supplycost",
        ]
