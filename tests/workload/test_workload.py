"""Queries and workloads."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.schema import ALL, sales_schema
from repro.workload import AggregateQuery, Workload, cross_workload, paper_sales_workload


@pytest.fixture(scope="module")
def schema():
    return sales_schema()


class TestAggregateQuery:
    def test_per_constructor(self, schema):
        q = AggregateQuery.per(
            schema, "Q1", {"time": "year", "geography": "country"}
        )
        assert q.grain == ("year", "country")

    def test_per_defaults_to_all(self, schema):
        q = AggregateQuery.per(schema, "Q", {"time": "month"})
        assert q.grain == ("month", ALL)

    def test_describe(self, schema):
        q = AggregateQuery.per(
            schema, "Q1", {"time": "year", "geography": "country"}
        )
        assert q.describe(schema) == "profit per year, country"
        apex = AggregateQuery("T", (ALL, ALL))
        assert apex.describe(schema) == "total profit"

    def test_validation(self, schema):
        with pytest.raises(SchemaError):
            AggregateQuery("", ("year", ALL))
        with pytest.raises(SchemaError):
            AggregateQuery("Q", ("year", ALL), frequency=0)


class TestWorkload:
    def test_needs_queries(self, schema):
        with pytest.raises(SchemaError):
            Workload(schema, [])

    def test_duplicate_names_rejected(self, schema):
        q = AggregateQuery("Q1", ("year", ALL))
        with pytest.raises(SchemaError):
            Workload(schema, [q, q])

    def test_prefix(self, schema):
        workload = paper_sales_workload(schema, 10)
        assert len(workload.prefix(3)) == 3
        assert list(workload.prefix(3))[0].name == "Q1"
        with pytest.raises(SchemaError):
            workload.prefix(0)
        with pytest.raises(SchemaError):
            workload.prefix(11)


class TestPrefixEdges:
    def test_prefix_of_one_is_just_q1(self, schema):
        one = paper_sales_workload(schema, 10).prefix(1)
        assert [q.name for q in one] == ["Q1"]

    def test_full_prefix_preserves_order_and_content(self, schema):
        workload = paper_sales_workload(schema, 10)
        full = workload.prefix(len(workload))
        assert tuple(full.queries) == tuple(workload.queries)
        assert full.schema is workload.schema

    def test_prefix_is_a_new_workload(self, schema):
        workload = paper_sales_workload(schema, 10)
        assert workload.prefix(3) is not workload
        assert len(workload) == 10  # the original is untouched

    def test_negative_prefix_rejected(self, schema):
        with pytest.raises(SchemaError, match="outside"):
            paper_sales_workload(schema, 10).prefix(-1)

    def test_prefix_keeps_frequencies_and_filters(self, schema):
        hot = AggregateQuery("H", ("year", ALL), frequency=5.0)
        cold = AggregateQuery("C", ("month", ALL), frequency=0.5)
        workload = Workload(schema, [hot, cold])
        assert workload.prefix(1).queries[0].frequency == 5.0

    def test_prefix_of_prefix(self, schema):
        workload = paper_sales_workload(schema, 10)
        assert [q.name for q in workload.prefix(5).prefix(2)] == ["Q1", "Q2"]


class TestDriftHelpers:
    def test_with_queries_appends(self, schema):
        base = paper_sales_workload(schema, 3)
        extra = AggregateQuery("X", ("day", ALL))
        grown = base.with_queries([extra])
        assert [q.name for q in grown] == ["Q1", "Q2", "Q3", "X"]
        assert len(base) == 3

    def test_with_queries_rejects_duplicates(self, schema):
        base = paper_sales_workload(schema, 3)
        with pytest.raises(SchemaError):
            base.with_queries([AggregateQuery("Q1", ("day", ALL))])

    def test_without_and_reweighted(self, schema):
        base = paper_sales_workload(schema, 3)
        assert [q.name for q in base.without(["Q2"])] == ["Q1", "Q3"]
        hot = base.reweighted({"Q1": 4.0})
        assert hot.queries[0].frequency == 4.0
        assert base.queries[0].frequency == 1.0
        with pytest.raises(SchemaError):
            base.without(["nope"])
        with pytest.raises(SchemaError):
            base.without(["Q1", "Q2", "Q3"])
        with pytest.raises(SchemaError):
            base.reweighted({"nope": 2.0})


class TestPaperWorkload:
    def test_q1_is_the_quoted_query(self, schema):
        # Section 2.1: Q1 = "sales per year and country".
        workload = paper_sales_workload(schema, 10)
        assert workload.queries[0].grain == ("year", "country")

    def test_sizes_are_prefixes(self, schema):
        ten = paper_sales_workload(schema, 10)
        three = paper_sales_workload(schema, 3)
        assert tuple(q.name for q in three) == tuple(
            q.name for q in ten.queries[:3]
        )

    def test_ten_distinct_grains(self, schema):
        workload = paper_sales_workload(schema, 10)
        grains = [q.grain for q in workload]
        assert len(set(grains)) == 10

    def test_covers_all_nine_level_combinations(self, schema):
        # "per day, month, year and per country, department, region".
        workload = paper_sales_workload(schema, 10)
        crossed = {
            q.grain
            for q in workload
            if ALL not in q.grain
        }
        assert len(crossed) == 9


class TestCrossWorkload:
    def test_excludes_apex(self, schema):
        workload = cross_workload(schema)
        assert (ALL, ALL) not in {q.grain for q in workload}

    def test_size_is_lattice_minus_apex(self, schema):
        assert len(cross_workload(schema)) == 16 - 1

    def test_grains_are_unique_and_valid(self, schema):
        workload = cross_workload(schema)
        grains = [q.grain for q in workload]
        assert len(set(grains)) == len(grains)
        for grain in grains:
            assert schema.validate_grain(grain) == grain

    def test_enumerates_the_full_level_cross_product(self, schema):
        expected = {
            (t, g)
            for t in ("day", "month", "year", ALL)
            for g in ("department", "country", "region", ALL)
        } - {(ALL, ALL)}
        assert {q.grain for q in cross_workload(schema)} == expected

    def test_includes_base_grain(self, schema):
        # Unlike candidate enumeration, the *workload* may ask for the
        # base grain (the finest roll-up is a legitimate query).
        assert schema.base_grain in {q.grain for q in cross_workload(schema)}

    def test_names_follow_enumeration_order(self, schema):
        names = [q.name for q in cross_workload(schema)]
        assert names == [f"Q{i + 1}" for i in range(len(names))]

    def test_frequency_propagates_to_every_query(self, schema):
        workload = cross_workload(schema, frequency=2.5)
        assert all(q.frequency == 2.5 for q in workload)
        default = cross_workload(schema)
        assert all(q.frequency == 1.0 for q in default)

    def test_ssb_cross_product_counts(self):
        from repro.schema import ssb_schema

        schema = ssb_schema()
        workload = cross_workload(schema)
        expected = 1
        for dim in schema.dimensions:
            expected *= len(dim.hierarchy.levels_with_all)
        assert len(workload) == expected - 1
