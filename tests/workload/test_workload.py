"""Queries and workloads."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.schema import ALL, sales_schema
from repro.workload import AggregateQuery, Workload, cross_workload, paper_sales_workload


@pytest.fixture(scope="module")
def schema():
    return sales_schema()


class TestAggregateQuery:
    def test_per_constructor(self, schema):
        q = AggregateQuery.per(
            schema, "Q1", {"time": "year", "geography": "country"}
        )
        assert q.grain == ("year", "country")

    def test_per_defaults_to_all(self, schema):
        q = AggregateQuery.per(schema, "Q", {"time": "month"})
        assert q.grain == ("month", ALL)

    def test_describe(self, schema):
        q = AggregateQuery.per(
            schema, "Q1", {"time": "year", "geography": "country"}
        )
        assert q.describe(schema) == "profit per year, country"
        apex = AggregateQuery("T", (ALL, ALL))
        assert apex.describe(schema) == "total profit"

    def test_validation(self, schema):
        with pytest.raises(SchemaError):
            AggregateQuery("", ("year", ALL))
        with pytest.raises(SchemaError):
            AggregateQuery("Q", ("year", ALL), frequency=0)


class TestWorkload:
    def test_needs_queries(self, schema):
        with pytest.raises(SchemaError):
            Workload(schema, [])

    def test_duplicate_names_rejected(self, schema):
        q = AggregateQuery("Q1", ("year", ALL))
        with pytest.raises(SchemaError):
            Workload(schema, [q, q])

    def test_prefix(self, schema):
        workload = paper_sales_workload(schema, 10)
        assert len(workload.prefix(3)) == 3
        assert list(workload.prefix(3))[0].name == "Q1"
        with pytest.raises(SchemaError):
            workload.prefix(0)
        with pytest.raises(SchemaError):
            workload.prefix(11)


class TestPaperWorkload:
    def test_q1_is_the_quoted_query(self, schema):
        # Section 2.1: Q1 = "sales per year and country".
        workload = paper_sales_workload(schema, 10)
        assert workload.queries[0].grain == ("year", "country")

    def test_sizes_are_prefixes(self, schema):
        ten = paper_sales_workload(schema, 10)
        three = paper_sales_workload(schema, 3)
        assert tuple(q.name for q in three) == tuple(
            q.name for q in ten.queries[:3]
        )

    def test_ten_distinct_grains(self, schema):
        workload = paper_sales_workload(schema, 10)
        grains = [q.grain for q in workload]
        assert len(set(grains)) == 10

    def test_covers_all_nine_level_combinations(self, schema):
        # "per day, month, year and per country, department, region".
        workload = paper_sales_workload(schema, 10)
        crossed = {
            q.grain
            for q in workload
            if ALL not in q.grain
        }
        assert len(crossed) == 9


class TestCrossWorkload:
    def test_excludes_apex(self, schema):
        workload = cross_workload(schema)
        assert (ALL, ALL) not in {q.grain for q in workload}

    def test_size_is_lattice_minus_apex(self, schema):
        assert len(cross_workload(schema)) == 16 - 1
