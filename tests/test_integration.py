"""End-to-end integration: the full pipeline in both estimator modes.

These tests walk the complete chain the way a user would — generate
data, build the lattice, estimate, optimize, price — and cross-check
the layers against each other (engine vs. estimator, optimizer vs.
cost model identities).
"""

from __future__ import annotations

import pytest

from repro import (
    CloudCostModel,
    CuboidLattice,
    DeploymentSpec,
    Executor,
    Money,
    PlanningEstimator,
    SelectionProblem,
    candidates_from_workload,
    generate_sales,
    mv1,
    mv2,
    mv3,
    paper_sales_workload,
    select_views,
)
from repro.pricing import BillingGranularity, aws_2012


@pytest.fixture(scope="module")
def world():
    """A fully-empirical small world (row_scale == 1)."""
    dataset = generate_sales(n_rows=15_000, seed=21)
    deployment = DeploymentSpec(
        provider=aws_2012(BillingGranularity.PER_SECOND),
        instance_type="small",
        n_instances=4,
        runs_per_period=10.0,
    )
    workload = paper_sales_workload(dataset.schema, 5)
    lattice = CuboidLattice(dataset.schema)
    candidates = candidates_from_workload(lattice, workload)
    estimator = PlanningEstimator(dataset, deployment, mode="empirical")
    inputs = estimator.build(workload, candidates)
    return dataset, inputs, SelectionProblem(inputs)


class TestEmpiricalPipeline:
    def test_view_sizes_match_executed_views(self, world):
        dataset, inputs, _problem = world
        executor = Executor(dataset)
        for candidate in inputs.candidates:
            physical = executor.materialize(candidate.grain).table.n_rows
            assert inputs.view_stats[candidate.name].rows == physical

    def test_selected_views_actually_answer_their_queries(self, world):
        dataset, inputs, problem = world
        result = select_views(problem, mv3(0.5), "greedy")
        executor = Executor(dataset)
        for query in inputs.workload:
            source = inputs.best_source(query.name, result.selected_views)
            if source is None:
                continue
            view_grain = inputs.view(source).grain
            view = executor.materialize(view_grain).table
            via_view = executor.answer(query, source=view)
            direct = executor.answer(query)
            assert via_view.table.n_rows == direct.table.n_rows
            assert via_view.table.measure("profit").sum() == pytest.approx(
                direct.table.measure("profit").sum()
            )

    def test_cost_identity_formula_1(self, world):
        _dataset, inputs, problem = world
        outcome = problem.evaluate(frozenset({"V1", "V2"}))
        breakdown = outcome.breakdown
        assert breakdown.total == (
            breakdown.computing.total + breakdown.storage + breakdown.transfer
        )

    def test_scenarios_agree_on_direction(self, world):
        # The empirical world is overhead-dominated (tiny physical
        # data), so views barely move response time; the scenarios must
        # still never make anything worse.
        _dataset, _inputs, problem = world
        baseline = problem.baseline()
        generous_budget = select_views(
            problem, mv1(baseline.total_cost + Money(50)), "greedy"
        )
        deadline_at_base = select_views(
            problem, mv2(baseline.processing_hours), "greedy"
        )
        tradeoff = select_views(problem, mv3(0.5), "greedy")
        for result in (generous_budget, deadline_at_base, tradeoff):
            assert result.outcome.processing_hours <= baseline.processing_hours
            assert (
                result.scenario.key(result.outcome)
                <= result.scenario.key(baseline)
            )

    def test_unreachable_deadline_is_reported_infeasible(self, world):
        # With job overhead dominating, half the baseline response time
        # is physically unreachable — the optimizer must say so rather
        # than return a silently infeasible plan.
        from repro import InfeasibleProblemError

        _dataset, _inputs, problem = world
        baseline = problem.baseline()
        with pytest.raises(InfeasibleProblemError):
            select_views(problem, mv2(baseline.processing_hours / 2), "greedy")

    def test_plan_reprices_identically_through_model(self, world):
        _dataset, inputs, problem = world
        subset = frozenset({"V1"})
        direct = CloudCostModel(inputs.deployment).evaluate(
            inputs.plan_for(subset)
        )
        via_problem = problem.evaluate(subset).breakdown
        assert direct.total == via_problem.total
        assert direct.processing_hours == via_problem.processing_hours


class TestCrossProviderPipeline:
    def test_other_providers_run_the_same_problem(self):
        from repro.pricing import archive_cloud, flat_cloud

        dataset = generate_sales(n_rows=8_000, seed=2, target_gb=5.0)
        workload = paper_sales_workload(dataset.schema, 3)
        lattice = CuboidLattice(dataset.schema)
        candidates = candidates_from_workload(lattice, workload)
        totals = {}
        for provider in (aws_2012(), flat_cloud(), archive_cloud()):
            deployment = DeploymentSpec(
                provider=provider,
                instance_type="small",
                n_instances=4,
            )
            inputs = PlanningEstimator(dataset, deployment).build(
                workload, candidates
            )
            problem = SelectionProblem(inputs)
            result = select_views(problem, mv3(0.5), "greedy")
            totals[provider.name] = result.outcome.total_cost
        # Different price books must give different bills.
        assert len(set(totals.values())) > 1
