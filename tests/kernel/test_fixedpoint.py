"""Property tests for the checked int64 cent grid.

The satellite contract: every Decimal amount representable in cents
survives ``to_cents`` -> int64 -> ``from_cents`` exactly, and amounts
that would overflow int64 raise instead of wrapping.
"""

from __future__ import annotations

import random
from decimal import Decimal

import pytest

from repro.compat import HAVE_NUMPY
from repro.errors import FixedPointOverflow, KernelError, ReproError
from repro.kernel import (
    CENTS_MAX,
    CENTS_MIN,
    cents_vector,
    from_cents,
    to_cents,
    to_cents_list,
)
from repro.money import Money


def _random_cents(rng: random.Random) -> int:
    """Cent counts across the whole grid, biased toward the edges."""
    magnitude = rng.choice(
        [
            rng.randint(0, 10_000),
            rng.randint(0, 10**9),
            rng.randint(0, CENTS_MAX),
            CENTS_MAX - rng.randint(0, 3),
        ]
    )
    return -magnitude if rng.random() < 0.5 else magnitude


@pytest.mark.parametrize("seed", range(20))
def test_cent_grid_round_trip_is_exact(seed):
    """to_cents(from_cents(c)) == c for cent counts across the grid."""
    rng = random.Random(seed)
    for _ in range(500):
        cents = _random_cents(rng)
        money = from_cents(cents)
        assert to_cents(money) == cents
        # The checked conversion agrees with Money's unchecked one
        # wherever the latter is in range.
        assert to_cents(money) == money.to_cents()


@pytest.mark.parametrize("seed", range(10))
def test_cent_representable_money_survives_round_trip(seed):
    """Cent-representable Decimal amounts come back value-equal."""
    rng = random.Random(1000 + seed)
    for _ in range(300):
        cents = _random_cents(rng)
        # Several textual spellings of the same cent-representable
        # amount: plain, trailing zeros, exponent form.
        base = Decimal(cents).scaleb(-2)
        for spelling in (base, Decimal(str(base) + "0"), base.normalize()):
            money = Money(spelling)
            assert from_cents(to_cents(money)) == money


def test_half_up_rounding_matches_money():
    assert to_cents(Money("10.005")) == 1001
    assert to_cents(Money("-10.005")) == -1001
    assert to_cents(Money("0.004")) == 0
    assert to_cents(Money("1.999")) == 200


def test_bounds_are_inclusive():
    assert to_cents(from_cents(CENTS_MAX)) == CENTS_MAX
    assert to_cents(from_cents(CENTS_MIN)) == CENTS_MIN


@pytest.mark.parametrize(
    "amount",
    [
        Decimal(CENTS_MAX + 1).scaleb(-2),
        Decimal(CENTS_MIN - 1).scaleb(-2),
        Decimal("1e30"),
        Decimal("-1e30"),
        # So large that even quantizing to cents is impossible in the
        # default Decimal context: must still raise ours, not decimal's.
        Decimal("9" * 40),
    ],
)
def test_overflow_raises_instead_of_wrapping(amount):
    with pytest.raises(FixedPointOverflow):
        to_cents(Money(amount))


def test_from_cents_range_checked():
    with pytest.raises(FixedPointOverflow):
        from_cents(CENTS_MAX + 1)
    with pytest.raises(FixedPointOverflow):
        from_cents(CENTS_MIN - 1)
    with pytest.raises(FixedPointOverflow):
        from_cents(1.5)  # type: ignore[arg-type]


def test_overflow_is_a_kernel_and_repro_error():
    assert issubclass(FixedPointOverflow, KernelError)
    assert issubclass(FixedPointOverflow, ReproError)


def test_to_cents_list_checks_every_entry():
    amounts = [Money("1.00"), Money("2.50"), Money("-0.01")]
    assert to_cents_list(amounts) == [100, 250, -1]
    with pytest.raises(FixedPointOverflow):
        to_cents_list([Money("1.00"), Money(Decimal("1e30"))])


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
def test_cents_vector_is_int64():
    import numpy as np

    vector = cents_vector([Money("1.08"), Money("924.00"), from_cents(CENTS_MAX)])
    assert vector.dtype == np.int64
    assert vector.tolist() == [108, 92400, CENTS_MAX]


@pytest.mark.skipif(HAVE_NUMPY, reason="exercises the numpy-less gate")
def test_cents_vector_requires_numpy():
    with pytest.raises(ReproError):
        cents_vector([Money("1.00")])
