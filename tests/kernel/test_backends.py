"""Backend parity: numpy and pure-Python row-min agree bit-for-bit."""

from __future__ import annotations

import pytest

from repro.compat import HAVE_NUMPY
from repro.kernel import KernelWorld, NumpyBackend, PurePythonBackend, make_backend
from repro.optimizer import SelectionProblem


def test_make_backend_honours_preference():
    backend = make_backend([1.0], [[]], 1, prefer="python")
    assert isinstance(backend, PurePythonBackend)
    if HAVE_NUMPY:
        backend = make_backend([1.0], [[]], 1, prefer="numpy")
        assert isinstance(backend, NumpyBackend)


def test_auto_prefers_python_for_small_worlds():
    backend = make_backend([1.0, 2.0], [[], []], 3, prefer="auto")
    assert isinstance(backend, PurePythonBackend)


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
def test_auto_prefers_numpy_for_large_worlds():
    base = [1.0] * 64
    entries = [[] for _ in base]
    backend = make_backend(base, entries, 64, prefer="auto")
    assert isinstance(backend, NumpyBackend)


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
@pytest.mark.parametrize("seed", range(25))
def test_backends_agree_bitwise(seed, random_world_factory):
    """Both backends price every sampled subset to identical reprs."""
    import random
    from itertools import combinations

    world = random_world_factory(500 + seed)
    from repro.costmodel.total import CloudCostModel

    model = CloudCostModel(world.deployment)
    with_numpy = KernelWorld.build(world.inputs, model, prefer_backend="numpy")
    with_python = KernelWorld.build(world.inputs, model, prefer_backend="python")
    assert with_numpy is not None and with_python is not None
    assert with_numpy.backend_name == "numpy"
    assert with_python.backend_name == "python"

    names = [c.name for c in world.candidates]
    rng = random.Random(seed)
    subsets = [frozenset()] + [frozenset({n}) for n in names]
    subsets += [frozenset(p) for p in combinations(names, 2)][:8]
    if names:
        subsets.append(frozenset(rng.sample(names, rng.randint(1, len(names)))))
    for subset in subsets:
        assert repr(with_numpy.evaluate(subset)) == repr(
            with_python.evaluate(subset)
        )


def test_pure_python_backend_runs_without_numpy(random_world_factory):
    """The fallback works regardless of the environment; under the
    no-numpy CI job it is also what `auto` resolves to."""
    world = random_world_factory(42)
    problem = SelectionProblem(world.inputs, kernel=True)
    outcome = problem.baseline()
    assert outcome.total_cost == problem.baseline().total_cost
    assert problem._kernel_world is not None
    if not HAVE_NUMPY:
        assert problem._kernel_world.backend_name == "python"


def test_total_cents_batch(random_world_factory):
    from repro.kernel import to_cents

    world = random_world_factory(7)
    from repro.costmodel.total import CloudCostModel

    kernel = KernelWorld.build(world.inputs, CloudCostModel(world.deployment))
    assert kernel is not None
    subsets = [frozenset(), frozenset(c.name for c in world.candidates)]
    batch = kernel.total_cents_batch(subsets)
    expected = [to_cents(kernel.evaluate(s).total) for s in subsets]
    assert list(batch) == expected
    if HAVE_NUMPY:
        import numpy as np

        assert batch.dtype == np.int64
