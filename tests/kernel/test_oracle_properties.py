"""The oracle harness: kernel == exact-Decimal path, to the byte.

The tentpole's correctness bar.  Over hundreds of seeded generative
worlds (random schemas, filtered workloads, speedup caps, maintenance
cycles, adversarial magnitudes — see ``make_random_world`` in the root
conftest), every subset pricing must agree with the Decimal oracle not
just to the cent but in the full ``repr`` of the breakdown — the
representation ledgers and reports are rendered from — and every
optimizer must select the same subset either way.
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.optimizer import SelectionProblem, select_views
from repro.optimizer.scenarios import mv1, mv2, mv3

#: The fixed seed matrix CI runs; 200+ worlds per the acceptance bar.
ORACLE_SEEDS = range(200)


def _sample_subsets(world, cap=24):
    """Empty set, all singletons, a pair spread, the full set, and a
    few random subsets — bounded so 200 worlds stay fast."""
    names = [c.name for c in world.candidates]
    subsets = [frozenset()]
    subsets += [frozenset({n}) for n in names]
    subsets += [frozenset(p) for p in combinations(names, 2)]
    subsets.append(frozenset(names))
    rng = random.Random(world.seed * 7919 + 1)
    for _ in range(4):
        if names:
            k = rng.randint(1, len(names))
            subsets.append(frozenset(rng.sample(names, k)))
    seen = set()
    unique = []
    for subset in subsets:
        if subset not in seen:
            seen.add(subset)
            unique.append(subset)
    return unique[:cap]


@pytest.mark.parametrize("seed", ORACLE_SEEDS)
def test_kernel_reproduces_oracle_breakdowns(seed, random_world_factory):
    world = random_world_factory(seed)
    oracle = SelectionProblem(world.inputs, kernel=False)
    fast = SelectionProblem(world.inputs, kernel=True)
    for subset in _sample_subsets(world):
        want = oracle.evaluate(subset)
        got = fast.evaluate(subset)
        # repr equality is stronger than ==: it pins every Decimal's
        # exponent and trailing zeros, i.e. the ledger bytes.
        assert repr(got.breakdown) == repr(want.breakdown), (
            f"seed {seed}, subset {sorted(subset)}"
        )
        assert got.processing_hours == want.processing_hours
    # The kernel path actually engaged (worlds here are never cascade).
    assert fast._kernel_world is not None


@pytest.mark.parametrize("seed", range(0, 60, 2))
def test_kernel_and_oracle_select_identical_subsets(seed, random_world_factory):
    """Greedy and knapsack land on the same views with and without
    the kernel, and price them to identical ledger bytes."""
    world = random_world_factory(seed)
    if not world.candidates:
        pytest.skip("world drew no candidates")
    oracle = SelectionProblem(world.inputs, kernel=False)
    fast = SelectionProblem(world.inputs, kernel=True)
    baseline = oracle.baseline()
    scenarios = [
        mv1(baseline.total_cost * 2),
        mv2(fast.evaluate(frozenset(c.name for c in world.candidates))
            .processing_hours * 1.5),
        mv3(0.5),
    ]
    for scenario in scenarios:
        for algorithm in ("greedy", "knapsack"):
            want = select_views(oracle, scenario, algorithm)
            got = select_views(fast, scenario, algorithm)
            assert got.outcome.subset == want.outcome.subset
            assert repr(got.outcome.breakdown) == repr(want.outcome.breakdown)
            assert repr(got.baseline.breakdown) == repr(want.baseline.breakdown)


@pytest.mark.parametrize("seed", range(1, 30, 3))
def test_exhaustive_ground_truth_agrees(seed, random_world_factory):
    world = random_world_factory(seed)
    if not (1 <= len(world.candidates) <= 6):
        pytest.skip("exhaustive kept to small candidate sets")
    oracle = SelectionProblem(world.inputs, kernel=False)
    fast = SelectionProblem(world.inputs, kernel=True)
    scenario = mv3(0.25)
    want = select_views(oracle, scenario, "exhaustive")
    got = select_views(fast, scenario, "exhaustive")
    assert got.outcome.subset == want.outcome.subset
    assert repr(got.outcome.breakdown) == repr(want.outcome.breakdown)


def test_shared_cache_outcomes_are_kernel_agnostic(random_world_factory):
    """A subset priced by the kernel and served from the shared cache
    to a no-kernel problem (or vice versa) is indistinguishable."""
    from repro.optimizer import SubsetEvaluationCache

    world = random_world_factory(3)
    cache = SubsetEvaluationCache()
    key = world.inputs.fingerprint()
    fast = SelectionProblem(world.inputs, cache=cache, state_key=key, kernel=True)
    slow = SelectionProblem(world.inputs, cache=cache, state_key=key, kernel=False)
    subset = frozenset(c.name for c in world.candidates)
    first = fast.evaluate(subset)
    second = slow.evaluate(subset)
    assert second is first
    assert slow.stats.priced == 0
