"""The SelectionProblem seam: opt-outs, fallbacks, and telemetry."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import telemetry
from repro.costmodel.total import CloudCostModel, CostBreakdown, WorkloadPlan
from repro.kernel import (
    NO_KERNEL_ENV,
    KernelWorld,
    kernel_enabled,
    set_kernel_enabled,
)
from repro.optimizer import SelectionProblem


@pytest.fixture
def world(random_world_factory):
    return random_world_factory(11)


@pytest.fixture(autouse=True)
def _restore_override():
    previous = set_kernel_enabled(None)
    yield
    set_kernel_enabled(previous)


def test_kernel_on_by_default(world, monkeypatch):
    monkeypatch.delenv(NO_KERNEL_ENV, raising=False)
    assert kernel_enabled()
    problem = SelectionProblem(world.inputs)
    problem.baseline()
    assert problem._kernel_world is not None


def test_env_var_disables_kernel(world, monkeypatch):
    monkeypatch.setenv(NO_KERNEL_ENV, "1")
    assert not kernel_enabled()
    problem = SelectionProblem(world.inputs)
    problem.baseline()
    assert problem._kernel_world is None


def test_env_var_zero_means_enabled(monkeypatch):
    monkeypatch.setenv(NO_KERNEL_ENV, "0")
    assert kernel_enabled()


def test_explicit_flag_beats_environment(world, monkeypatch):
    monkeypatch.setenv(NO_KERNEL_ENV, "1")
    problem = SelectionProblem(world.inputs, kernel=True)
    problem.baseline()
    assert problem._kernel_world is not None


def test_process_override(world, monkeypatch):
    monkeypatch.delenv(NO_KERNEL_ENV, raising=False)
    set_kernel_enabled(False)
    assert not kernel_enabled()
    problem = SelectionProblem(world.inputs)
    problem.baseline()
    assert problem._kernel_world is None


def test_cascade_worlds_fall_back_to_oracle(world):
    cascade_dep = replace(world.deployment, cascade_materialization=True)
    inputs = replace(world.inputs, deployment=cascade_dep)
    problem = SelectionProblem(inputs, kernel=True)
    baseline = problem.baseline()
    assert problem._kernel_world is None
    oracle = SelectionProblem(inputs, kernel=False)
    assert repr(baseline.breakdown) == repr(oracle.baseline().breakdown)


def test_subclassed_cost_models_fall_back(world):
    class Surcharged(CloudCostModel):
        def evaluate(self, plan: WorkloadPlan) -> CostBreakdown:
            breakdown = super().evaluate(plan)
            return replace(breakdown, storage=breakdown.storage * 2)

    problem = SelectionProblem(
        world.inputs, cost_model=Surcharged(world.deployment), kernel=True
    )
    baseline = problem.baseline()
    assert problem._kernel_world is None
    plain = SelectionProblem(world.inputs, kernel=False).baseline()
    assert baseline.breakdown.storage == plain.breakdown.storage * 2


def test_kernel_build_returns_none_for_negative_hours(world):
    bad = dict(world.inputs.base_query_hours)
    first = next(iter(bad))
    bad[first] = -1.0
    inputs = replace(world.inputs, base_query_hours=bad)
    assert KernelWorld.build(inputs, CloudCostModel(world.deployment)) is None


def test_telemetry_counts_builds_and_evaluations(world):
    with telemetry.activate() as collector:
        problem = SelectionProblem(world.inputs, kernel=True)
        problem.baseline()
        for candidate in world.candidates[:2]:
            problem.singleton(candidate.name)
        problem.baseline()  # cache hit: no extra kernel evaluation
    registry = collector.registry
    assert registry.counter("kernel.builds") == 1
    expected = 1 + len(world.candidates[:2])
    assert registry.counter("kernel.evaluations") == expected
    assert registry.spans["kernel.build"].count == 1


def test_stats_semantics_unchanged_by_kernel(world):
    fast = SelectionProblem(world.inputs, kernel=True)
    slow = SelectionProblem(world.inputs, kernel=False)
    for problem in (fast, slow):
        problem.baseline()
        problem.baseline()
    assert fast.stats.calls == slow.stats.calls == 2
    assert fast.stats.priced == slow.stats.priced == 1
    assert fast.stats.local_hits == slow.stats.local_hits == 1
