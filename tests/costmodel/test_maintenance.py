"""Maintenance policies and their integration with the estimator."""

from __future__ import annotations

import pytest

from repro.costmodel import (
    DeploymentSpec,
    MaintenancePolicy,
    PlanningEstimator,
    maintenance_hours_per_cycle,
)
from repro.cube import CuboidLattice, candidates_from_workload
from repro.errors import CostModelError
from repro.pricing import BillingGranularity, aws_2012
from repro.workload import paper_sales_workload


def deployment_with(policy: MaintenancePolicy, **kwargs) -> DeploymentSpec:
    return DeploymentSpec(
        provider=aws_2012(BillingGranularity.PER_SECOND),
        instance_type="small",
        n_instances=5,
        maintenance_policy=policy,
        **kwargs,
    )


class TestPolicies:
    def test_incremental_processes_the_delta(self):
        dep = deployment_with(
            MaintenancePolicy.INCREMENTAL, update_fraction_per_cycle=0.01
        )
        hours = maintenance_hours_per_cycle(
            MaintenancePolicy.INCREMENTAL, dep, 10.0, 1000
        )
        assert hours == pytest.approx(dep.job_hours(0.1, 1000))

    def test_full_rebuild_reaggregates_everything(self):
        dep = deployment_with(
            MaintenancePolicy.FULL_REBUILD, materialization_write_factor=2.0
        )
        hours = maintenance_hours_per_cycle(
            MaintenancePolicy.FULL_REBUILD, dep, 10.0, 1000
        )
        assert hours == pytest.approx(dep.job_hours(10.0, 1000) * 2.0)

    def test_cheapest_is_the_min(self):
        dep = deployment_with(MaintenancePolicy.CHEAPEST)
        cheapest = maintenance_hours_per_cycle(
            MaintenancePolicy.CHEAPEST, dep, 10.0, 1000
        )
        incremental = maintenance_hours_per_cycle(
            MaintenancePolicy.INCREMENTAL, dep, 10.0, 1000
        )
        rebuild = maintenance_hours_per_cycle(
            MaintenancePolicy.FULL_REBUILD, dep, 10.0, 1000
        )
        assert cheapest == min(incremental, rebuild)

    def test_incremental_wins_for_small_deltas(self):
        dep = deployment_with(
            MaintenancePolicy.CHEAPEST, update_fraction_per_cycle=0.001
        )
        incremental = maintenance_hours_per_cycle(
            MaintenancePolicy.INCREMENTAL, dep, 10.0, 100
        )
        rebuild = maintenance_hours_per_cycle(
            MaintenancePolicy.FULL_REBUILD, dep, 10.0, 100
        )
        assert incremental < rebuild

    def test_negative_sizes_rejected(self):
        dep = deployment_with(MaintenancePolicy.INCREMENTAL)
        with pytest.raises(CostModelError):
            maintenance_hours_per_cycle(
                MaintenancePolicy.INCREMENTAL, dep, -1.0, 10
            )

    def test_default_policy_is_incremental(self):
        dep = DeploymentSpec(provider=aws_2012())
        assert dep.maintenance_policy is MaintenancePolicy.INCREMENTAL


class TestEstimatorIntegration:
    @pytest.fixture(scope="class")
    def build(self, sales_dataset_10gb):
        def _build(policy, **kwargs):
            dep = deployment_with(policy, **kwargs)
            workload = paper_sales_workload(sales_dataset_10gb.schema, 3)
            lattice = CuboidLattice(sales_dataset_10gb.schema)
            candidates = candidates_from_workload(lattice, workload)
            return PlanningEstimator(sales_dataset_10gb, dep).build(
                workload, candidates
            )

        return _build

    def test_cheapest_never_exceeds_either_policy(self, build):
        incremental = build(MaintenancePolicy.INCREMENTAL)
        rebuild = build(MaintenancePolicy.FULL_REBUILD)
        cheapest = build(MaintenancePolicy.CHEAPEST)
        for name in cheapest.view_stats:
            c = cheapest.view_stats[name].maintenance_hours_per_cycle
            i = incremental.view_stats[name].maintenance_hours_per_cycle
            r = rebuild.view_stats[name].maintenance_hours_per_cycle
            assert c == pytest.approx(min(i, r))


class TestCascadeIntegration:
    def test_cascade_reduces_materialization_bill(self, sales_dataset_10gb):
        def total_materialization(cascade: bool) -> float:
            dep = deployment_with(
                MaintenancePolicy.INCREMENTAL,
                cascade_materialization=cascade,
            )
            workload = paper_sales_workload(sales_dataset_10gb.schema, 10)
            lattice = CuboidLattice(sales_dataset_10gb.schema)
            candidates = candidates_from_workload(lattice, workload)
            inputs = PlanningEstimator(sales_dataset_10gb, dep).build(
                workload, candidates
            )
            plan = inputs.plan_for(frozenset(c.name for c in candidates))
            return sum(plan.materialization_hours)

        assert total_materialization(True) < total_materialization(False)
