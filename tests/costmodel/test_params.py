"""DeploymentSpec validation and StorageTimeline interval mechanics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costmodel import DeploymentSpec, StorageTimeline
from repro.costmodel.params import StorageInterval
from repro.errors import CostModelError
from repro.pricing import aws_2012


class TestDeploymentSpec:
    def test_paper_deployment(self):
        spec = DeploymentSpec.paper_deployment()
        assert spec.instance_type == "small"
        assert spec.n_instances == 2
        assert spec.compute_units == 1.0

    def test_unknown_instance_fails_fast(self):
        # The failing lookup is a pricing error, surfaced at spec
        # construction rather than first use.
        from repro.errors import PricingError

        with pytest.raises(PricingError):
            DeploymentSpec(provider=aws_2012(), instance_type="mega")

    def test_invalid_fields(self):
        provider = aws_2012()
        with pytest.raises(CostModelError):
            DeploymentSpec(provider=provider, n_instances=0)
        with pytest.raises(CostModelError):
            DeploymentSpec(provider=provider, storage_months=-1)
        with pytest.raises(CostModelError):
            DeploymentSpec(provider=provider, maintenance_cycles=-1)
        with pytest.raises(CostModelError):
            DeploymentSpec(provider=provider, update_fraction_per_cycle=1.0)
        with pytest.raises(CostModelError):
            DeploymentSpec(provider=provider, runs_per_period=0)
        with pytest.raises(CostModelError):
            DeploymentSpec(provider=provider, materialization_write_factor=0.5)
        with pytest.raises(CostModelError):
            DeploymentSpec(provider=provider, view_speedup_cap=0.5)

    def test_job_hours_uses_fleet(self):
        spec = DeploymentSpec.paper_deployment(n_instances=5)
        solo = DeploymentSpec.paper_deployment(n_instances=1)
        assert spec.job_hours(10.0, 100) < solo.job_hours(10.0, 100)


class TestStorageInterval:
    def test_duration(self):
        assert StorageInterval(2, 5, 100).months == 3

    def test_validation(self):
        with pytest.raises(CostModelError):
            StorageInterval(5, 2, 100)
        with pytest.raises(CostModelError):
            StorageInterval(0, 1, -5)


class TestStorageTimeline:
    def test_paper_example_3_intervals(self):
        timeline = StorageTimeline(512, 12, [(7, 2048)])
        intervals = timeline.intervals()
        assert [(i.start_month, i.end_month, i.volume_gb) for i in intervals] == [
            (0, 7, 512.0),
            (7, 12, 2560.0),
        ]

    def test_no_inserts_single_interval(self):
        intervals = StorageTimeline(100, 6).intervals()
        assert len(intervals) == 1
        assert intervals[0].volume_gb == 100

    def test_insert_at_time_zero_merges(self):
        intervals = StorageTimeline(100, 6, [(0, 50)]).intervals()
        assert len(intervals) == 1
        assert intervals[0].volume_gb == 150

    def test_multiple_inserts_sorted(self):
        timeline = StorageTimeline(10, 12, [(9, 1), (3, 2)])
        volumes = [i.volume_gb for i in timeline.intervals()]
        assert volumes == [10, 12, 13]

    def test_final_volume(self):
        assert StorageTimeline(10, 12, [(3, 2), (9, 1)]).final_volume_gb == 13

    def test_with_extra_volume_lifts_every_interval(self):
        timeline = StorageTimeline(10, 12, [(6, 5)])
        lifted = timeline.with_extra_volume(3)
        assert [i.volume_gb for i in lifted.intervals()] == [13, 18]

    def test_validation(self):
        with pytest.raises(CostModelError):
            StorageTimeline(-1, 12)
        with pytest.raises(CostModelError):
            StorageTimeline(1, -1)
        with pytest.raises(CostModelError):
            StorageTimeline(1, 12, [(13, 5)])
        with pytest.raises(CostModelError):
            StorageTimeline(1, 12, [(3, -5)])
        with pytest.raises(CostModelError):
            StorageTimeline(1, 12).with_extra_volume(-1)

    @given(
        initial=st.floats(min_value=0, max_value=1000, allow_nan=False),
        horizon=st.floats(min_value=0.1, max_value=120, allow_nan=False),
        inserts=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=0.99, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            max_size=5,
        ),
    )
    def test_intervals_partition_the_horizon(self, initial, horizon, inserts):
        scaled = [(m * horizon, gb) for m, gb in inserts]
        timeline = StorageTimeline(initial, horizon, scaled)
        intervals = timeline.intervals()
        # Contiguous cover of [0, horizon].
        assert intervals[0].start_month == 0
        assert intervals[-1].end_month == horizon
        for prev, cur in zip(intervals, intervals[1:]):
            assert prev.end_month == cur.start_month
        # Volume never decreases (no deletions modelled).
        volumes = [i.volume_gb for i in intervals]
        assert volumes == sorted(volumes)
