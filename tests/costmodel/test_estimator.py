"""The planning estimator and subset evaluation."""

from __future__ import annotations

import pytest

from repro.costmodel import (
    CloudCostModel,
    DeploymentSpec,
    PlanningEstimator,
)
from repro.cube import CuboidLattice, candidates_from_workload
from repro.errors import CostModelError
from repro.pricing import BillingGranularity, aws_2012
from repro.workload import paper_sales_workload


@pytest.fixture(scope="module")
def deployment():
    return DeploymentSpec(
        provider=aws_2012(BillingGranularity.PER_SECOND),
        instance_type="small",
        n_instances=5,
    )


@pytest.fixture(scope="module")
def inputs(sales_dataset_10gb, deployment):
    workload = paper_sales_workload(sales_dataset_10gb.schema, 5)
    lattice = CuboidLattice(sales_dataset_10gb.schema)
    candidates = candidates_from_workload(lattice, workload)
    return PlanningEstimator(sales_dataset_10gb, deployment).build(
        workload, candidates
    )


class TestModes:
    def test_unknown_mode_rejected(self, sales_dataset_10gb, deployment):
        with pytest.raises(CostModelError):
            PlanningEstimator(sales_dataset_10gb, deployment, mode="magic")

    def test_empirical_mode_requires_unscaled_dataset(
        self, sales_dataset_10gb, deployment
    ):
        with pytest.raises(CostModelError, match="row_scale"):
            PlanningEstimator(sales_dataset_10gb, deployment, mode="empirical")

    def test_empirical_mode_on_unscaled_dataset(
        self, sales_dataset_unscaled, deployment
    ):
        workload = paper_sales_workload(sales_dataset_unscaled.schema, 3)
        lattice = CuboidLattice(sales_dataset_unscaled.schema)
        candidates = candidates_from_workload(lattice, workload)
        estimator = PlanningEstimator(
            sales_dataset_unscaled, deployment, mode="empirical"
        )
        built = estimator.build(workload, candidates)
        # Empirical view rows are exact group counts.
        from repro.engine import Executor

        executor = Executor(sales_dataset_unscaled)
        for candidate in candidates:
            exact = executor.materialize(candidate.grain).stats.groups_out
            assert built.view_stats[candidate.name].rows == exact

    def test_analytic_and_empirical_agree_on_coarse_views(
        self, sales_dataset_unscaled, deployment
    ):
        # Coarse grains saturate, so the Cardenas estimate matches the
        # exact count closely even on skewed data.
        workload = paper_sales_workload(sales_dataset_unscaled.schema, 3)
        lattice = CuboidLattice(sales_dataset_unscaled.schema)
        candidates = candidates_from_workload(lattice, workload)
        analytic = PlanningEstimator(
            sales_dataset_unscaled, deployment, mode="analytic"
        ).build(workload, candidates)
        empirical = PlanningEstimator(
            sales_dataset_unscaled, deployment, mode="empirical"
        ).build(workload, candidates)
        for candidate in candidates:
            a = analytic.view_stats[candidate.name].rows
            e = empirical.view_stats[candidate.name].rows
            assert e <= a * 1.02
            assert e >= a * 0.5


class TestViewStats:
    def test_views_smaller_than_dataset(self, inputs):
        for stats in inputs.view_stats.values():
            assert stats.size_gb < inputs.dataset_gb

    def test_materialization_at_least_one_scan(self, inputs):
        # Write factor >= 1 means materializing costs at least the
        # aggregation itself, which scans the whole dataset.
        for name, stats in inputs.view_stats.items():
            base_scan = inputs.deployment.job_hours(
                inputs.dataset_gb, stats.rows
            )
            assert stats.materialization_hours >= base_scan * 0.999

    def test_maintenance_positive_when_cycles_positive(self, inputs):
        for stats in inputs.view_stats.values():
            assert stats.maintenance_hours_per_cycle > 0


class TestQueryTimes:
    def test_view_times_only_for_answerable_pairs(self, inputs):
        schema = inputs.workload.schema
        for (q_name, v_name) in inputs.view_query_hours:
            query = next(q for q in inputs.workload if q.name == q_name)
            view = inputs.view(v_name)
            assert schema.grain_answers(view.grain, query.grain)

    def test_view_times_beat_base_times(self, inputs):
        for (q_name, _v), hours in inputs.view_query_hours.items():
            assert hours <= inputs.base_query_hours[q_name]

    def test_speedup_cap_limits_view_times(self, sales_dataset_10gb):
        capped_dep = DeploymentSpec(
            provider=aws_2012(BillingGranularity.PER_SECOND),
            instance_type="small",
            n_instances=5,
            view_speedup_cap=2.0,
        )
        workload = paper_sales_workload(sales_dataset_10gb.schema, 5)
        lattice = CuboidLattice(sales_dataset_10gb.schema)
        candidates = candidates_from_workload(lattice, workload)
        built = PlanningEstimator(sales_dataset_10gb, capped_dep).build(
            workload, candidates
        )
        for (q_name, _v), hours in built.view_query_hours.items():
            assert hours >= built.base_query_hours[q_name] / 2.0 - 1e-12


class TestSubsetEvaluation:
    def test_unknown_subset_rejected(self, inputs):
        with pytest.raises(CostModelError):
            inputs.check_subset({"V99"})

    def test_empty_subset_is_base_times(self, inputs):
        hours = inputs.query_hours_with(frozenset())
        assert hours == dict(inputs.base_query_hours)

    def test_processing_hours_monotone_under_inclusion(self, inputs):
        # Adding views can only help (min over more sources).
        names = [c.name for c in inputs.candidates]
        subset = frozenset()
        previous = inputs.processing_hours(subset)
        for name in names:
            subset = subset | {name}
            current = inputs.processing_hours(subset)
            assert current <= previous + 1e-12
            previous = current

    def test_best_source_picks_fastest(self, inputs):
        all_views = frozenset(c.name for c in inputs.candidates)
        for query in inputs.workload:
            best = inputs.best_source(query.name, all_views)
            if best is None:
                continue
            best_hours = inputs.view_query_hours[(query.name, best)]
            for other in all_views:
                other_hours = inputs.view_query_hours.get((query.name, other))
                if other_hours is not None:
                    assert best_hours <= other_hours

    def test_plan_for_counts_views_once(self, inputs):
        subset = frozenset(c.name for c in inputs.candidates[:2])
        plan = inputs.plan_for(subset)
        assert len(plan.materialization_hours) == 2
        assert len(plan.maintenance_hours) == 2
        assert plan.views_total_gb == pytest.approx(
            sum(inputs.view_stats[n].size_gb for n in subset)
        )

    def test_baseline_plan_has_no_view_terms(self, inputs):
        plan = inputs.baseline_plan()
        assert plan.materialization_hours == ()
        assert plan.maintenance_hours == ()
        assert plan.views_total_gb == 0.0


class TestRunsPerPeriod:
    def test_runs_multiply_bill_not_response_time(self, sales_dataset_10gb):
        def build(runs):
            dep = DeploymentSpec(
                provider=aws_2012(BillingGranularity.PER_SECOND),
                instance_type="small",
                n_instances=5,
                runs_per_period=runs,
            )
            workload = paper_sales_workload(sales_dataset_10gb.schema, 3)
            lattice = CuboidLattice(sales_dataset_10gb.schema)
            candidates = candidates_from_workload(lattice, workload)
            inputs = PlanningEstimator(sales_dataset_10gb, dep).build(
                workload, candidates
            )
            outcome = CloudCostModel(dep).evaluate(inputs.baseline_plan())
            return outcome

        once = build(1.0)
        thirty = build(30.0)
        assert thirty.processing_hours == pytest.approx(once.processing_hours)
        assert thirty.computing.processing_cost.to_float() == pytest.approx(
            once.computing.processing_cost.to_float() * 30, rel=1e-9
        )
