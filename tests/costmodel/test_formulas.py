"""The paper's formulas against its worked examples (Sections 3-4)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costmodel import (
    StorageTimeline,
    computing_cost,
    storage_cost,
    storage_cost_with_views,
    transfer_cost,
    transfer_cost_general,
    view_computing_cost,
)
from repro.errors import CostModelError
from repro.money import Money
from repro.pricing import aws_2012


@pytest.fixture(scope="module")
def provider():
    return aws_2012()


class TestTransferFormulas:
    def test_example_1(self, provider):
        assert transfer_cost(provider.transfer, [10.0]) == Money("1.08")

    def test_results_pool_across_queries(self, provider):
        # Two 5 GB results bill like one 10 GB result (egress pools).
        assert transfer_cost(provider.transfer, [5.0, 5.0]) == Money("1.08")

    def test_empty_workload_is_free(self, provider):
        assert transfer_cost(provider.transfer, []) == Money(0)

    def test_negative_volume_rejected(self, provider):
        with pytest.raises(CostModelError):
            transfer_cost(provider.transfer, [-1.0])

    @given(
        results=st.lists(
            st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=5
        ),
        queries=st.lists(
            st.floats(min_value=0, max_value=10, allow_nan=False), max_size=5
        ),
        dataset=st.floats(min_value=0, max_value=10_000, allow_nan=False),
        inserted=st.floats(min_value=0, max_value=1000, allow_nan=False),
    )
    def test_formula_2_collapses_to_formula_3_with_free_ingress(
        self, results, queries, dataset, inserted
    ):
        # Section 3.1's simplification, verified rather than assumed.
        provider = aws_2012()
        general = transfer_cost_general(
            provider.transfer, results, queries, dataset, inserted
        )
        simplified = transfer_cost(provider.transfer, results)
        assert general == simplified


class TestComputingFormulas:
    def test_example_2(self, provider):
        assert computing_cost(provider.compute, "small", 50.0, 2) == Money("12.00")

    def test_examples_4_to_8(self, provider):
        breakdown = view_computing_cost(
            provider.compute,
            "small",
            2,
            query_hours=[40.0],              # Example 5-6
            materialization_hours=[1.0],     # Example 4
            maintenance_hours=[5.0],         # Example 7-8
        )
        assert breakdown.processing_cost == Money("9.60")
        assert breakdown.materialization_cost == Money("0.24")
        assert breakdown.maintenance_cost == Money("1.20")
        # Formula 6: the three terms add.
        assert breakdown.total == Money("11.04")

    def test_total_hours_sums_activities(self, provider):
        breakdown = view_computing_cost(
            provider.compute, "small", 2,
            query_hours=[1.0, 2.0],
            materialization_hours=[0.5],
            maintenance_hours=[0.25],
        )
        assert breakdown.total_hours == pytest.approx(3.75)

    def test_empty_activities_cost_nothing(self, provider):
        breakdown = view_computing_cost(
            provider.compute, "small", 2, query_hours=[]
        )
        assert breakdown.total == Money(0)

    def test_negative_hours_rejected(self, provider):
        with pytest.raises(CostModelError):
            view_computing_cost(
                provider.compute, "small", 2, query_hours=[-1.0]
            )


class TestStorageFormulas:
    def test_example_3_formula_value(self, provider):
        # The paper prints $2131.76 but its formula gives $2101.76:
        # 512 x 0.14 x 7 + 2560 x 0.125 x 5.
        timeline = StorageTimeline(512, 12, [(7, 2048)])
        assert storage_cost(provider.storage, timeline) == Money("2101.76")

    def test_example_9(self, provider):
        base = StorageTimeline(500, 12)
        assert storage_cost_with_views(provider.storage, base, 50.0) == Money(
            "924.00"
        )

    def test_single_interval_no_inserts(self, provider):
        timeline = StorageTimeline(500, 1)
        assert storage_cost(provider.storage, timeline) == Money("70.00")

    def test_zero_horizon_is_free(self, provider):
        timeline = StorageTimeline(500, 0)
        assert storage_cost(provider.storage, timeline) == Money(0)

    def test_views_never_reduce_storage(self, provider):
        base = StorageTimeline(500, 12)
        without = storage_cost_with_views(provider.storage, base, 0.0)
        with_views = storage_cost_with_views(provider.storage, base, 50.0)
        assert with_views >= without
