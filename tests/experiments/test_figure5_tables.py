"""Figure 5 and Tables 6-8: the qualitative shapes the paper claims.

The paper's headline conclusion is that "cloud view materialization is
always desirable"; these tests pin that shape (views win every
comparison) plus the structural relations between the panels, without
over-fitting the exact percentages (EXPERIMENTS.md discusses the
quantitative bands).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    PAPER_WORKLOAD_SIZES,
    ablation_tight_budget,
    figure5a,
    figure5b,
    figure5c,
    figure5d,
    table6,
    table7,
    table8,
)


def parse_rate(cell: str) -> float:
    assert cell.endswith("%")
    return float(cell[:-1]) / 100.0


@pytest.fixture(scope="module")
def fig_a(experiment_context):
    return figure5a(experiment_context)


@pytest.fixture(scope="module")
def fig_b(experiment_context):
    return figure5b(experiment_context)


class TestFigure5a:
    def test_views_always_faster(self, fig_a):
        for without, with_mv in zip(
            fig_a.column("T without (h)"), fig_a.column("T with MV (h)")
        ):
            assert with_mv < without

    def test_workload_time_grows_with_m(self, fig_a):
        times = fig_a.column("T without (h)")
        assert times == sorted(times)

    def test_rates_positive(self, fig_a):
        for cell in fig_a.column("IP rate"):
            assert parse_rate(cell) > 0

    def test_some_views_selected(self, fig_a):
        for views in fig_a.column("views"):
            assert views != "-"

    def test_baseline_times_near_paper_limits(self, fig_a):
        # The paper's MV2 limits (0.57/0.99/2.24 h) are its baseline
        # processing times; ours must land in the same regime.
        paper = {3: 0.57, 5: 0.99, 10: 2.24}
        for m, measured in zip(fig_a.column("queries"), fig_a.column("T without (h)")):
            assert measured == pytest.approx(paper[m], rel=0.25)


class TestFigure5b:
    def test_views_always_cheaper_under_time_limit(self, fig_b):
        for without, with_mv in zip(
            fig_b.column("C/run without"), fig_b.column("C/run with MV")
        ):
            assert float(with_mv.lstrip("$")) < float(without.lstrip("$"))

    def test_ic_rates_in_paper_band(self, fig_b):
        # Paper: 75/72/75.  Accept the 55-85% band (same regime).
        for cell in fig_b.column("IC rate"):
            assert 0.55 <= parse_rate(cell) <= 0.85


class TestFigure5cd:
    def test_tradeoff_rates_positive_both_alphas(self, experiment_context):
        for table in (figure5c(experiment_context), figure5d(experiment_context)):
            for cell in table.column("tradeoff rate"):
                assert parse_rate(cell) > 0

    def test_objective_always_improves(self, experiment_context):
        table = figure5c(experiment_context)
        for without, with_mv in zip(
            table.column("objective without"), table.column("objective with MV")
        ):
            assert with_mv < without


class TestTables:
    def test_table6_columns_align_with_paper(self, experiment_context):
        table = table6(experiment_context)
        assert table.column("queries") == list(PAPER_WORKLOAD_SIZES)
        assert [parse_rate(c) for c in table.column("IP rate (paper)")] == [
            0.25,
            0.36,
            0.60,
        ]

    def test_table7_measured_rates_positive(self, experiment_context):
        table = table7(experiment_context)
        for cell in table.column("IC rate (measured)"):
            assert parse_rate(cell) > 0.5

    def test_table8_both_alphas_positive(self, experiment_context):
        table = table8(experiment_context)
        for column in ("rate a=0.3 (measured)", "rate a=0.7 (measured)"):
            for cell in table.column(column):
                assert parse_rate(cell) > 0


class TestTightBudgetRegime:
    def test_rates_grow_from_m3_and_stay_in_paper_band(self, experiment_context):
        table = ablation_tight_budget(experiment_context)
        rates = [parse_rate(c) for c in table.column("IP rate (measured)")]
        # The paper's band is 25-60%; the regime shows the budget
        # binding at m=3 (smallest rate first).
        assert all(0.2 <= rate <= 0.7 for rate in rates)
        assert rates[0] == min(rates)
