"""Report rendering and CSV emission."""

from __future__ import annotations

import csv

import pytest

from repro.experiments.reporting import (
    ReportTable,
    format_rate,
    render_table,
    write_csv,
)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "x"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_title(self):
        text = render_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"
        assert text.splitlines()[1] == "="

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = render_table(["x"], [[0.123456]])
        assert "0.1235" in text


class TestFormatRate:
    def test_paper_style(self):
        assert format_rate(0.6) == "60%"
        assert format_rate(0.255) == "26%"
        assert format_rate(0.0) == "0%"


class TestReportTable:
    def test_add_row_and_column(self):
        table = ReportTable("t", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_unknown_column(self):
        table = ReportTable("t", ["a"])
        with pytest.raises(ValueError):
            table.column("zzz")

    def test_csv_roundtrip(self, tmp_path):
        table = ReportTable("t", ["a", "b"])
        table.add_row("x", 1)
        path = table.to_csv(tmp_path / "sub" / "t.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["x", "1"]]

    def test_csv_text(self):
        table = ReportTable("t", ["a"])
        table.add_row(5)
        assert table.to_csv_text().splitlines() == ["a", "5"]

    def test_write_csv_creates_directories(self, tmp_path):
        path = write_csv(tmp_path / "x" / "y.csv", ["h"], [[1]])
        assert path.exists()
