"""Workload-drift robustness."""

from __future__ import annotations

import pytest

from repro.experiments import ablation_workload_drift


@pytest.fixture(scope="module")
def table(experiment_context):
    return ablation_workload_drift(experiment_context)


def parse_rate(cell: str) -> float:
    assert cell.endswith("%")
    return float(cell[:-1]) / 100.0


class TestWorkloadDrift:
    def test_three_drifts_reported(self, table):
        assert len(table.rows) == 3

    def test_stale_never_worse_than_no_views(self, table):
        # Yesterday's views keep helping (or at worst do nothing).
        assert all(flag == "yes" for flag in table.column("stale still helps"))

    def test_fresh_never_worse_than_stale(self, table):
        for stale, fresh in zip(
            table.column("obj. stale"), table.column("obj. fresh")
        ):
            assert fresh <= stale + 1e-9

    def test_regret_nonnegative(self, table):
        for cell in table.column("regret"):
            assert parse_rate(cell) >= 0

    def test_growth_is_the_costly_drift(self, table):
        regrets = {
            row[0]: parse_rate(row[4]) for row in table.rows
        }
        grow = next(v for k, v in regrets.items() if k.startswith("grow"))
        others = [v for k, v in regrets.items() if not k.startswith("grow")]
        assert grow >= max(others)
