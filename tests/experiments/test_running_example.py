"""The paper's worked examples must reproduce digit-for-digit."""

from __future__ import annotations

import pytest

from repro.experiments import intro_example_table, running_example_table


@pytest.fixture(scope="module")
def table():
    return running_example_table()


def row_by_example(table, example_id):
    for row in table.rows:
        if row[0] == example_id:
            return row
    raise AssertionError(f"no row for {example_id}")


class TestRunningExample:
    def test_example_1_transfer(self, table):
        row = row_by_example(table, "Ex.1")
        assert row[3] == "$1.08"

    def test_example_2_computing(self, table):
        assert row_by_example(table, "Ex.2")[3] == "$12.00"

    def test_example_3_flags_paper_discrepancy(self, table):
        row = row_by_example(table, "Ex.3")
        assert row[2] == "$2131.76"       # what the paper prints
        assert row[3] == "$2101.76"       # what its formula yields
        assert "2101.76" in row[4]

    def test_example_4_materialization(self, table):
        assert row_by_example(table, "Ex.4")[3] == "$0.24"

    def test_examples_5_6_processing(self, table):
        assert row_by_example(table, "Ex.5-6")[3] == "$9.60"

    def test_examples_7_8_maintenance(self, table):
        assert row_by_example(table, "Ex.7-8")[3] == "$1.20"

    def test_example_9_storage_with_views(self, table):
        assert row_by_example(table, "Ex.9")[3] == "$924.00"

    def test_every_undisputed_example_matches(self, table):
        for row in table.rows:
            example, _, paper, computed, note = row
            if example == "Ex.3":
                continue  # the documented discrepancy
            assert paper == computed, f"{example}: {paper} != {computed}"


class TestIntroExample:
    def test_costs_match(self):
        table = intro_example_table()
        rows = {row[0]: row for row in table.rows}
        assert rows["without views (500 GB, 50 h)"][2] == "$62.00"
        assert rows["with views (550 GB, 40 h)"][2] == "$64.60"

    def test_rates_match(self):
        table = intro_example_table()
        rows = {row[0]: row for row in table.rows}
        assert rows["performance improvement"][2] == "20%"
        # The paper rounds 2.60/62.00 = 4.19% to "4%".
        assert rows["cost increase"][2] == "4.2%"
