"""Elastic fleets: churn billing semantics, parity, and edge cases.

Complements the generative suite in ``test_fleet_properties.py`` with
hand-computed examples: onboarding and offboarding priced against the
transfer schedules directly, settlement-only records, static-fleet
byte parity for the multi-tenant presets, and the loud-failure edges
(empty fleets, horizonless departures, gaps with nobody active).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import SimulationError
from repro.money import Money, ZERO
from repro.pricing.providers import (
    TierSchedule,
    TransferPricing,
    aws_2012,
    flat_cloud,
)
from repro.simulate import (
    AddQueries,
    DropQueries,
    LifecycleSimulator,
    MultiTenantSimulator,
    NeverReselect,
    SimulationClock,
    Tenant,
    TenantFleet,
    make_policy,
    multi_tenant_min_epochs,
    multi_tenant_sales_simulator,
    qualify,
)
from repro.simulate.builds import BuildConfig
from repro.simulate.events import ProviderMigration, TenantArrival
from repro.simulate.presets import (
    elastic_multi_tenant_simulator,
    sales_deployment,
)
from repro.simulate.stochastic import FleetChurn
from repro.workload import paper_sales_workload


def _paid_book():
    """An aws-2012 variant with paid ingress and untiered egress, so
    churn charges are nonzero and hand-computable on tiny datasets."""
    base = aws_2012()
    return replace(
        base,
        name="paid-cloud",
        transfer=TransferPricing(
            outbound=TierSchedule.flat(Money("0.20")),
            inbound=TierSchedule.flat(Money("0.10")),
        ),
    )


@pytest.fixture(scope="module")
def paid_deployment():
    return replace(sales_deployment(), provider=_paid_book())


@pytest.fixture(scope="module")
def churn_fleet(sales_dataset_10gb, paid_deployment):
    """Founder ``a`` plus tenant ``b`` active over epochs [1, 3)."""
    schema = sales_dataset_10gb.schema
    return TenantFleet(
        [
            Tenant("a", paper_sales_workload(schema, 3)),
            Tenant(
                "b",
                paper_sales_workload(schema, 2),
                arrival_epoch=1,
                departure_epoch=3,
            ),
        ],
        dataset=sales_dataset_10gb,
        deployment=paid_deployment,
    )


@pytest.fixture(scope="module")
def churn_ledger(churn_fleet):
    sim = MultiTenantSimulator(churn_fleet, clock=SimulationClock(5))
    return sim.run(NeverReselect()), sim


class TestChurnBilling:
    """Onboarding and offboarding against the transfer schedules."""

    def test_onboarding_priced_at_inbound_rates(
        self, churn_fleet, churn_ledger
    ):
        ledger, sim = churn_ledger
        b_names = [qualify("b", q.name) for q in churn_fleet.tenants[1].workload]
        # Result sizes depend only on (dataset, deployment, query), so
        # any problem over a workload containing b's queries prices
        # them; use the post-arrival epoch's own names via a problem
        # built on a state that includes b.
        state = churn_fleet.initial_state()
        arrival = next(
            e for e in churn_fleet.events() if isinstance(e, TenantArrival)
        )
        inputs = sim.builder.problem_for(arrival.apply(state)).inputs
        volume = sum(inputs.result_sizes_gb[name] for name in b_names)
        expected = _paid_book().transfer.inbound_cost(volume)
        assert expected > ZERO
        assert ledger.fleet.records[1].arrivals == (("b", expected),)
        assert ledger.tenant("b").records[0].onboarding_cost == expected
        # Onboarding is 100% direct: nobody else pays for b's arrival.
        assert ledger.tenant("a").total_onboarding_cost == ZERO

    def test_offboarding_priced_at_outbound_rates(
        self, churn_fleet, churn_ledger
    ):
        ledger, sim = churn_ledger
        b_names = [qualify("b", q.name) for q in churn_fleet.tenants[1].workload]
        state = churn_fleet.initial_state()
        arrival = next(
            e for e in churn_fleet.events() if isinstance(e, TenantArrival)
        )
        inputs = sim.builder.problem_for(arrival.apply(state)).inputs
        volume = sum(inputs.result_sizes_gb[name] for name in b_names)
        expected = _paid_book().transfer.outbound_cost(volume)
        assert expected > ZERO
        assert ledger.fleet.records[3].departures == (("b", expected),)
        assert ledger.tenant("b").records[-1].offboarding_cost == expected

    def test_settlement_record_is_settlement_only(self, churn_ledger):
        """The departure epoch carries the export and nothing else."""
        ledger, _sim = churn_ledger
        final = ledger.tenant("b").records[-1]
        assert final.epoch == 3
        assert final.offboarding_cost > ZERO
        assert final.total_cost == final.offboarding_cost
        assert final.processing_hours == 0.0

    def test_active_window_is_half_open(self, churn_ledger):
        """b is billed for [1, 3) plus the settlement record at 3."""
        ledger, _sim = churn_ledger
        assert [r.epoch for r in ledger.tenant("b").records] == [1, 2, 3]
        # The founder is billed every epoch of the horizon.
        assert [r.epoch for r in ledger.tenant("a").records] == list(range(5))

    def test_free_ingress_book_onboards_at_zero(self, sales_dataset_10gb):
        """On the paper's 2012 AWS book, arrival loads are free — the
        event is still recorded, with a $0 charge."""
        schema = sales_dataset_10gb.schema
        fleet = TenantFleet(
            [
                Tenant("a", paper_sales_workload(schema, 3)),
                Tenant(
                    "b", paper_sales_workload(schema, 2), arrival_epoch=1
                ),
            ],
            dataset=sales_dataset_10gb,
            deployment=sales_deployment(),
        )
        ledger = MultiTenantSimulator(fleet, clock=SimulationClock(3)).run(
            NeverReselect()
        )
        (pair,) = ledger.fleet.records[1].arrivals
        assert pair == ("b", ZERO)

    def test_drifted_departure_settles_remaining_footprint(
        self, sales_dataset_10gb, paid_deployment
    ):
        """Queries dropped before departure are not exported again."""
        schema = sales_dataset_10gb.schema
        fleet = TenantFleet(
            [
                Tenant("a", paper_sales_workload(schema, 3)),
                Tenant(
                    "b",
                    paper_sales_workload(schema, 2),
                    events=(DropQueries(epoch=2, names=("Q2",)),),
                    departure_epoch=3,
                ),
            ],
            dataset=sales_dataset_10gb,
            deployment=paid_deployment,
        )
        sim = MultiTenantSimulator(fleet, clock=SimulationClock(4))
        ledger = sim.run(NeverReselect())
        inputs = sim.builder.problem_for(fleet.initial_state()).inputs
        remaining = inputs.result_sizes_gb[qualify("b", "Q1")]
        expected = _paid_book().transfer.outbound_cost(remaining)
        assert ledger.fleet.records[3].departures == (("b", expected),)


class TestStaticParity:
    """No-churn fleets keep the pre-elastic books, byte for byte."""

    @pytest.mark.parametrize("n_tenants", [2, 3])
    def test_preset_fleet_matches_manual_lifecycle(self, n_tenants):
        """The fleet path prices exactly what a hand-merged
        LifecycleSimulator over the same state and events prices."""
        n_epochs = multi_tenant_min_epochs(n_tenants)
        sim = multi_tenant_sales_simulator(
            n_tenants=n_tenants, n_epochs=n_epochs, n_rows=8_000, seed=7
        )
        fleet = sim.fleet
        assert not fleet.is_elastic
        manual = LifecycleSimulator(
            initial=fleet.initial_state(),
            clock=SimulationClock(n_epochs),
            events=fleet.events(),
        )
        assert (
            sim.run(NeverReselect()).fleet.records
            == manual.run(NeverReselect()).records
        )

    def test_no_churn_elastic_preset_is_static(self):
        """Zero arrival rate compiles a fleet with no churn at all."""
        sim = elastic_multi_tenant_simulator(
            n_tenants=2,
            churn=FleetChurn(arrival_rate=0.0),
            n_epochs=8,
            n_rows=8_000,
        )
        assert not sim.fleet.is_elastic
        ledger = sim.run(NeverReselect())
        for record in ledger.fleet.records:
            assert record.arrivals == ()
            assert record.departures == ()
        assert ledger.fleet.arrival_count == 0
        assert ledger.fleet.departure_count == 0

    def test_static_ledgers_are_dense(self):
        """Every static tenant is billed every epoch — no settlement
        rows, no gaps — so pre-elastic CSV shapes are unchanged."""
        n_epochs = multi_tenant_min_epochs(3)
        sim = multi_tenant_sales_simulator(
            n_tenants=3, n_epochs=n_epochs, n_rows=8_000, seed=7
        )
        ledger = sim.run(NeverReselect())
        for tenant_ledger in ledger.tenants.values():
            assert [r.epoch for r in tenant_ledger.records] == list(
                range(n_epochs)
            )
            assert tenant_ledger.total_onboarding_cost == ZERO
            assert tenant_ledger.total_offboarding_cost == ZERO


class TestElasticEdges:
    """The loud-failure contract around degenerate schedules."""

    def test_empty_fleet_rejected(self, sales_dataset_10gb):
        with pytest.raises(SimulationError, match="at least one tenant"):
            TenantFleet(
                [],
                dataset=sales_dataset_10gb,
                deployment=sales_deployment(),
            )

    def test_fleet_needs_a_founder(self, sales_dataset_10gb):
        schema = sales_dataset_10gb.schema
        fleet = TenantFleet(
            [Tenant("a", paper_sales_workload(schema, 3), arrival_epoch=1)],
            dataset=sales_dataset_10gb,
            deployment=sales_deployment(),
        )
        with pytest.raises(SimulationError, match="active at epoch 0"):
            MultiTenantSimulator(fleet, clock=SimulationClock(4))

    def test_nobody_active_epoch_rejected(self, sales_dataset_10gb):
        """A schedule that empties the warehouse mid-run fails at
        construction, not at the empty epoch."""
        schema = sales_dataset_10gb.schema
        fleet = TenantFleet(
            [
                Tenant(
                    "a", paper_sales_workload(schema, 3), departure_epoch=2
                ),
                Tenant(
                    "b", paper_sales_workload(schema, 2), arrival_epoch=3
                ),
            ],
            dataset=sales_dataset_10gb,
            deployment=sales_deployment(),
        )
        with pytest.raises(SimulationError, match="active at epoch 2"):
            MultiTenantSimulator(fleet, clock=SimulationClock(5))

    def test_departure_at_horizon_rejected(self, sales_dataset_10gb):
        """Leaving exactly at the horizon has no epoch to settle in —
        the timeline refuses it; a tenant staying to the end uses
        ``departure_epoch=None``."""
        schema = sales_dataset_10gb.schema
        fleet = TenantFleet(
            [
                Tenant("a", paper_sales_workload(schema, 3)),
                Tenant(
                    "b", paper_sales_workload(schema, 2), departure_epoch=4
                ),
            ],
            dataset=sales_dataset_10gb,
            deployment=sales_deployment(),
        )
        with pytest.raises(SimulationError, match="only runs 4 epochs"):
            MultiTenantSimulator(fleet, clock=SimulationClock(4))

    def test_departure_before_arrival_rejected(self, sales_dataset_10gb):
        schema = sales_dataset_10gb.schema
        with pytest.raises(SimulationError, match="after arrival_epoch"):
            Tenant(
                "b",
                paper_sales_workload(schema, 2),
                arrival_epoch=3,
                departure_epoch=3,
            )

    def test_drift_outside_window_rejected(self, sales_dataset_10gb):
        schema = sales_dataset_10gb.schema
        with pytest.raises(SimulationError, match="outside its active"):
            Tenant(
                "b",
                paper_sales_workload(schema, 2),
                events=(
                    AddQueries(
                        epoch=1,
                        queries=tuple(paper_sales_workload(schema, 3))[2:],
                    ),
                ),
                arrival_epoch=2,
            )

    def test_departure_with_in_flight_builds(self, sales_dataset_10gb):
        """A tenant can leave while the async queue still holds work;
        the books stay balanced and its billing stops at departure."""
        schema = sales_dataset_10gb.schema
        fleet = TenantFleet(
            [
                Tenant("a", paper_sales_workload(schema, 3)),
                Tenant(
                    "b",
                    paper_sales_workload(schema, 2),
                    arrival_epoch=1,
                    departure_epoch=2,
                ),
            ],
            dataset=sales_dataset_10gb,
            deployment=sales_deployment(),
        )
        sim = MultiTenantSimulator(
            fleet,
            clock=SimulationClock(4),
            builds=BuildConfig(slots=1, hours_per_month=2000.0),
        )
        ledger = sim.run(make_policy("periodic"))
        ledger.verify_attribution()
        assert ledger.tenant("b").records[-1].epoch == 2

    def test_departure_settles_before_same_epoch_migration(
        self, sales_dataset_10gb, paid_deployment
    ):
        """Departures fire first within an epoch, so the settlement is
        exported at the book being *left*, not the migration target."""
        schema = sales_dataset_10gb.schema
        fleet = TenantFleet(
            [
                Tenant("a", paper_sales_workload(schema, 3)),
                Tenant(
                    "b", paper_sales_workload(schema, 2), departure_epoch=2
                ),
            ],
            dataset=sales_dataset_10gb,
            deployment=paid_deployment,
            shared_events=[ProviderMigration(epoch=2, provider=flat_cloud())],
        )
        sim = MultiTenantSimulator(fleet, clock=SimulationClock(4))
        ledger = sim.run(NeverReselect())
        ledger.verify_attribution()
        inputs = sim.builder.problem_for(fleet.initial_state()).inputs
        volume = sum(
            inputs.result_sizes_gb[qualify("b", q.name)]
            for q in fleet.tenants[1].workload
        )
        expected = _paid_book().transfer.outbound_cost(volume)
        assert ledger.fleet.records[2].departures == (("b", expected),)
        assert ledger.fleet.records[2].migrated_to == "flat-cloud"
