"""Multi-tenant simulation: merging, attribution exactness, fairness."""

from __future__ import annotations

import pytest

from repro.errors import InfeasibleProblemError, SimulationError
from repro.money import Money, ZERO
from repro.optimizer import FairShareScenario, select_views
from repro.optimizer.scenarios import Tradeoff
from repro.simulate import (
    AddQueries,
    FleetChange,
    GrowFactTable,
    LifecycleSimulator,
    MultiTenantSimulator,
    SimulationClock,
    Tenant,
    TenantFleet,
    WarehouseState,
    make_policy,
    multi_tenant_min_epochs,
    multi_tenant_sales_simulator,
    qualify,
)
from repro.simulate.presets import sales_deployment
from repro.workload import paper_sales_workload
from repro.workload.query import AggregateQuery


def _day_query(schema, name, geo, frequency):
    return AggregateQuery.per(
        schema, name, {"time": "day", "geography": geo}, frequency=frequency
    )


@pytest.fixture(scope="module")
def small_fleet_sim():
    """A 3-tenant preset fleet, sized for tests."""
    return multi_tenant_sales_simulator(
        n_tenants=3, n_epochs=multi_tenant_min_epochs(3), n_rows=8_000, seed=7
    )


@pytest.fixture(scope="module")
def fleet_ledgers(small_fleet_sim):
    policies = [make_policy(name) for name in ("never", "periodic", "regret")]
    return small_fleet_sim.compare(policies)


class TestTenantValidation:
    def test_empty_name_rejected(self, sales_dataset_10gb):
        workload = paper_sales_workload(sales_dataset_10gb.schema, 3)
        with pytest.raises(SimulationError, match="non-empty"):
            Tenant("", workload)

    def test_separator_in_name_rejected(self, sales_dataset_10gb):
        workload = paper_sales_workload(sales_dataset_10gb.schema, 3)
        with pytest.raises(SimulationError, match="separat"):
            Tenant("a/b", workload)

    def test_global_event_on_tenant_rejected(self, sales_dataset_10gb):
        workload = paper_sales_workload(sales_dataset_10gb.schema, 3)
        with pytest.raises(SimulationError, match="workload events"):
            Tenant(
                "acme", workload,
                events=(GrowFactTable(epoch=1, factor=1.2),),
            )

    def test_nonpositive_budget_share_rejected(self, sales_dataset_10gb):
        workload = paper_sales_workload(sales_dataset_10gb.schema, 3)
        with pytest.raises(SimulationError, match="budget_share"):
            Tenant("acme", workload, budget_share=0.0)

    def test_qualified_names(self, sales_dataset_10gb):
        workload = paper_sales_workload(sales_dataset_10gb.schema, 3)
        tenant = Tenant("acme", workload)
        names = [q.name for q in tenant.qualified_workload()]
        assert names == ["acme/Q1", "acme/Q2", "acme/Q3"]
        assert qualify("acme", "Q1") == "acme/Q1"


class TestFleetValidation:
    def test_duplicate_tenant_names_rejected(self, sales_dataset_10gb):
        workload = paper_sales_workload(sales_dataset_10gb.schema, 3)
        with pytest.raises(SimulationError, match="unique"):
            TenantFleet(
                [Tenant("a", workload), Tenant("a", workload)],
                dataset=sales_dataset_10gb,
                deployment=sales_deployment(),
            )

    def test_workload_event_in_shared_rejected(self, sales_dataset_10gb):
        schema = sales_dataset_10gb.schema
        workload = paper_sales_workload(schema, 3)
        query = _day_query(schema, "D1", "country", 1.0)
        with pytest.raises(SimulationError, match="owning tenant"):
            TenantFleet(
                [Tenant("a", workload)],
                dataset=sales_dataset_10gb,
                deployment=sales_deployment(),
                shared_events=(AddQueries(epoch=1, queries=(query,)),),
            )

    def test_fleet_events_qualify_tenant_drift(self, sales_dataset_10gb):
        schema = sales_dataset_10gb.schema
        workload = paper_sales_workload(schema, 3)
        query = _day_query(schema, "D1", "country", 1.0)
        fleet = TenantFleet(
            [Tenant("a", workload, (AddQueries(epoch=1, queries=(query,)),))],
            dataset=sales_dataset_10gb,
            deployment=sales_deployment(),
            shared_events=(FleetChange(epoch=2, n_instances=4),),
        )
        events = fleet.events()
        assert events[0].queries[0].name == "a/D1"
        assert events[1].n_instances == 4

    def test_budget_shares_default_to_even(self, sales_dataset_10gb):
        workload = paper_sales_workload(sales_dataset_10gb.schema, 3)
        fleet = TenantFleet(
            [Tenant("a", workload), Tenant("b", workload)],
            dataset=sales_dataset_10gb,
            deployment=sales_deployment(),
        )
        assert fleet.budget_shares() == {"a": 0.5, "b": 0.5}

    def test_explicit_shares_leave_remainder_for_unset(
        self, sales_dataset_10gb
    ):
        workload = paper_sales_workload(sales_dataset_10gb.schema, 3)
        fleet = TenantFleet(
            [
                Tenant("a", workload, budget_share=0.5),
                Tenant("b", workload),
                Tenant("c", workload),
            ],
            dataset=sales_dataset_10gb,
            deployment=sales_deployment(),
        )
        shares = fleet.budget_shares()
        assert shares["a"] == 0.5
        assert shares["b"] == shares["c"] == pytest.approx(0.25)
        caps = fleet.tenant_caps(Money("100.00"))
        assert caps["a"] == Money("50.00")

    def test_overcommitted_shares_rejected(self, sales_dataset_10gb):
        workload = paper_sales_workload(sales_dataset_10gb.schema, 3)
        fleet = TenantFleet(
            [Tenant("a", workload, budget_share=1.5), Tenant("b", workload)],
            dataset=sales_dataset_10gb,
            deployment=sales_deployment(),
        )
        with pytest.raises(SimulationError, match="leaving"):
            fleet.budget_shares()


class TestAttributionExactness:
    def test_tenant_totals_sum_to_fleet_total(self, fleet_ledgers):
        for fleet_ledger in fleet_ledgers.values():
            tenant_sum = sum(
                (l.total_cost for l in fleet_ledger.tenants.values()), ZERO
            )
            assert tenant_sum == fleet_ledger.total_cost

    def test_every_epoch_component_balances(self, fleet_ledgers):
        for fleet_ledger in fleet_ledgers.values():
            # verify_attribution re-checks operating/build/teardown per
            # epoch with exact Decimal equality; it raising would fail
            # this test.
            fleet_ledger.verify_attribution()
            records = fleet_ledger.fleet.records
            tenant_records = [
                l.records for l in fleet_ledger.tenants.values()
            ]
            for index, record in enumerate(records):
                shares = [r[index] for r in tenant_records]
                assert (
                    sum((s.total_cost for s in shares), ZERO)
                    == record.total_cost
                )

    def test_tenant_hours_match_group_processing_hours(
        self, small_fleet_sim, fleet_ledgers
    ):
        """processing_hours_for (the tenant slice of Formula 9) agrees
        with the hours the attributor bills each tenant for at epoch 0."""
        problem = small_fleet_sim.builder.problem_for(
            small_fleet_sim.fleet.initial_state()
        )
        ledger = fleet_ledgers["never"]
        subset = frozenset(ledger.fleet.records[0].subset)
        for name, tenant_ledger in ledger.tenants.items():
            names = {
                q.name
                for q in problem.inputs.workload
                if q.name.startswith(f"{name}/")
            }
            assert tenant_ledger.records[0].processing_hours == pytest.approx(
                problem.processing_hours_for(subset, names)
            )

    def test_group_processing_hours_rejects_unknown_names(
        self, small_fleet_sim
    ):
        from repro.errors import CostModelError

        problem = small_fleet_sim.builder.problem_for(
            small_fleet_sim.fleet.initial_state()
        )
        with pytest.raises(CostModelError, match="unknown"):
            problem.processing_hours_for(frozenset(), {"nobody/Q1"})

    def test_tenant_hours_sum_to_fleet_hours(self, fleet_ledgers):
        for fleet_ledger in fleet_ledgers.values():
            tenant_hours = sum(
                l.total_hours for l in fleet_ledger.tenants.values()
            )
            assert tenant_hours == pytest.approx(
                fleet_ledger.fleet.total_hours
            )

    def test_both_modes_balance_and_differ(self):
        ledgers = {}
        for mode in ("proportional", "even"):
            sim = multi_tenant_sales_simulator(
                n_tenants=3,
                n_epochs=multi_tenant_min_epochs(3),
                n_rows=8_000,
                seed=7,
                attribution=mode,
            )
            ledgers[mode] = sim.run(make_policy("regret"))
        proportional, even = ledgers["proportional"], ledgers["even"]
        # Same fleet, same decisions, same total bill...
        assert proportional.total_cost == even.total_cost
        for mode_ledger in ledgers.values():
            tenant_sum = sum(
                (l.total_cost for l in mode_ledger.tenants.values()), ZERO
            )
            assert tenant_sum == mode_ledger.total_cost
        # ...but the split depends on the mode.
        assert any(
            proportional.tenant(name).total_cost
            != even.tenant(name).total_cost
            for name in proportional.tenants
        )

    def test_verify_attribution_catches_cooked_books(self, fleet_ledgers):
        from dataclasses import replace

        from repro.simulate import FleetLedger, TenantLedger

        fleet_ledger = next(iter(fleet_ledgers.values()))
        cooked = {}
        for name, ledger in fleet_ledger.tenants.items():
            copy = TenantLedger(name, ledger.policy_name)
            for record in ledger.records:
                copy.append(
                    replace(record, storage_cost=record.storage_cost * 2)
                )
            cooked[name] = copy
        broken = FleetLedger(fleet_ledger.fleet, cooked)
        with pytest.raises(SimulationError, match="shares"):
            broken.verify_attribution()


class TestSingleTenantParity:
    def test_one_tenant_reproduces_single_tenant_run(self, sales_dataset_10gb):
        """The acceptance criterion: a 1-tenant fleet is bit-for-bit the
        single-tenant simulator, and its one tenant is billed the whole
        fleet ledger."""
        schema = sales_dataset_10gb.schema
        workload = paper_sales_workload(schema, 5)
        tenant_events = (
            AddQueries(
                epoch=3, queries=(_day_query(schema, "D1", "country", 3.0),)
            ),
        )
        shared = (GrowFactTable(epoch=5, factor=1.3),)

        single = LifecycleSimulator(
            initial=WarehouseState(
                workload=workload,
                dataset=sales_dataset_10gb,
                deployment=sales_deployment(),
            ),
            clock=SimulationClock(8),
            events=list(tenant_events) + list(shared),
        )
        solo = single.run(make_policy("regret"))

        fleet = TenantFleet(
            [Tenant("solo", workload, tenant_events)],
            dataset=sales_dataset_10gb,
            deployment=sales_deployment(),
            shared_events=shared,
        )
        multi = MultiTenantSimulator(fleet, clock=SimulationClock(8))
        fleet_ledger = multi.run(make_policy("regret"))

        assert len(solo) == len(fleet_ledger.fleet)
        for ours, theirs in zip(solo.records, fleet_ledger.fleet.records):
            assert ours.epoch == theirs.epoch
            assert ours.subset == theirs.subset
            assert ours.operating_cost == theirs.operating_cost
            assert ours.build_cost == theirs.build_cost
            assert ours.teardown_cost == theirs.teardown_cost
            assert ours.processing_hours == theirs.processing_hours
            assert ours.views_built == theirs.views_built
            assert ours.views_dropped == theirs.views_dropped
            assert ours.reoptimized == theirs.reoptimized
            assert ours.regret == theirs.regret
        tenant = fleet_ledger.tenant("solo")
        assert tenant.total_cost == solo.total_cost
        assert tenant.total_cost == fleet_ledger.total_cost


class TestFairness:
    def test_needs_a_constraint(self):
        with pytest.raises(Exception, match="caps"):
            FairShareScenario(shares_fn=lambda outcome: {})

    def test_soft_mode_key_orders_by_overshoot_first(self, small_fleet_sim):
        problem = small_fleet_sim.builder.problem_for(
            small_fleet_sim.fleet.initial_state()
        )
        scenario = small_fleet_sim.fair_scenario_factory(
            max_share_slack=0.0
        )(problem)
        outcome = problem.baseline()
        key = scenario.key(outcome)
        # overshoot dollars first, then the base (cost) objective
        assert len(key) == 1 + len(Tradeoff(alpha=0.0).key(outcome))
        assert key[0] >= 0.0

    def test_shares_sum_to_outcome_total(self, small_fleet_sim):
        problem = small_fleet_sim.builder.problem_for(
            small_fleet_sim.fleet.initial_state()
        )
        attributor = small_fleet_sim.attributor
        for subset in (frozenset(), frozenset(list(problem.candidate_names)[:2])):
            outcome = problem.evaluate(subset)
            shares = attributor.outcome_shares(problem, outcome)
            assert sum(shares.values(), ZERO) == outcome.total_cost

    def test_hard_impossible_caps_are_infeasible(self, small_fleet_sim):
        problem = small_fleet_sim.builder.problem_for(
            small_fleet_sim.fleet.initial_state()
        )
        caps = {name: Money("0.01") for name in small_fleet_sim.fleet.tenant_names}
        scenario = small_fleet_sim.fair_scenario_factory(
            caps=caps, hard=True
        )(problem)
        with pytest.raises(InfeasibleProblemError):
            select_views(problem, scenario, "greedy")

    def test_soft_fairness_narrows_the_spread(self):
        """The fairness mode's acceptance-style check: under the soft
        even-split preference no tenant's share exceeds the cap by more
        than the unconstrained run's worst overshoot."""
        epochs = multi_tenant_min_epochs(2)
        plain = multi_tenant_sales_simulator(
            n_tenants=2, n_epochs=epochs, n_rows=8_000, seed=7
        )
        base_ledger = plain.run(make_policy("periodic", period=4))

        fair = multi_tenant_sales_simulator(
            n_tenants=2, n_epochs=epochs, n_rows=8_000, seed=7
        )
        factory = fair.fair_scenario_factory(max_share_slack=0.5)
        fair_ledger = fair.run(
            make_policy("periodic", period=4, scenario_factory=factory)
        )

        def spread(fleet_ledger):
            costs = [
                l.total_cost.to_float()
                for l in fleet_ledger.tenants.values()
            ]
            return max(costs) / min(costs)

        assert spread(fair_ledger) < spread(base_ledger)
        fair_ledger.verify_attribution()

    def test_regret_still_fires_under_soft_fairness(self):
        """Regression: soft fairness puts overshoot first in the key,
        so regret measured on key[0] alone would read 0 whenever both
        the held set and the optimum are overshoot-free — silently
        degenerating regret into never-reselect.  The lexicographic
        regret must still catch cost drift in the later components."""
        epochs = multi_tenant_min_epochs(2)
        sim = multi_tenant_sales_simulator(
            n_tenants=2, n_epochs=epochs, n_rows=8_000, seed=7
        )
        # A slack this large never binds, so key[0] (overshoot) is 0
        # for every subset and only the cost component can drive
        # re-selection.
        factory = sim.fair_scenario_factory(max_share_slack=1000.0)
        fair = sim.run(
            make_policy("regret", scenario_factory=factory)
        )
        plain = multi_tenant_sales_simulator(
            n_tenants=2, n_epochs=epochs, n_rows=8_000, seed=7
        ).run(make_policy("regret"))
        # With a never-binding fairness envelope the policy must track
        # the plain regret policy, drift-triggered re-selections included.
        assert (
            fair.fleet.reoptimization_count
            == plain.fleet.reoptimization_count
        )
        assert fair.total_cost == plain.total_cost

    def test_knapsack_falls_back_when_caps_bind(self, small_fleet_sim):
        """select_views(knapsack) on a fairness scenario must return a
        scenario-feasible outcome when one exists."""
        problem = small_fleet_sim.builder.problem_for(
            small_fleet_sim.fleet.initial_state()
        )
        # Generous caps: the unconstrained knapsack answer already fits.
        total = problem.baseline().total_cost
        caps = {
            name: total for name in small_fleet_sim.fleet.tenant_names
        }
        scenario = small_fleet_sim.fair_scenario_factory(
            caps=caps, hard=True
        )(problem)
        result = select_views(problem, scenario, "knapsack")
        assert scenario.feasible(result.outcome)


class TestPreset:
    def test_too_few_epochs_rejected(self):
        needed = multi_tenant_min_epochs(3)
        with pytest.raises(SimulationError, match=str(needed)):
            multi_tenant_sales_simulator(
                n_tenants=3, n_epochs=needed - 1, n_rows=5_000
            )

    def test_needs_a_tenant(self):
        with pytest.raises(SimulationError, match="at least one tenant"):
            multi_tenant_sales_simulator(n_tenants=0, n_rows=5_000)

    def test_tenants_drift_out_of_phase(self, small_fleet_sim):
        arrivals = [
            event.epoch
            for event in small_fleet_sim.simulator.timeline
            if isinstance(event, AddQueries)
        ]
        assert arrivals == sorted(arrivals)
        assert len(set(arrivals)) == len(arrivals)
