"""Monte Carlo harness: determinism, aggregation, parallel equality."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.money import Money
from repro.simulate import (
    CLAIRVOYANT,
    DistributionSummary,
    MonteCarloConfig,
    MonteCarloResult,
    PolicySpec,
    run_monte_carlo,
    run_trial,
)

#: One small config shared by (and cached across) the tests below.
SMALL = MonteCarloConfig(n_trials=4, n_epochs=6, n_rows=4_000, seed=11)


@pytest.fixture(scope="module")
def small_result():
    return run_monte_carlo(SMALL, jobs=1)


class TestDeterminism:
    def test_jobs_never_change_the_result(self, small_result):
        """The acceptance property: --jobs 1 == --jobs 4, byte for
        byte, because each trial is pure in (config, trial)."""
        parallel = run_monte_carlo(SMALL, jobs=4)
        assert parallel.rows() == small_result.rows()

    def test_same_seed_same_csv_bytes(self, tmp_path, small_result):
        rerun = run_monte_carlo(SMALL, jobs=1)
        first, second = tmp_path / "a.csv", tmp_path / "b.csv"
        small_result.to_csv(first)
        rerun.to_csv(second)
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_different_outcomes(self, small_result):
        other = run_monte_carlo(
            MonteCarloConfig(n_trials=4, n_epochs=6, n_rows=4_000, seed=12),
            jobs=1,
        )
        assert other.rows() != small_result.rows()

    def test_trials_sample_distinct_futures(self):
        first = run_trial(SMALL, 0)
        second = run_trial(SMALL, 1)
        assert SMALL.trial_seed(0) != SMALL.trial_seed(1)
        assert [o.total_cost for o in first] != [
            o.total_cost for o in second
        ]

    def test_run_trial_is_idempotent(self):
        assert run_trial(SMALL, 2) == run_trial(SMALL, 2)


class TestAggregation:
    def test_rows_cover_every_policy_and_the_baseline(self, small_result):
        assert small_result.policies == (
            "never",
            "periodic(every 4)",
            "regret(>0.05)",
            CLAIRVOYANT,
        )
        policies = {row[0] for row in small_result.rows()[1:]}
        assert policies == set(small_result.policies)

    def test_clairvoyant_regret_is_zero(self, small_result):
        summary = small_result.metric(CLAIRVOYANT, "regret")
        assert summary.mean == pytest.approx(0.0)
        assert summary.maximum == pytest.approx(0.0)

    def test_regret_is_finite_and_bounded_below(self, small_result):
        """Regret can dip slightly negative (the always-reselect
        baseline pays churn a lazier policy skips) but must stay a
        finite ratio above -1 (cost is positive)."""
        for policy in small_result.policies:
            summary = small_result.metric(policy, "regret")
            assert summary.minimum > -1.0
            assert summary.maximum < float("inf")

    def test_metric_counts_match_trials(self, small_result):
        summary = small_result.metric("never", "total_cost")
        assert summary.n == SMALL.n_trials
        assert summary.minimum <= summary.median <= summary.maximum

    def test_unknown_policy_and_metric_fail_loudly(self, small_result):
        with pytest.raises(SimulationError, match="no policy"):
            small_result.metric("sometimes", "total_cost")
        with pytest.raises(SimulationError, match="unknown metric"):
            small_result.metric("never", "karma")

    def test_result_rejects_incomplete_outcomes(self, small_result):
        with pytest.raises(SimulationError, match="expected"):
            MonteCarloResult(SMALL, small_result.outcomes[:-1])


class TestMultiTenant:
    def test_tenant_totals_join_the_metrics(self):
        config = MonteCarloConfig(
            n_trials=2,
            n_epochs=6,
            n_rows=4_000,
            seed=11,
            n_tenants=2,
            policies=(PolicySpec("regret"),),
        )
        serial = run_monte_carlo(config, jobs=1)
        parallel = run_monte_carlo(config, jobs=2)
        assert serial.rows() == parallel.rows()
        names = serial.metric_names()
        assert "tenant_total_cost[t1]" in names
        assert "tenant_total_cost[t2]" in names
        t1 = serial.metric("regret(>0.05)", "tenant_total_cost[t1]")
        t2 = serial.metric("regret(>0.05)", "tenant_total_cost[t2]")
        fleet = serial.metric("regret(>0.05)", "total_cost")
        assert t1.mean + t2.mean == pytest.approx(fleet.mean)


class TestConfigValidation:
    def test_policy_spec_rejects_unknown_names(self):
        with pytest.raises(SimulationError, match="unknown policy"):
            PolicySpec("sometimes")

    def test_duplicate_policy_labels_rejected(self):
        with pytest.raises(SimulationError, match="identically"):
            MonteCarloConfig(
                policies=(PolicySpec("never"), PolicySpec("never"))
            )

    def test_clairvoyant_label_is_reserved(self):
        spec = PolicySpec("periodic", period=1)
        assert spec.label() == "periodic(every 1)"  # allowed: distinct
        with pytest.raises(SimulationError):
            MonteCarloConfig(n_trials=0)

    def test_unknown_generator_rejected(self):
        with pytest.raises(SimulationError, match="unknown generator"):
            MonteCarloConfig(generator="chaos")

    def test_trial_bounds_enforced(self):
        with pytest.raises(SimulationError, match="outside"):
            run_trial(SMALL, SMALL.n_trials)
        with pytest.raises(SimulationError, match="jobs"):
            run_monte_carlo(SMALL, jobs=0)

    def test_hysteresis_travels_through_the_spec(self):
        spec = PolicySpec("regret", threshold=0.1, hysteresis=3)
        assert spec.label() == "regret(>0.1, hold 3)"
        policy = spec.build()
        assert policy.hysteresis == 3


class TestDistributionSummary:
    def test_moments_and_quantiles(self):
        summary = DistributionSummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.stdev == pytest.approx(1.2909944487)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)
        assert summary.p10 == pytest.approx(1.3)
        assert summary.p90 == pytest.approx(3.7)

    def test_single_sample_has_zero_spread(self):
        summary = DistributionSummary.from_values([5.0])
        assert summary.stdev == 0.0
        assert summary.p10 == summary.p90 == 5.0

    def test_empty_sample_rejected(self):
        with pytest.raises(SimulationError):
            DistributionSummary.from_values([])


class TestTrialOutcomes:
    def test_outcome_totals_are_money(self, small_result):
        outcome = small_result.outcomes[0]
        assert isinstance(outcome.total_cost, Money)
        assert outcome.total_cost >= outcome.build_cost
