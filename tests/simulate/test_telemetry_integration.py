"""Telemetry threaded through the lifecycle stack.

Three acceptance properties live here:

* telemetry **disabled** (the default) perturbs nothing — a run under
  an active collector produces byte-identical ledgers to a plain run;
* telemetry **enabled** on a stochastic multi-tenant async Monte Carlo
  run covers every instrumented subsystem;
* worker registries merge deterministically — ``jobs=1`` and
  ``jobs=4`` export byte-identical Prometheus dumps.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.simulate import (
    MonteCarloConfig,
    PolicySpec,
    compose_observers,
    drifting_sales_simulator,
    make_policy,
    run_monte_carlo,
)
from repro.simulate.simulator import EpochObserver
from repro.telemetry import Telemetry, activate, current, prometheus_text

#: Small but fully-featured: stochastic drift, two tenants, a bounded
#: build queue, and one arbitrage-aware policy — every instrumented
#: subsystem fires.
FULL_STACK = MonteCarloConfig(
    generator="mixed",
    n_trials=2,
    n_epochs=8,
    n_rows=4_000,
    seed=7,
    n_tenants=2,
    build_slots=2,
    policies=(
        PolicySpec("regret"),
        PolicySpec("periodic", arbitrage=True),
    ),
)


def _run_drifting(collector=None):
    """One fresh 20-epoch drifting run, optionally under a collector."""
    simulator = drifting_sales_simulator(n_epochs=20, n_rows=5_000, seed=7)
    if collector is None:
        return simulator.run(make_policy("regret"))
    with activate(collector):
        return simulator.run(make_policy("regret"))


class TestPassivity:
    def test_enabled_telemetry_does_not_perturb_the_ledger(self):
        plain = _run_drifting()
        collected = _run_drifting(Telemetry(trace=True))
        assert collected.records == plain.records
        assert collected.render() == plain.render()
        assert collected.summary() == plain.summary()

    def test_monte_carlo_rows_identical_with_and_without_telemetry(self):
        config = MonteCarloConfig(
            n_trials=2, n_epochs=6, n_rows=4_000, seed=11
        )
        plain = run_monte_carlo(config, jobs=1)
        with activate(Telemetry()):
            collected = run_monte_carlo(config, jobs=1)
        assert collected.rows() == plain.rows()


class TestEpochRecordCacheFields:
    def test_per_epoch_deltas_sum_to_the_builder_totals(self):
        simulator = drifting_sales_simulator(
            n_epochs=20, n_rows=5_000, seed=7
        )
        before = simulator._builder.evaluation_stats()
        ledger = simulator.run(make_policy("regret"))
        after = simulator._builder.evaluation_stats()
        assert ledger.total_cache_hits == after.hits - before.hits
        assert (
            ledger.total_subsets_priced == after.priced - before.priced
        )

    def test_hit_rate_and_call_identity(self):
        ledger = _run_drifting()
        for record in ledger.records:
            assert record.evaluate_calls == (
                record.cache_hits + record.subsets_priced
            )
            assert 0.0 <= record.cache_hit_rate <= 1.0
        assert ledger.cache_hit_rate > 0.0  # steady epochs re-hit

    def test_fields_default_to_zero(self):
        """Old-style construction (no cache stats) still works."""
        ledger = _run_drifting()
        record = ledger.records[0]
        required = [
            f.name
            for f in dataclasses.fields(record)
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        ]
        rebuilt = type(record)(
            **{name: getattr(record, name) for name in required}
        )
        assert rebuilt.cache_hits == 0
        assert rebuilt.subsets_priced == 0
        assert rebuilt.cache_hit_rate == 0.0


class TestSubsystemCoverage:
    @pytest.fixture(scope="class")
    def full_stack_registry(self):
        with activate(Telemetry()) as collector:
            run_monte_carlo(FULL_STACK, jobs=1)
        return collector.registry

    def test_at_least_five_subsystems_report(self, full_stack_registry):
        covered = set(full_stack_registry.subsystems())
        assert covered >= {
            "arbitrage",
            "builds",
            "cache",
            "montecarlo",
            "optimizer",
            "simulator",
        }

    def test_core_counters_are_plausible(self, full_stack_registry):
        registry = full_stack_registry
        trials = registry.counter("montecarlo.trials")
        assert trials == FULL_STACK.n_trials
        # Each trial yields one outcome per policy plus clairvoyant.
        outcomes = registry.counter("montecarlo.outcomes")
        assert outcomes == trials * (len(FULL_STACK.policies) + 1)
        epochs = registry.counter("simulator.epochs")
        assert epochs >= outcomes * FULL_STACK.n_epochs
        assert registry.counter("optimizer.solves", algorithm="greedy") > 0
        assert registry.counter("cache.subsets_priced") > 0
        assert registry.counter("arbitrage.quotes") > 0
        assert registry.counter("builds.submitted") > 0
        assert registry.gauge("builds.queue_depth") >= 1

    def test_epoch_cost_histogram_sums_exactly(self, full_stack_registry):
        hist = full_stack_registry.histogram("simulator.epoch_cost")
        assert hist.count == full_stack_registry.counter("simulator.epochs")

    def test_jobs_do_not_change_the_merged_dump(self, full_stack_registry):
        with activate(Telemetry()) as collector:
            run_monte_carlo(FULL_STACK, jobs=4)
        assert prometheus_text(collector.registry) == prometheus_text(
            full_stack_registry
        )


class TestObserverErgonomics:
    def test_compose_of_nothing_is_none(self):
        assert compose_observers() is None
        assert compose_observers(None, None) is None

    def test_compose_of_one_is_that_observer(self):
        def observer(record, problem, breakdown):
            pass

        assert compose_observers(None, observer, None) is observer

    def test_composed_observers_run_in_order(self):
        calls = []
        first = lambda record, problem, breakdown: calls.append("first")
        second = lambda record, problem, breakdown: calls.append("second")
        fan_out = compose_observers(first, None, second)
        fan_out("record", "problem", "breakdown")
        assert calls == ["first", "second"]

    def test_plain_callables_satisfy_the_protocol(self):
        def observer(record, problem, breakdown):
            pass

        assert isinstance(observer, EpochObserver)

    def test_observer_sees_every_epoch(self):
        seen = []
        simulator = drifting_sales_simulator(
            n_epochs=20, n_rows=5_000, seed=7
        )
        ledger = simulator.run(
            make_policy("regret"),
            observer=lambda record, problem, breakdown: seen.append(
                record.epoch
            ),
        )
        assert seen == [record.epoch for record in ledger.records]


class TestAmbientHygiene:
    def test_suite_leaves_no_collector_installed(self):
        assert not current().enabled
