"""The build-queue subsystem: jobs, slots, disciplines, proration."""

import math

import pytest

from repro.errors import SimulationError
from repro.money import Money
from repro.simulate.builds import (
    BUILD_DISCIPLINES,
    BuildConfig,
    BuildJob,
    BuildQueue,
    prorate,
    tile_fractions,
)
from repro.simulate.state import Holdings


def job(view, hours, month=0.0):
    return BuildJob(view=view, hours=hours, submitted_month=month)


class TestBuildJob:
    def test_rejects_empty_view(self):
        with pytest.raises(SimulationError, match="view name"):
            BuildJob(view="", hours=1.0, submitted_month=0.0)

    def test_rejects_negative_hours(self):
        with pytest.raises(SimulationError, match="negative"):
            job("V1", -1.0)

    def test_rejects_negative_submission(self):
        with pytest.raises(SimulationError, match="month >= 0"):
            BuildJob(view="V1", hours=1.0, submitted_month=-1.0)


class TestBuildQueueValidation:
    def test_needs_a_slot(self):
        with pytest.raises(SimulationError, match="at least one slot"):
            BuildQueue(slots=0)

    def test_rejects_unknown_discipline(self):
        with pytest.raises(SimulationError, match="discipline"):
            BuildQueue(discipline="lifo")

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(SimulationError, match="hours_per_month"):
            BuildQueue(hours_per_month=0.0)

    def test_config_validates_eagerly(self):
        with pytest.raises(SimulationError, match="discipline"):
            BuildConfig(discipline="random")

    def test_config_builds_fresh_queues(self):
        config = BuildConfig(slots=2, discipline="shortest")
        first, second = config.queue(), config.queue()
        first.submit(job("V1", 10.0))
        assert first.depth == 1
        assert second.depth == 0

    def test_instant_flag(self):
        assert BuildConfig(hours_per_month=float("inf")).instant
        assert not BuildConfig().instant
        assert "instant" in BuildConfig(hours_per_month=math.inf).describe()


class TestQueueMechanics:
    def test_single_job_lands_after_its_duration(self):
        queue = BuildQueue(hours_per_month=100.0)
        queue.submit(job("V1", 50.0))
        assert queue.pending_views() == frozenset({"V1"})
        assert queue.advance_to(0.4) == ()
        (done,) = queue.advance_to(1.0)
        assert done.job.view == "V1"
        assert done.completed_month == pytest.approx(0.5)
        assert done.latency_months == pytest.approx(0.5)
        assert queue.depth == 0

    def test_fifo_runs_in_submission_order_on_one_slot(self):
        queue = BuildQueue(slots=1, hours_per_month=100.0)
        queue.submit(job("LONG", 80.0))
        queue.submit(job("SHORT", 10.0))
        done = queue.advance_to(2.0)
        assert [c.job.view for c in done] == ["LONG", "SHORT"]
        assert done[0].completed_month == pytest.approx(0.8)
        assert done[1].completed_month == pytest.approx(0.9)

    def test_shortest_jumps_the_queue(self):
        queue = BuildQueue(
            slots=1, discipline="shortest", hours_per_month=100.0
        )
        # One slot busy with a medium job; the backlog re-orders.
        queue.submit(job("MEDIUM", 40.0))
        queue.submit(job("LONG", 80.0))
        queue.submit(job("SHORT", 10.0))
        done = queue.advance_to(2.0)
        assert [c.job.view for c in done] == ["MEDIUM", "SHORT", "LONG"]

    def test_two_slots_run_concurrently(self):
        queue = BuildQueue(slots=2, hours_per_month=100.0)
        queue.submit(job("A", 50.0))
        queue.submit(job("B", 50.0))
        done = queue.advance_to(1.0)
        assert {c.job.view for c in done} == {"A", "B"}
        assert all(c.completed_month == pytest.approx(0.5) for c in done)

    def test_backlogged_start_is_reported_as_delayed(self):
        queue = BuildQueue(slots=1, hours_per_month=100.0)
        queue.submit(job("A", 50.0))
        queue.submit(job("B", 10.0))
        queue.advance_to(1.0)
        delayed = queue.drain_delayed_starts()
        assert [(j.view, m) for j, m in delayed] == [("B", 0.5)]
        # Draining clears the log.
        assert queue.drain_delayed_starts() == ()

    def test_zero_duration_chain_lands_instantly_on_one_slot(self):
        queue = BuildQueue(slots=1, hours_per_month=float("inf"))
        for name in ("A", "B", "C"):
            queue.submit(job(name, 123.0, month=3.0))
        done = queue.advance_to(4.0)
        assert [c.job.view for c in done] == ["A", "B", "C"]
        assert all(c.completed_month == 3.0 for c in done)
        assert all(c.latency_months == 0.0 for c in done)
        assert queue.drain_delayed_starts() == ()

    def test_duplicate_inflight_view_rejected(self):
        queue = BuildQueue()
        queue.submit(job("V1", 10.0))
        with pytest.raises(SimulationError, match="already in flight"):
            queue.submit(job("V1", 10.0))

    def test_completion_frees_the_slot_mid_advance(self):
        queue = BuildQueue(slots=1, hours_per_month=100.0)
        queue.submit(job("A", 20.0))
        queue.submit(job("B", 20.0))
        # Advance partway: A lands at 0.2, B starts at 0.2, lands 0.4.
        done = queue.advance_to(0.3)
        assert [c.job.view for c in done] == ["A"]
        (b,) = queue.advance_to(0.5)
        assert b.started_month == pytest.approx(0.2)
        assert b.completed_month == pytest.approx(0.4)


class TestCancellation:
    def test_cancelling_a_queued_job_sinks_nothing(self):
        queue = BuildQueue(slots=1, hours_per_month=100.0)
        queue.submit(job("A", 50.0))
        queue.submit(job("B", 50.0))
        (cancelled,) = queue.cancel({"B"}, month=0.1)
        assert cancelled.job.view == "B"
        assert cancelled.sunk_hours == 0.0
        assert queue.pending_views() == frozenset({"A"})

    def test_cancelling_a_running_job_sinks_elapsed_compute(self):
        queue = BuildQueue(slots=1, hours_per_month=100.0)
        queue.submit(job("A", 50.0))
        queue.advance_to(0.2)
        (cancelled,) = queue.cancel({"A"}, month=0.2)
        assert cancelled.sunk_hours == pytest.approx(20.0)
        assert queue.depth == 0

    def test_sunk_compute_is_capped_at_the_job(self):
        queue = BuildQueue(hours_per_month=100.0)
        queue.submit(job("A", 50.0))
        # Cancel long past the finish it never got to report.
        (cancelled,) = queue.cancel({"A"}, month=9.0)
        assert cancelled.sunk_hours == 50.0

    def test_cancel_frees_the_slot_for_the_backlog(self):
        queue = BuildQueue(slots=1, hours_per_month=100.0)
        queue.submit(job("A", 50.0))
        queue.submit(job("B", 10.0))
        queue.cancel({"A"}, month=0.0)
        (done,) = queue.advance_to(1.0)
        assert done.job.view == "B"
        assert done.started_month == 0.0

    def test_cancel_is_idempotent_for_unknown_views(self):
        queue = BuildQueue()
        assert queue.cancel({"GHOST"}, month=1.0) == ()
        assert queue.cancel((), month=1.0) == ()


class TestHoldings:
    def test_live_and_pending_must_be_disjoint(self):
        with pytest.raises(SimulationError, match="both live and pending"):
            Holdings(live=frozenset({"V1"}), pending=frozenset({"V1"}))

    def test_all_views_and_depth(self):
        holdings = Holdings(
            live=frozenset({"V1"}), pending=frozenset({"V2", "V3"})
        )
        assert holdings.all_views == frozenset({"V1", "V2", "V3"})
        assert holdings.queue_depth == 2
        assert "pending=[V2,V3]" in holdings.describe()


class TestProration:
    def test_fractions_tile_exactly_to_one(self):
        # 0.1-month segments of a 0.7-month epoch: float division
        # alone would miss 1.0; the residual construction cannot.
        fractions = tile_fractions([0.1] * 7, 0.7)
        assert sum(fractions) == 1.0

    def test_prorated_segments_sum_to_the_full_period_charge(self):
        full = Money("123.456789123456789")
        fractions = tile_fractions([0.1, 0.37, 0.21, 0.32], 1.0)
        shares = prorate(full, fractions)
        assert sum(shares, Money(0)) == full

    def test_single_segment_is_the_identity(self):
        full = Money("7.77")
        assert prorate(full, tile_fractions([1.0], 1.0)) == (full,)

    def test_rejects_empty_and_negative(self):
        with pytest.raises(SimulationError, match="zero segments"):
            prorate(Money(1), [])
        with pytest.raises(SimulationError, match="negative"):
            prorate(Money(1), [0.5, -0.1])
        with pytest.raises(SimulationError, match="zero segments"):
            tile_fractions([], 1.0)

    def test_disciplines_registry(self):
        assert BUILD_DISCIPLINES == ("fifo", "shortest")
