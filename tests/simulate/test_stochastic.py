"""Stochastic drift generators: seeding, scopes, compiled timelines."""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.pricing.providers import aws_2012
from repro.simulate import (
    GENERATOR_PRESETS,
    AddQueries,
    DropQueries,
    GeneratorContext,
    GeometricGrowth,
    GrowFactTable,
    PoissonQueryChurn,
    PriceChange,
    ReweightQueries,
    SeasonalWave,
    SpotPriceWalk,
    compile_timeline,
    derive_seed,
    generator_preset,
    split_by_scope,
    spot_repriced,
    stochastic_multi_tenant_simulator,
    stochastic_sales_simulator,
)
from repro.workload import paper_sales_workload


@pytest.fixture()
def context(sales_dataset_10gb):
    return GeneratorContext(
        schema=sales_dataset_10gb.schema,
        base_workload=paper_sales_workload(sales_dataset_10gb.schema, 5),
        provider=aws_2012(),
        n_epochs=12,
    )


def _timeline_signature(timeline):
    """A comparable identity: epoch + describe() of every event."""
    return tuple((e.epoch, e.describe()) for e in timeline)


class TestSeeding:
    def test_derive_seed_is_stable_and_label_sensitive(self):
        assert derive_seed(7, "trial:0") == derive_seed(7, "trial:0")
        assert derive_seed(7, "trial:0") != derive_seed(7, "trial:1")
        assert derive_seed(7, "trial:0") != derive_seed(8, "trial:0")

    def test_same_seed_compiles_identical_timelines(self, context):
        generators = generator_preset("mixed")
        first = compile_timeline(generators, 99, context)
        second = compile_timeline(generators, 99, context)
        assert _timeline_signature(first) == _timeline_signature(second)
        assert len(first) > 0

    def test_different_seeds_compile_different_timelines(self, context):
        generators = generator_preset("mixed")
        first = compile_timeline(generators, 99, context)
        second = compile_timeline(generators, 100, context)
        assert _timeline_signature(first) != _timeline_signature(second)

    def test_generators_draw_from_independent_streams(self, context):
        """Adding a generator must not perturb the others' samples."""
        churn_alone = compile_timeline((PoissonQueryChurn(),), 5, context)
        churn_with_growth = compile_timeline(
            (PoissonQueryChurn(), GeometricGrowth()), 5, context
        )
        kept = [
            (e.epoch, e.describe())
            for e in churn_with_growth
            if not isinstance(e, GrowFactTable)
        ]
        assert kept == list(_timeline_signature(churn_alone))


class TestGenerators:
    def test_events_stay_within_the_horizon(self, context):
        for name in GENERATOR_PRESETS:
            timeline = compile_timeline(generator_preset(name), 3, context)
            assert timeline.last_epoch < context.n_epochs
            assert all(event.epoch >= 1 for event in timeline)

    def test_churn_drops_only_what_it_added(self, context):
        timeline = compile_timeline(
            (PoissonQueryChurn(arrival_rate=2.0, mean_lifetime=2.0),),
            11,
            context,
        )
        added, dropped = set(), set()
        for event in timeline:
            if isinstance(event, AddQueries):
                added.update(q.name for q in event.queries)
            elif isinstance(event, DropQueries):
                # Every drop must name a query added strictly earlier.
                assert set(event.names) <= added
                dropped.update(event.names)
        assert added
        assert dropped <= added
        assert all(name.startswith("S") for name in added)

    def test_churn_rejects_prefix_colliding_with_base_workload(
        self, context
    ):
        generator = PoissonQueryChurn(arrival_rate=3.0, prefix="Q")
        with pytest.raises(SimulationError, match="collides"):
            compile_timeline((generator,), 11, context)

    def test_seasonal_wave_reweights_every_base_query_positively(
        self, context
    ):
        timeline = compile_timeline(
            (SeasonalWave(period=6.0, amplitude=0.8, jitter=0.1),),
            11,
            context,
        )
        base_names = {q.name for q in context.base_workload}
        events = list(timeline)
        assert len(events) == context.n_epochs - 1
        for event in events:
            assert isinstance(event, ReweightQueries)
            assert {n for n, _ in event.frequencies} == base_names
            assert all(f > 0 for _, f in event.frequencies)

    def test_growth_factors_are_clamped(self, context):
        timeline = compile_timeline(
            (GeometricGrowth(monthly_rate=0.5, sigma=2.0),), 13, context
        )
        for event in timeline:
            assert isinstance(event, GrowFactTable)
            assert 0.5 <= event.factor <= 2.0

    def test_spot_walk_stays_within_bounds(self, context):
        timeline = compile_timeline(
            (SpotPriceWalk(volatility=0.5, floor=0.8, ceiling=1.25),),
            17,
            context,
        )
        rates = []
        for event in timeline:
            assert isinstance(event, PriceChange)
            small = event.provider.compute.instance("small")
            rates.append(small.hourly_rate)
        base = aws_2012().compute.instance("small").hourly_rate
        assert rates  # the walk does move
        for rate in rates:
            assert base * 0.8 <= rate <= base * 1.25

    def test_spot_repriced_scales_only_compute(self):
        base = aws_2012()
        doubled = spot_repriced(base, 2.0)
        assert doubled.compute.instance("small").hourly_rate == (
            base.compute.instance("small").hourly_rate * 2
        )
        assert doubled.storage.fingerprint() == base.storage.fingerprint()
        assert doubled.transfer.fingerprint() == base.transfer.fingerprint()
        assert doubled.fingerprint() != base.fingerprint()
        with pytest.raises(SimulationError):
            spot_repriced(base, 0.0)

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            PoissonQueryChurn(arrival_rate=-1.0)
        with pytest.raises(SimulationError):
            PoissonQueryChurn(mean_lifetime=0.0)
        with pytest.raises(SimulationError):
            SeasonalWave(amplitude=1.0)
        with pytest.raises(SimulationError):
            GeometricGrowth(sigma=-0.1)
        with pytest.raises(SimulationError):
            SpotPriceWalk(floor=1.5)

    def test_unknown_preset_rejected(self):
        with pytest.raises(SimulationError, match="unknown generator"):
            generator_preset("chaos")

    def test_split_by_scope(self):
        workload, warehouse = split_by_scope(generator_preset("mixed"))
        assert {type(g) for g in workload} == {
            PoissonQueryChurn,
            SeasonalWave,
        }
        assert {type(g) for g in warehouse} == {
            GeometricGrowth,
            SpotPriceWalk,
        }


class TestStochasticPresets:
    def test_single_tenant_runs_and_is_seed_deterministic(self):
        from repro.simulate import make_policy

        ledgers = []
        for _ in range(2):
            simulator = stochastic_sales_simulator(
                n_epochs=6, n_rows=4_000, seed=3
            )
            ledgers.append(simulator.run(make_policy("regret")).render())
        assert ledgers[0] == ledgers[1]

    def test_drift_seed_varies_the_future_not_the_world(self):
        one = stochastic_sales_simulator(
            n_epochs=6, n_rows=4_000, seed=3, drift_seed=1
        )
        two = stochastic_sales_simulator(
            n_epochs=6, n_rows=4_000, seed=3, drift_seed=2
        )
        assert _timeline_signature(one.timeline) != _timeline_signature(
            two.timeline
        )

    def test_multi_tenant_fleet_attributes_exactly(self):
        from repro.simulate import make_policy

        simulator = stochastic_multi_tenant_simulator(
            n_tenants=2, n_epochs=6, n_rows=4_000, seed=3
        )
        fleet_ledger = simulator.run(make_policy("never"))
        fleet_ledger.verify_attribution()  # books must balance exactly
        assert set(fleet_ledger.tenants) == {"t1", "t2"}

    def test_tenants_sample_independent_futures(self):
        simulator = stochastic_multi_tenant_simulator(
            n_tenants=2, n_epochs=8, n_rows=4_000, seed=3, generator="churn"
        )
        by_tenant = {"t1": [], "t2": []}
        for tenant in simulator.fleet.tenants:
            for event in tenant.events:
                by_tenant[tenant.name].append((event.epoch, event.describe()))
        assert by_tenant["t1"] != by_tenant["t2"]


class TestPoissonSampler:
    def test_mean_tracks_the_rate(self):
        from repro.simulate.stochastic import _poisson

        rng = random.Random(0)
        draws = [_poisson(rng, 3.0) for _ in range(4_000)]
        assert sum(draws) / len(draws) == pytest.approx(3.0, rel=0.05)
        assert _poisson(rng, 0.0) == 0
