"""Optimizer specs through policies, PolicySpec, and Monte Carlo."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import SimulationError
from repro.optimizer import BeamSearchSpec, GreedySpec, KnapsackSpec
from repro.simulate import (
    MonteCarloConfig,
    PolicySpec,
    make_policy,
    run_monte_carlo,
)


class TestPolicyOptimizerKwarg:
    def test_default_is_greedy(self):
        policy = make_policy("periodic")
        assert policy.algorithm == "greedy"
        assert isinstance(policy.optimizer, GreedySpec)

    def test_optimizer_accepts_name_and_spec(self):
        by_name = make_policy("periodic", optimizer="knapsack")
        by_spec = make_policy("periodic", optimizer=KnapsackSpec())
        assert by_name.algorithm == by_spec.algorithm == "knapsack"

    def test_search_spec_knobs_travel(self):
        spec = BeamSearchSpec(budget=64, seed=9)
        policy = make_policy("regret", optimizer=spec)
        assert policy.optimizer is spec
        assert policy.algorithm == "beam"

    def test_legacy_algorithm_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="algorithm"):
            policy = make_policy("periodic", algorithm="knapsack")
        assert policy.algorithm == "knapsack"

    def test_both_kwargs_rejected(self):
        with pytest.raises(SimulationError, match="not both"):
            make_policy(
                "periodic", algorithm="greedy", optimizer=GreedySpec()
            )

    def test_no_warning_on_optimizer_kwarg(self, recwarn):
        make_policy("periodic", optimizer="greedy")
        assert not [
            w
            for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]


class TestPolicySpec:
    def test_legacy_algorithm_field_builds_silently(self, recwarn):
        # PolicySpec routes the legacy name through the registry, so
        # existing configs build without deprecation noise.
        policy = PolicySpec("periodic", algorithm="knapsack").build()
        assert policy.algorithm == "knapsack"
        assert not [
            w
            for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]

    def test_optimizer_field_takes_precedence(self):
        spec = PolicySpec(
            "periodic", algorithm="knapsack", optimizer=BeamSearchSpec()
        )
        assert spec.build().algorithm == "beam"

    def test_spec_with_optimizer_pickles(self):
        spec = PolicySpec("regret", optimizer=BeamSearchSpec(budget=32))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.build().algorithm == "beam"


class TestMonteCarloEquivalence:
    def test_legacy_and_spec_spellings_identical(self):
        legacy = MonteCarloConfig(
            n_trials=2,
            n_epochs=4,
            n_rows=4_000,
            seed=7,
            policies=(PolicySpec("periodic", algorithm="greedy"),),
        )
        spec = MonteCarloConfig(
            n_trials=2,
            n_epochs=4,
            n_rows=4_000,
            seed=7,
            policies=(PolicySpec("periodic", optimizer=GreedySpec()),),
        )
        assert (
            run_monte_carlo(legacy, jobs=1).rows()
            == run_monte_carlo(spec, jobs=1).rows()
        )

    def test_search_optimizer_identical_across_jobs(self):
        config = MonteCarloConfig(
            n_trials=3,
            n_epochs=4,
            n_rows=4_000,
            seed=7,
            policies=(
                PolicySpec(
                    "periodic",
                    optimizer=BeamSearchSpec(budget=48, seed=1),
                ),
            ),
        )
        serial = run_monte_carlo(config, jobs=1)
        parallel = run_monte_carlo(config, jobs=2)
        assert serial.rows() == parallel.rows()
