"""Asynchronous epoch execution: parity, proration, sunk builds."""

import pytest

from repro.costmodel.computing import view_computing_cost
from repro.cube.lattice import CuboidLattice
from repro.data.sales_generator import generate_sales
from repro.money import Money, ZERO
from repro.simulate import (
    ArbitrageAware,
    BuildConfig,
    EpochProblemBuilder,
    MonteCarloConfig,
    PolicyDecision,
    PolicySpec,
    ReselectionPolicy,
    WarehouseState,
    async_sales_simulator,
    default_market,
    drifting_sales_simulator,
    full_catalogue,
    make_policy,
    multi_tenant_sales_simulator,
    run_monte_carlo,
    sales_deployment,
    stochastic_sales_simulator,
)
from repro.workload.workload import paper_sales_workload

ROWS = 4_000
EPOCHS = 19  # the drifting scenario's minimum horizon

INSTANT = BuildConfig(slots=4, hours_per_month=float("inf"))
#: 0.5 compute-hours per wall-clock month: a one-hour build takes two
#: epochs, which is what makes mid-epoch landings and cancellations
#: easy to provoke in tests.
SLOW = BuildConfig(hours_per_month=0.5)


def sync_simulator(**kwargs):
    return drifting_sales_simulator(n_epochs=EPOCHS, n_rows=ROWS, **kwargs)


def slow_simulator(**kwargs):
    return drifting_sales_simulator(
        n_epochs=EPOCHS, n_rows=ROWS, builds=SLOW, **kwargs
    )


class TestSyncParity:
    """Zero-latency async must reproduce the sync ledgers byte for byte."""

    @pytest.mark.parametrize("name", ["never", "periodic", "regret"])
    def test_drifting_preset_parity(self, name):
        sync = sync_simulator().run(make_policy(name))
        instant = async_sales_simulator(
            n_epochs=EPOCHS,
            n_rows=ROWS,
            build_slots=4,
            hours_per_month=float("inf"),
        ).run(make_policy(name))
        assert instant.records == sync.records
        assert instant.render() == sync.render()

    def test_single_slot_is_enough_for_instant_parity(self):
        # Zero-duration builds chain through one slot within the
        # submission instant, so even slots=1 reproduces sync exactly.
        sync = sync_simulator().run(make_policy("periodic"))
        instant = drifting_sales_simulator(
            n_epochs=EPOCHS,
            n_rows=ROWS,
            builds=BuildConfig(slots=1, hours_per_month=float("inf")),
        ).run(make_policy("periodic"))
        assert instant.records == sync.records

    def test_stochastic_preset_parity(self):
        sync = stochastic_sales_simulator(
            generator="mixed", n_epochs=12, n_rows=ROWS, seed=7
        ).run(make_policy("regret"))
        instant = stochastic_sales_simulator(
            generator="mixed",
            n_epochs=12,
            n_rows=ROWS,
            seed=7,
            builds=INSTANT,
        ).run(make_policy("regret"))
        assert instant.records == sync.records

    def test_multi_tenant_preset_parity(self):
        sync = multi_tenant_sales_simulator(
            n_tenants=2, n_epochs=17, n_rows=ROWS
        ).run(make_policy("regret"))
        instant = multi_tenant_sales_simulator(
            n_tenants=2, n_epochs=17, n_rows=ROWS, builds=INSTANT
        ).run(make_policy("regret"))
        assert instant.render() == sync.render()
        assert instant.fleet.records == sync.fleet.records
        for name in ("t1", "t2"):
            assert (
                instant.tenant(name).records == sync.tenant(name).records
            )


class TestMidEpochLandings:
    def test_slow_builds_split_epochs_into_segments(self):
        ledger = slow_simulator().run(make_policy("periodic"))
        split = [r for r in ledger if r.segments]
        assert split, "slow builds must land mid-epoch somewhere"
        for record in split:
            assert sum(s.fraction for s in record.segments) == 1.0
            # Holdings only grow within an epoch, segment by segment.
            subsets = [frozenset(s.subset) for s in record.segments]
            for earlier, later in zip(subsets, subsets[1:]):
                assert earlier < later
        assert ledger.total_build_latency_months > 0

    def test_queries_answered_from_previous_holdings_until_landing(self):
        # Epoch 0 starts with nothing live: while the first views
        # build, queries run off the base table, so the first epoch's
        # response time must exceed the sync run's (which pretends the
        # views exist immediately).
        sync = sync_simulator().run(make_policy("never"))
        slow = slow_simulator().run(make_policy("never"))
        assert (
            slow.records[0].processing_hours
            > sync.records[0].processing_hours
        )

    def test_segment_billing_reconstructs_exactly(self):
        # Rebuild epoch 0's pricing world independently and re-derive
        # the prorated operating charge from the recorded segments.
        ledger = slow_simulator().run(make_policy("never"))
        record = ledger.records[0]
        assert record.segments
        dataset = generate_sales(n_rows=ROWS, seed=42, target_gb=10.0)
        state = WarehouseState(
            workload=paper_sales_workload(dataset.schema, 5),
            dataset=dataset,
            deployment=sales_deployment(),
        )
        builder = EpochProblemBuilder(
            full_catalogue(CuboidLattice(dataset.schema))
        )
        problem = builder.problem_for(state)
        expected = ZERO
        for segment in record.segments:
            breakdown = problem.evaluate(frozenset(segment.subset)).breakdown
            full = (
                breakdown.total - breakdown.computing.materialization_cost
            )
            expected = expected + (
                full if segment.fraction == 1.0 else full * segment.fraction
            )
        assert record.operating_cost == expected

    def test_materialization_billed_once_across_defer_and_land(self):
        # Same decisions, same views, same build hours: deferring the
        # landing must not change what materialization costs in total.
        sync = sync_simulator().run(make_policy("never"))
        slow = slow_simulator().run(make_policy("never"))
        assert slow.total_build_cost == sync.total_build_cost
        assert slow.rebuild_count == sync.rebuild_count
        built = [v for r in slow for v in r.views_built]
        assert len(built) == len(set(built))

    def test_steady_state_epochs_match_sync_once_everything_landed(self):
        sync = sync_simulator().run(make_policy("never"))
        slow = slow_simulator().run(make_policy("never"))
        # By mid-run the initial selection has fully landed; epochs
        # with no in-flight builds bill exactly like the sync run.
        steady = slow.records[6]
        assert not steady.segments
        assert steady.operating_cost == sync.records[6].operating_cost
        assert steady.processing_hours == pytest.approx(
            sync.records[6].processing_hours
        )


class _ScriptedPolicy(ReselectionPolicy):
    """Decides a fixed sequence of subsets, observing queue depth."""

    name = "scripted"

    def __init__(self, steps):
        super().__init__()
        self._steps = steps
        self.depths = []

    def decide_in_context(self, epoch_index, problem, current, context):
        self.depths.append(context.queue_depth)
        step = self._steps[min(epoch_index, len(self._steps) - 1)]
        return PolicyDecision(frozenset(step), reoptimized=True)

    def decide(self, epoch_index, problem, current):
        step = self._steps[min(epoch_index, len(self._steps) - 1)]
        return PolicyDecision(frozenset(step), reoptimized=True)


class TestCancellation:
    def _first_choice(self):
        """The view the reference policy builds first (a real name)."""
        ledger = sync_simulator().run(make_policy("never"))
        return ledger.records[0].views_built[0]

    def test_cancelled_build_bills_only_sunk_compute(self):
        view = self._first_choice()
        policy = _ScriptedPolicy([{view}, set()])
        # 0.2 compute-hours per month: the ~0.39-hour build needs ~2
        # epochs, so dropping it in epoch 1 cancels it mid-build.
        simulator = drifting_sales_simulator(
            n_epochs=EPOCHS,
            n_rows=ROWS,
            builds=BuildConfig(hours_per_month=0.2),
        )
        ledger = simulator.run(policy)
        first, second = ledger.records[0], ledger.records[1]
        assert first.views_built == ()
        assert second.views_cancelled == (view,)
        assert second.views_built == ()
        # Exactly one wall-clock month ran: 0.2 compute-hours sunk.
        deployment = sales_deployment()
        expected = view_computing_cost(
            deployment.provider.compute,
            deployment.instance_type,
            deployment.n_instances,
            query_hours=(),
            materialization_hours=(0.2,),
        ).materialization_cost
        assert second.cancelled_cost == expected
        assert ledger.total_build_cost == ZERO
        # Never landed, so there is nothing to tear down or egress.
        assert second.views_dropped == ()
        assert second.teardown_cost == ZERO
        assert "cancelled@1" in " ".join(second.events)

    def test_queue_depth_is_observable_by_policies(self):
        view = self._first_choice()
        policy = _ScriptedPolicy([{view}, {view}, {view}])
        simulator = drifting_sales_simulator(
            n_epochs=EPOCHS,
            n_rows=ROWS,
            builds=BuildConfig(hours_per_month=0.2),
        )
        simulator.run(policy)
        assert policy.depths[0] == 0
        assert policy.depths[1] >= 1  # still building at epoch 1

    def test_horizon_end_closes_out_inflight_builds(self):
        view = self._first_choice()
        # Submit in the last epoch: the build cannot land before the
        # horizon ends, so it is closed out at sunk cost.
        steps = [set()] * (EPOCHS - 1) + [{view}]
        ledger = slow_simulator().run(_ScriptedPolicy(steps))
        last = ledger.records[-1]
        assert last.views_cancelled == (view,)
        assert last.views_built == ()
        assert last.cancelled_cost > ZERO
        assert ledger.total_build_cost == ZERO

    def test_cancelled_while_queued_costs_nothing(self):
        ledger_sync = sync_simulator().run(make_policy("never"))
        subset = set(ledger_sync.records[0].subset)
        if len(subset) < 2:
            subset = {
                ledger_sync.records[0].subset[0],
                sync_simulator().builder.catalogue[0].name,
            }
        # One slot: the second view queues behind the first; dropping
        # it in epoch 1 cancels a job that never started.
        ordered = sorted(subset)
        policy = _ScriptedPolicy([set(ordered), {ordered[0]}])
        config = BuildConfig(slots=1, hours_per_month=0.25)
        ledger = drifting_sales_simulator(
            n_epochs=EPOCHS, n_rows=ROWS, builds=config
        ).run(policy)
        second = ledger.records[1]
        assert ordered[1] in second.views_cancelled
        assert second.cancelled_cost == ZERO


class TestMigrationCancellation:
    def test_migration_bills_sunk_compute_at_the_source_book(self):
        # A build runs for one month on the AWS book, then a scheduled
        # migration to flat-cloud abandons it.  The burned compute ran
        # on AWS, so the sunk charge must use AWS rates — not the
        # (cheaper) target's.
        from repro.pricing import flat_cloud
        from repro.simulate import (
            LifecycleSimulator,
            ProviderMigration,
            SimulationClock,
        )
        from repro.data.sales_generator import generate_sales

        dataset = generate_sales(n_rows=ROWS, seed=42, target_gb=10.0)
        initial = WarehouseState(
            workload=paper_sales_workload(dataset.schema, 5),
            dataset=dataset,
            deployment=sales_deployment(),
        )
        simulator = LifecycleSimulator(
            initial=initial,
            clock=SimulationClock(3),
            events=[ProviderMigration(epoch=1, provider=flat_cloud())],
            builds=BuildConfig(hours_per_month=0.2),
        )
        view = (
            sync_simulator().run(make_policy("never")).records[0].subset[0]
        )
        # Hold the view before the hop, drop it at the hop: the build
        # (~0.39 h at 0.2 h/month) is still running when the
        # migration fires at month 1 with 0.2 compute-hours sunk.
        ledger = simulator.run(_ScriptedPolicy([{view}, set(), set()]))
        hop = ledger.records[1]
        assert hop.migrated_to == "flat-cloud"
        assert hop.views_cancelled == (view,)
        source = sales_deployment()  # the AWS book the hours ran on
        expected = view_computing_cost(
            source.provider.compute,
            source.instance_type,
            source.n_instances,
            query_hours=(),
            materialization_hours=(0.2,),
        ).materialization_cost
        assert hop.cancelled_cost == expected
        # And AWS rates really differ from the target's, so the
        # assertion above distinguishes the two books.
        target = flat_cloud()
        wrong = view_computing_cost(
            target.compute,
            source.instance_type,
            source.n_instances,
            query_hours=(),
            materialization_hours=(0.2,),
        ).materialization_cost
        assert wrong != expected


class TestMultiTenantAsync:
    def test_async_attribution_balances_exactly(self):
        simulator = multi_tenant_sales_simulator(
            n_tenants=3, n_epochs=17, n_rows=ROWS, builds=SLOW
        )
        fleet_ledger = simulator.run(make_policy("periodic"))
        # run() verifies internally; re-verify explicitly and check
        # the segment path was actually exercised.
        fleet_ledger.verify_attribution()
        assert any(r.segments for r in fleet_ledger.fleet)
        total = sum(
            (t.total_cost for t in fleet_ledger.tenants.values()), ZERO
        )
        assert total == fleet_ledger.total_cost

    def test_async_attribution_balances_in_even_mode(self):
        simulator = multi_tenant_sales_simulator(
            n_tenants=2,
            n_epochs=17,
            n_rows=ROWS,
            attribution="even",
            builds=BuildConfig(slots=2, discipline="shortest",
                               hours_per_month=0.5),
        )
        fleet_ledger = simulator.run(make_policy("regret"))
        fleet_ledger.verify_attribution()


class TestAsyncMonteCarlo:
    def test_async_summaries_identical_across_jobs(self):
        config = MonteCarloConfig(
            n_trials=4,
            n_epochs=8,
            n_rows=ROWS,
            seed=7,
            build_slots=1,
            policies=(PolicySpec("regret"),),
        )
        serial = run_monte_carlo(config, jobs=1)
        parallel = run_monte_carlo(config, jobs=4)
        assert serial.rows() == parallel.rows()

    def test_async_metrics_surface_in_summaries(self):
        config = MonteCarloConfig(
            n_trials=2,
            n_epochs=8,
            n_rows=ROWS,
            seed=7,
            build_slots=2,
            build_discipline="shortest",
            policies=(PolicySpec("periodic"),),
        )
        result = run_monte_carlo(config)
        names = result.metric_names()
        assert "cancelled_cost" in names
        assert "build_latency_months" in names
        assert "builds=2x shortest" in result.summary()

    def test_build_knobs_validated(self):
        import repro.errors as errors

        with pytest.raises(errors.SimulationError, match="build_slots"):
            MonteCarloConfig(build_slots=-1)
        with pytest.raises(errors.SimulationError, match="discipline"):
            MonteCarloConfig(build_slots=1, build_discipline="lifo")


class TestArbitrageComposition:
    def test_arbitrage_runs_over_async_builds(self):
        # Migration cancels in-flight builds and re-queues the subset
        # on the target book; the run must stay consistent end to end.
        simulator = stochastic_sales_simulator(
            generator="spot",
            n_epochs=10,
            n_rows=ROWS,
            seed=7,
            market=default_market(),
            builds=BuildConfig(hours_per_month=1.0),
        )
        policy = ArbitrageAware(
            make_policy("regret"), horizon=2, hysteresis=1
        )
        ledger = simulator.run(policy)
        assert len(ledger) == 10
        assert ledger.total_cost > Money(0)
