"""Re-selection policies and the simulation ledger."""

from __future__ import annotations

import pytest

from repro.cube import CuboidLattice
from repro.errors import SimulationError
from repro.money import Money
from repro.simulate import (
    EpochProblemBuilder,
    EpochRecord,
    NeverReselect,
    PeriodicReselect,
    RegretTriggered,
    SimulationLedger,
    full_catalogue,
    make_policy,
)


@pytest.fixture()
def problem(initial_state):
    lattice = CuboidLattice(initial_state.workload.schema)
    return EpochProblemBuilder(full_catalogue(lattice)).problem_for(
        initial_state
    )


class TestPolicies:
    def test_every_policy_optimizes_its_first_epoch(self, problem):
        for policy in (NeverReselect(), PeriodicReselect(3), RegretTriggered()):
            decision = policy.decide(0, problem, None)
            assert decision.reoptimized

    def test_never_keeps_whatever_it_holds(self, problem):
        policy = NeverReselect()
        held = frozenset({"V1"})
        for epoch in (1, 5, 40):
            decision = policy.decide(epoch, problem, held)
            assert decision.subset == held
            assert not decision.reoptimized

    def test_periodic_reoptimizes_on_schedule(self, problem):
        policy = PeriodicReselect(period=3)
        held = frozenset({"V1"})
        assert policy.decide(3, problem, held).reoptimized
        assert not policy.decide(4, problem, held).reoptimized
        assert not policy.decide(5, problem, held).reoptimized
        assert policy.decide(6, problem, held).reoptimized

    def test_regret_keeps_the_optimum(self, problem):
        policy = RegretTriggered(threshold=0.05)
        optimum = policy.decide(0, problem, None).subset
        decision = policy.decide(1, problem, optimum)
        assert not decision.reoptimized
        assert decision.subset == optimum
        assert decision.regret == pytest.approx(0.0)

    def test_regret_triggers_on_a_bad_holding(self, problem):
        policy = RegretTriggered(threshold=0.01)
        # Holding nothing while views would pay for themselves is
        # regretful in this world; the policy must switch.
        optimum = policy.decide(0, problem, None).subset
        assert optimum  # the scenario does select views
        decision = policy.decide(1, problem, frozenset())
        assert decision.regret > 0.01
        assert decision.reoptimized
        assert decision.subset == optimum

    def test_regret_reoptimizes_out_of_an_infeasible_holding(self, problem):
        """Regression: an infeasible held set can look cheap on the
        objective; regret must not excuse a violated constraint."""
        from repro.optimizer import TimeLimit

        baseline_hours = problem.baseline().processing_hours
        everything = problem.evaluate(frozenset(problem.candidate_names))
        # A deadline the empty set misses but the full set meets.
        limit = (everything.processing_hours + baseline_hours) / 2
        scenario = TimeLimit(limit)
        assert not scenario.feasible(problem.baseline())
        policy = RegretTriggered(threshold=10.0, scenario=scenario)
        decision = policy.decide(1, problem, frozenset())
        assert decision.reoptimized
        assert decision.regret == float("inf")
        assert scenario.feasible(problem.evaluate(decision.subset))

    def test_make_policy_registry(self):
        assert isinstance(make_policy("never"), NeverReselect)
        assert make_policy("periodic", period=7).period == 7
        assert make_policy("regret", threshold=0.2).threshold == 0.2
        assert make_policy("regret", hysteresis=3).hysteresis == 3
        with pytest.raises(SimulationError, match="unknown policy"):
            make_policy("sometimes")

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            PeriodicReselect(period=0)
        with pytest.raises(SimulationError):
            RegretTriggered(threshold=-0.1)
        with pytest.raises(SimulationError):
            RegretTriggered(hysteresis=0)


class TestHysteresis:
    def test_regret_must_persist_before_churning(self, problem):
        """With hysteresis=3, two over-threshold epochs hold; the
        third adopts the optimum."""
        policy = RegretTriggered(threshold=0.01, hysteresis=3)
        optimum = policy.decide(0, problem, None).subset
        assert optimum
        bad = frozenset()  # holding nothing is regretful in this world
        first = policy.decide(1, problem, bad)
        assert first.regret > 0.01 and not first.reoptimized
        assert first.subset == bad
        second = policy.decide(2, problem, bad)
        assert second.regret > 0.01 and not second.reoptimized
        third = policy.decide(3, problem, bad)
        assert third.reoptimized
        assert third.subset == optimum

    def test_quiet_epoch_resets_the_streak(self, problem):
        policy = RegretTriggered(threshold=0.01, hysteresis=2)
        optimum = policy.decide(0, problem, None).subset
        bad = frozenset()
        assert not policy.decide(1, problem, bad).reoptimized
        # An epoch spent at the optimum clears the streak...
        calm = policy.decide(2, problem, optimum)
        assert not calm.reoptimized
        assert calm.regret == pytest.approx(0.0)
        # ...so the next regretful epoch starts counting from one.
        assert not policy.decide(3, problem, bad).reoptimized
        assert policy.decide(4, problem, bad).reoptimized

    def test_first_epoch_resets_state_between_runs(self, problem):
        """One policy instance serves several runs: a streak built in
        run A must not leak into run B."""
        policy = RegretTriggered(threshold=0.01, hysteresis=2)
        policy.decide(0, problem, None)
        policy.decide(1, problem, frozenset())  # streak = 1
        policy.decide(0, problem, None)  # new run
        assert not policy.decide(1, problem, frozenset()).reoptimized

    def test_infeasible_holding_bypasses_hysteresis(self, problem):
        from repro.optimizer import TimeLimit

        baseline_hours = problem.baseline().processing_hours
        everything = problem.evaluate(frozenset(problem.candidate_names))
        limit = (everything.processing_hours + baseline_hours) / 2
        policy = RegretTriggered(
            threshold=10.0, scenario=TimeLimit(limit), hysteresis=5
        )
        decision = policy.decide(1, problem, frozenset())
        assert decision.reoptimized
        assert decision.regret == float("inf")

    def test_describe_shows_the_hold(self):
        assert RegretTriggered().describe() == "regret(>0.05)"
        assert (
            RegretTriggered(hysteresis=3).describe()
            == "regret(>0.05, hold 3)"
        )


def _record(epoch: int, **overrides) -> EpochRecord:
    defaults = dict(
        epoch=epoch,
        subset=("V1",),
        operating_cost=Money("10"),
        build_cost=Money("2"),
        teardown_cost=Money("1"),
        processing_hours=0.5,
        views_built=("V1",),
        views_dropped=(),
        reoptimized=True,
        regret=0.0,
        events=(),
    )
    defaults.update(overrides)
    return EpochRecord(**defaults)


class TestLedger:
    def test_totals_add_up(self):
        ledger = SimulationLedger("test")
        ledger.append(_record(0))
        ledger.append(
            _record(
                1,
                views_built=(),
                views_dropped=("V1",),
                build_cost=Money("0"),
                reoptimized=False,
            )
        )
        assert ledger.total_cost == Money("24")
        assert ledger.total_operating_cost == Money("20")
        assert ledger.total_build_cost == Money("2")
        assert ledger.total_teardown_cost == Money("2")
        assert ledger.total_hours == pytest.approx(1.0)
        assert ledger.rebuild_count == 1
        assert ledger.teardown_count == 1
        assert ledger.churn == 2
        assert ledger.reoptimization_count == 1

    def test_epoch_order_enforced(self):
        ledger = SimulationLedger("test")
        ledger.append(_record(3))
        with pytest.raises(SimulationError):
            ledger.append(_record(3))

    def test_render_mentions_policy_and_epochs(self):
        ledger = SimulationLedger("regret(>0.05)")
        ledger.append(_record(0))
        text = ledger.render()
        assert "regret(>0.05)" in text
        assert "e  0" in text
        assert "rebuilds=1" in ledger.summary()
