"""State keys and the incremental problem builder."""

from __future__ import annotations

import pytest

from repro.costmodel import PlanningEstimator
from repro.cube import CuboidLattice
from repro.optimizer import SubsetEvaluationCache
from repro.pricing.providers import archive_cloud
from repro.simulate import EpochProblemBuilder, full_catalogue
from repro.workload import AggregateQuery


@pytest.fixture()
def builder(initial_state):
    lattice = CuboidLattice(initial_state.workload.schema)
    return EpochProblemBuilder(full_catalogue(lattice))


class TestStateKey:
    def test_stable_for_equal_states(self, initial_state):
        assert initial_state.key() == initial_state.key()

    def test_changes_with_workload(self, initial_state):
        drifted = initial_state.with_workload(
            initial_state.workload.without(["Q1"])
        )
        assert drifted.key() != initial_state.key()

    def test_changes_with_growth(self, initial_state):
        assert initial_state.grown(1.2).key() != initial_state.key()

    def test_changes_with_provider(self, initial_state):
        repriced = initial_state.with_provider(archive_cloud())
        assert repriced.key() != initial_state.key()

    def test_changes_with_fleet(self, initial_state):
        assert initial_state.with_fleet(2).key() != initial_state.key()

    def test_reweighting_changes_key(self, initial_state):
        hot = initial_state.with_workload(
            initial_state.workload.reweighted({"Q1": 5.0})
        )
        assert hot.key() != initial_state.key()

    def test_dataset_size_is_part_of_the_key(self, initial_state):
        """Same name/seed but different logical size must not collide.

        Regression: the key once identified the dataset by (name,
        seed) only, so a 50 GB simulator warmed from a 10 GB cache
        took every pricing from the wrong world.
        """
        from dataclasses import replace

        from repro.data import generate_sales

        bigger = replace(
            initial_state,
            dataset=generate_sales(n_rows=60_000, seed=42, target_gb=50.0),
        )
        assert bigger.key() != initial_state.key()
        denser = replace(
            initial_state,
            dataset=generate_sales(n_rows=30_000, seed=42, target_gb=10.0),
        )
        assert denser.key() != initial_state.key()


class TestFullCatalogue:
    def test_excludes_base_and_is_stable(self, initial_state):
        lattice = CuboidLattice(initial_state.workload.schema)
        catalogue = full_catalogue(lattice)
        grains = [c.grain for c in catalogue]
        assert lattice.base not in grains
        assert len(catalogue) == len(lattice) - 1
        assert [c.name for c in catalogue] == [
            f"V{i + 1}" for i in range(len(catalogue))
        ]
        # Deterministic across constructions.
        assert catalogue == full_catalogue(
            CuboidLattice(initial_state.workload.schema)
        )


class TestEpochProblemBuilder:
    def test_unchanged_state_returns_same_problem(self, builder, initial_state):
        first = builder.problem_for(initial_state)
        second = builder.problem_for(initial_state)
        assert first is second
        assert builder.builds == 1

    def test_matches_batch_estimator_exactly(self, builder, initial_state):
        """The incremental path must price like the batch build."""
        incremental = builder.problem_for(initial_state).inputs
        batch = PlanningEstimator(
            initial_state.dataset, initial_state.deployment
        ).build(initial_state.workload, builder.catalogue)
        assert incremental.base_query_hours == batch.base_query_hours
        assert incremental.view_query_hours == batch.view_query_hours
        assert incremental.result_sizes_gb == batch.result_sizes_gb
        assert incremental.view_stats == batch.view_stats
        assert incremental.dataset_gb == batch.dataset_gb
        assert incremental.fingerprint() == batch.fingerprint()

    def test_adding_one_query_prices_one_query(self, builder, initial_state):
        builder.problem_for(initial_state)
        priced_before = builder.queries_priced
        schema = initial_state.workload.schema
        new = AggregateQuery.per(
            schema, "D1", {"time": "day", "geography": "region"}, 2.0
        )
        drifted = initial_state.with_workload(
            initial_state.workload.with_queries([new])
        )
        builder.problem_for(drifted)
        assert builder.queries_priced == priced_before + 1
        assert builder.worlds_built == 1  # same (dataset, deployment) world

    def test_drop_and_reweight_price_nothing(self, builder, initial_state):
        builder.problem_for(initial_state)
        priced_before = builder.queries_priced
        dropped = initial_state.with_workload(
            initial_state.workload.without(["Q2"])
        )
        reweighted = initial_state.with_workload(
            initial_state.workload.reweighted({"Q1": 7.0})
        )
        builder.problem_for(dropped)
        builder.problem_for(reweighted)
        assert builder.queries_priced == priced_before
        assert builder.builds == 3  # three problems, zero new pricings

    def test_growth_opens_a_new_world(self, builder, initial_state):
        builder.problem_for(initial_state)
        builder.problem_for(initial_state.grown(1.3))
        assert builder.worlds_built == 2

    def test_different_catalogues_never_alias_view_names(self, initial_state):
        """Regression: 'V1' only means something relative to a catalogue.

        Two builders sharing one cache but enumerating different
        candidate universes once served each other's pricings by name.
        """
        from repro.cube import CandidateView

        cache = SubsetEvaluationCache()
        lattice = CuboidLattice(initial_state.workload.schema)
        full = EpochProblemBuilder(full_catalogue(lattice), cache)
        coarse_grain = full.catalogue[-1].grain  # some coarse cuboid
        fine_grain = full.catalogue[0].grain
        assert coarse_grain != fine_grain
        renamed = EpochProblemBuilder(
            (CandidateView("V1", coarse_grain),), cache
        )
        a = full.problem_for(initial_state).evaluate(frozenset({"V1"}))
        b = renamed.problem_for(initial_state).evaluate(frozenset({"V1"}))
        # 'V1' is fine_grain in one universe, coarse_grain in the other.
        assert renamed.problem_for(initial_state).stats.priced == 1
        assert a.breakdown != b.breakdown

    def test_shared_cache_serves_equal_worlds(self, initial_state):
        """Two builders on one cache: the second prices zero subsets."""
        cache = SubsetEvaluationCache()
        lattice = CuboidLattice(initial_state.workload.schema)
        first = EpochProblemBuilder(full_catalogue(lattice), cache)
        problem_a = first.problem_for(initial_state)
        problem_a.evaluate(frozenset())
        problem_a.evaluate(frozenset({"V1"}))
        assert problem_a.stats.priced == 2

        second = EpochProblemBuilder(full_catalogue(lattice), cache)
        problem_b = second.problem_for(initial_state)
        assert problem_b is not problem_a
        problem_b.evaluate(frozenset())
        problem_b.evaluate(frozenset({"V1"}))
        assert problem_b.stats.priced == 0
        assert problem_b.stats.shared_hits == 2
        # And the outcomes are literally shared.
        assert problem_b.evaluate(frozenset({"V1"})) is problem_a.evaluate(
            frozenset({"V1"})
        )
