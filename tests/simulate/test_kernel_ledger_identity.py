"""End-to-end kernel identity: every preset's output, byte for byte.

The kernel is a pure accelerator, so running any simulation with
``--no-kernel`` must reproduce the default run exactly: rendered
ledgers, summary lines, cache-traffic lines, Monte Carlo CSVs, and
the deterministic metrics dump (modulo the kernel's own counters,
which exist only when the kernel runs).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.kernel import NO_KERNEL_ENV


@pytest.fixture(autouse=True)
def _kernel_default_on(monkeypatch):
    """The baseline runs must actually use the kernel."""
    monkeypatch.delenv(NO_KERNEL_ENV, raising=False)


def _run(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


SCENARIOS = {
    "single-tenant": [
        "simulate", "--rows", "5000", "--epochs", "20", "--policy", "all",
    ],
    "multi-tenant": [
        "simulate", "--rows", "5000", "--epochs", "20",
        "--tenants", "2", "--policy", "regret",
    ],
    "stochastic": [
        "simulate", "--rows", "5000", "--epochs", "8",
        "--generator", "mixed", "--seed", "7", "--policy", "regret",
    ],
    "async-builds": [
        "simulate", "--rows", "5000", "--epochs", "20",
        "--build-slots", "1", "--policy", "regret",
    ],
    "arbitrage": [
        "simulate", "--rows", "5000", "--epochs", "20",
        "--arbitrage", "--policy", "regret",
    ],
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_ledgers_are_identical_with_and_without_kernel(name, capsys):
    """Full renders (ledgers, events, cache traffic) match exactly."""
    argv = SCENARIOS[name]
    with_kernel = _run(capsys, argv)
    without_kernel = _run(capsys, argv + ["--no-kernel"])
    assert with_kernel == without_kernel
    assert "epoch" in with_kernel  # the run actually rendered ledgers


def test_monte_carlo_summary_csv_is_kernel_agnostic(tmp_path, capsys):
    args = [
        "simulate",
        "--trials", "3",
        "--epochs", "8",
        "--rows", "5000",
        "--seed", "7",
        "--policy", "regret",
    ]
    fast_csv = tmp_path / "fast.csv"
    slow_csv = tmp_path / "slow.csv"
    fast_out = _run(capsys, args + ["--summary-csv", str(fast_csv)])
    slow_out = _run(
        capsys, args + ["--summary-csv", str(slow_csv), "--no-kernel"]
    )
    assert fast_csv.read_bytes() == slow_csv.read_bytes()
    # stdout differs only in the csv path it reports.
    strip = lambda out: out.replace(str(fast_csv), "").replace(
        str(slow_csv), ""
    )
    assert strip(fast_out) == strip(slow_out)


def _metric_lines(path):
    """The dump's lines, minus the kernel's own instrumentation.

    ``kernel_builds`` / ``kernel_evaluations`` counters and the
    ``kernel.build`` span-call line exist only when the kernel runs;
    everything else — every simulator, optimizer, cache, and billing
    metric — must be byte-identical.
    """
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    return [line for line in lines if "kernel" not in line]


def test_metrics_dump_is_kernel_agnostic_modulo_kernel_counters(
    tmp_path, capsys
):
    args = [
        "simulate",
        "--rows", "5000",
        "--epochs", "20",
        "--policy", "regret",
        "--quiet",
    ]
    fast = tmp_path / "fast.prom"
    slow = tmp_path / "slow.prom"
    _run(capsys, args + ["--metrics-out", str(fast)])
    _run(capsys, args + ["--metrics-out", str(slow), "--no-kernel"])
    assert _metric_lines(fast) == _metric_lines(slow)
    # The kernel run really did record its counters...
    assert any("kernel" in line for line in fast.read_text().splitlines())
    # ...and the opt-out run really did not.
    assert "kernel" not in slow.read_text()


def test_experiment_tables_are_kernel_agnostic(capsys):
    """The paper-table pipeline is covered too, not just simulations."""
    argv = ["run", "running-example", "--rows", "5000"]
    assert _run(capsys, argv) == _run(capsys, argv + ["--no-kernel"])
