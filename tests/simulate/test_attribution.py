"""The shared-cost attribution arithmetic, in isolation."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.money import Money, ZERO
from repro.simulate import (
    SharedCostAttributor,
    allocate_exactly,
    tenant_of_query,
)


class TestAllocateExactly:
    def test_shares_sum_exactly(self):
        amount = Money("123.456789012345678901234567")
        weights = {"a": 0.123456789, "b": 7.2, "c": 0.0001}
        shares = allocate_exactly(amount, weights, ["a", "b", "c"])
        assert sum(shares.values(), ZERO) == amount

    def test_proportionality(self):
        # 3/4 is exactly representable, so the shares are exact too.
        shares = allocate_exactly(
            Money("8.00"), {"a": 3.0, "b": 1.0}, ["a", "b"]
        )
        assert shares["a"] == Money("6.00")
        assert shares["b"] == Money("2.00")

    def test_zero_weights_fall_back_to_even_split(self):
        shares = allocate_exactly(
            Money("10.00"), {"a": 0.0, "b": 0.0}, ["a", "b"]
        )
        assert shares["a"] == shares["b"] == Money("5.00")

    def test_missing_weight_counts_as_zero(self):
        shares = allocate_exactly(Money("4.00"), {"a": 1.0}, ["a", "b"])
        assert shares["a"] == Money("4.00")
        assert shares["b"] == ZERO

    def test_single_recipient_gets_everything(self):
        amount = Money("7.77")
        assert allocate_exactly(amount, {}, ["only"])["only"] == amount

    def test_negative_weights_ignored(self):
        shares = allocate_exactly(
            Money("4.00"), {"a": -5.0, "b": 1.0}, ["a", "b"]
        )
        assert shares["a"] == ZERO
        assert shares["b"] == Money("4.00")

    def test_empty_order_rejected(self):
        with pytest.raises(SimulationError, match="zero tenants"):
            allocate_exactly(Money("1.00"), {}, [])


class TestTenantOfQuery:
    def test_prefix_is_extracted(self):
        assert tenant_of_query("acme/Q1") == "acme"

    def test_unscoped_name_is_none(self):
        assert tenant_of_query("Q1") is None

    def test_only_first_separator_splits(self):
        assert tenant_of_query("acme/sub/Q1") == "acme"


class TestConstruction:
    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError, match="attribution mode"):
            SharedCostAttributor(["a"], mode="fair-ish")

    def test_needs_a_tenant(self):
        with pytest.raises(SimulationError, match="at least one"):
            SharedCostAttributor([])

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(SimulationError, match="unique"):
            SharedCostAttributor(["a", "a"])

    def test_describe_names_mode_and_size(self):
        attributor = SharedCostAttributor(["a", "b"], mode="even")
        assert "even" in attributor.describe()
        assert "2" in attributor.describe()
