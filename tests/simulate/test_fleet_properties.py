"""Generative invariant suite for elastic fleets.

Every test here draws whole fleets from ``make_random_fleet`` (see
``tests/conftest.py``): random populations, overlapping paper-pool
workloads, drift, arrival/departure schedules, and attribution modes,
all reproducible from a single integer seed.  The properties checked
are the elastic-fleet contract:

* **Balance** — per-tenant ledgers sum to the fleet ledger *exactly*
  (``Decimal`` equality, per epoch and per component) under churn.
* **Churn causality** — moving one tenant's arrival never changes any
  other tenant's records outside the perturbed epoch: billing has no
  action at a distance.
* **Sharded byte-identity** — streaming sharded attribution renders
  byte-identical CSVs for any shard count or worker count, and folds
  to exactly the totals the in-memory path produces.
* **Population scale** — a 10⁴-tenant elastic lifecycle completes with
  streaming ledger merges and balanced books (the acceptance run).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.money import ZERO
from repro.optimizer.problem import SubsetEvaluationCache
from repro.simulate import NeverReselect, make_policy
from repro.simulate.ledger import TenantTotals
from repro.simulate.presets import population_fleet_simulator

BALANCE_SEEDS = range(100)
CAUSALITY_SEEDS = range(32)
SHARD_SEEDS = range(16)


@pytest.fixture(scope="module")
def shared_cache():
    """One evaluation cache across every generated fleet: seeds share
    the dataset, so subset pricing amortizes across the whole suite."""
    return SubsetEvaluationCache()


def _by_epoch(ledger):
    """A tenant ledger's records, keyed by epoch."""
    return {record.epoch: record for record in ledger.records}


class TestBooksBalance:
    """Per-tenant ledgers sum to the fleet ledger exactly, any seed."""

    def test_balance_over_seeds(self, random_fleet_factory, shared_cache):
        for seed in BALANCE_SEEDS:
            fleet = random_fleet_factory(seed)
            ledger = fleet.simulator(cache=shared_cache).run(NeverReselect())
            # verify_attribution already ran on return; re-check the
            # books explicitly so the property is asserted here too.
            ledger.verify_attribution()
            tenant_total = sum(
                (t.total_cost for t in ledger.tenants.values()), ZERO
            )
            assert tenant_total == ledger.fleet.total_cost, (
                f"seed {seed}: tenant bills {tenant_total} != "
                f"fleet bill {ledger.fleet.total_cost}"
            )
            shares = {}
            for tenant_ledger in ledger.tenants.values():
                for record in tenant_ledger.records:
                    shares[record.epoch] = (
                        shares.get(record.epoch, ZERO) + record.total_cost
                    )
            for record in ledger.fleet.records:
                assert shares.get(record.epoch, ZERO) == record.total_cost, (
                    f"seed {seed}: epoch {record.epoch} shares do not "
                    f"sum to the fleet charge"
                )

    def test_balance_under_reselection(
        self, random_fleet_factory, shared_cache
    ):
        """Drifted fleets re-optimizing mid-churn still balance."""
        policy = make_policy("periodic")
        for seed in range(8):
            fleet = random_fleet_factory(seed)
            ledger = fleet.simulator(cache=shared_cache).run(policy)
            ledger.verify_attribution()
            tenant_total = sum(
                (t.total_cost for t in ledger.tenants.values()), ZERO
            )
            assert tenant_total == ledger.fleet.total_cost, f"seed {seed}"


class TestChurnCausality:
    """One tenant's schedule never reaches into another's invoice."""

    def test_unrelated_records_invariant_to_shifted_arrival(
        self, random_fleet_factory, shared_cache
    ):
        """Shift the designated tenant's arrival one epoch later: every
        *other* tenant's records are byte-identical at every epoch
        except the one the perturbation vacated (where the attribution
        denominator legitimately changes)."""
        policy = NeverReselect()
        for seed in CAUSALITY_SEEDS:
            fleet = random_fleet_factory(seed)
            mover = next(
                t for t in fleet.tenants if t.name == fleet.shiftable
            )
            arrival = mover.arrival_epoch
            shifted_tenants = tuple(
                replace(t, arrival_epoch=arrival + 1)
                if t.name == fleet.shiftable
                else t
                for t in fleet.tenants
            )
            base = fleet.simulator(cache=shared_cache).run(policy)
            moved = fleet.simulator(
                tenants=shifted_tenants, cache=shared_cache
            ).run(policy)
            for name, base_ledger in base.tenants.items():
                if name == fleet.shiftable:
                    continue
                base_records = _by_epoch(base_ledger)
                moved_records = _by_epoch(moved.tenant(name))
                assert set(base_records) == set(moved_records), (
                    f"seed {seed}: tenant {name!r} billed on different "
                    f"epochs after an unrelated arrival moved"
                )
                for epoch, record in base_records.items():
                    if epoch == arrival:
                        continue
                    other = moved_records[epoch]
                    assert record == other, (
                        f"seed {seed}: tenant {name!r} epoch {epoch} "
                        f"changed when tenant {fleet.shiftable!r} moved "
                        f"from e{arrival} to e{arrival + 1}:\n"
                        f"  base : {record.describe()}\n"
                        f"  moved: {other.describe()}"
                    )
                    assert record.describe() == other.describe()

    def test_prefix_identical_before_perturbation(
        self, random_fleet_factory, shared_cache
    ):
        """Fleet records before the moved arrival are untouched —
        including the mover's own (absent) history."""
        policy = NeverReselect()
        for seed in range(8):
            fleet = random_fleet_factory(seed)
            mover = next(
                t for t in fleet.tenants if t.name == fleet.shiftable
            )
            arrival = mover.arrival_epoch
            shifted_tenants = tuple(
                replace(t, arrival_epoch=arrival + 1)
                if t.name == fleet.shiftable
                else t
                for t in fleet.tenants
            )
            base = fleet.simulator(cache=shared_cache).run(policy)
            moved = fleet.simulator(
                tenants=shifted_tenants, cache=shared_cache
            ).run(policy)
            for before, after in zip(
                base.fleet.records, moved.fleet.records
            ):
                if before.epoch >= arrival:
                    break
                assert before == after, (
                    f"seed {seed}: epoch {before.epoch} predates the "
                    f"perturbation but changed"
                )


class TestShardedByteIdentity:
    """Sharded streaming attribution is exact and shard-count blind."""

    def test_csv_identical_across_shard_counts(
        self, random_fleet_factory, shared_cache
    ):
        for seed in SHARD_SEEDS:
            simulator = random_fleet_factory(seed).simulator(
                cache=shared_cache
            )
            csvs = {
                shards: simulator.run_sharded(
                    NeverReselect(), shards=shards
                ).to_csv()
                for shards in (1, 2, 8)
            }
            assert csvs[1] == csvs[2] == csvs[8], (
                f"seed {seed}: ledger CSV depends on the shard count"
            )

    def test_streaming_folds_to_in_memory_totals(
        self, random_fleet_factory, shared_cache
    ):
        """run_sharded's streamed totals equal run()'s ledgers folded
        record-by-record — same rows, full precision."""
        for seed in SHARD_SEEDS:
            simulator = random_fleet_factory(seed).simulator(
                cache=shared_cache
            )
            ledger = simulator.run(NeverReselect())
            summary = simulator.run_sharded(NeverReselect(), shards=2)
            for name, tenant_ledger in ledger.tenants.items():
                folded = TenantTotals(name)
                for record in tenant_ledger.records:
                    folded.fold(record)
                assert folded.row() == summary.tenant(name).row(), (
                    f"seed {seed}: tenant {name!r} streamed totals "
                    f"disagree with the in-memory ledger"
                )

    def test_worker_processes_identical(
        self, random_fleet_factory, shared_cache
    ):
        """Fanning shards across worker processes changes nothing."""
        for seed in (0, 7):
            simulator = random_fleet_factory(seed).simulator(
                cache=shared_cache
            )
            serial = simulator.run_sharded(NeverReselect(), shards=1)
            parallel = simulator.run_sharded(
                NeverReselect(), shards=4, jobs=2
            )
            assert serial.to_csv() == parallel.to_csv()


class TestPopulationScale:
    """The acceptance run: 10⁴ elastic tenants, streamed exactly."""

    def test_mid_scale_shard_count_blind(self):
        simulator = population_fleet_simulator(n_tenants=2_000)
        first = simulator.run_sharded(NeverReselect(), shards=3)
        second = simulator.run_sharded(NeverReselect(), shards=8)
        assert first.to_csv() == second.to_csv()
        assert first.fleet.arrival_count > 0
        assert first.fleet.departure_count > 0

    def test_ten_thousand_tenant_lifecycle(self):
        simulator = population_fleet_simulator(n_tenants=10_000)
        summary = simulator.run_sharded(NeverReselect(), shards=8)
        assert len(summary.tenants) == 10_000
        assert summary.fleet.arrival_count > 0
        assert summary.fleet.departure_count > 0
        summary.verify_totals()
        tenant_total = sum(
            (t.total_cost for t in summary.tenants.values()), ZERO
        )
        assert tenant_total == summary.fleet.total_cost
        # Every billed epoch stays inside the horizon, and the books
        # carry real churn money.
        horizon = len(summary.fleet.records)
        for totals in summary.tenants.values():
            if totals.first_epoch is not None:
                assert 0 <= totals.first_epoch <= totals.last_epoch
                assert totals.last_epoch < horizon
        # Churn money reconciles exactly against the per-event pairs.
        # (On the paper's 2012 AWS book the amounts themselves can be
        # $0 — ingress is free and egress has a free first tier — so
        # the invariant is the reconciliation, not a nonzero bill.)
        arrival_charges = sum(
            (
                charge
                for record in summary.fleet.records
                for _, charge in record.arrivals
            ),
            ZERO,
        )
        departure_charges = sum(
            (
                charge
                for record in summary.fleet.records
                for _, charge in record.departures
            ),
            ZERO,
        )
        assert summary.fleet.total_onboarding_cost == arrival_charges
        assert summary.fleet.total_offboarding_cost == departure_charges
