"""Shared fixtures for the lifecycle simulator tests.

Small physical datasets keep these fast; the analytic planning mode
makes the *logical* numbers identical to the paper-scale world.
"""

from __future__ import annotations

import pytest

from repro.simulate import WarehouseState, drifting_sales_simulator
from repro.simulate.presets import sales_deployment
from repro.workload import paper_sales_workload


@pytest.fixture(scope="session")
def small_simulator():
    """The reference drifting scenario, sized for tests (24 epochs)."""
    return drifting_sales_simulator(n_epochs=24, n_rows=10_000, seed=7)


@pytest.fixture()
def initial_state(sales_dataset_10gb):
    """A fresh 5-query warehouse state on the Section 6 deployment."""
    return WarehouseState(
        workload=paper_sales_workload(sales_dataset_10gb.schema, 5),
        dataset=sales_dataset_10gb,
        deployment=sales_deployment(),
    )
