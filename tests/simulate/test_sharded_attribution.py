"""Sharded streaming attribution: partitioning, identity, error paths.

The generative suite (``test_fleet_properties.py``) proves sharded
runs byte-identical across shard counts on random fleets; this file
pins the machinery itself — ``shard_bounds`` partitioning, idle
shards, the validation that refuses malformed active splits — with
small deterministic cases.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulate import (
    MultiTenantSimulator,
    NeverReselect,
    SimulationClock,
    Tenant,
    TenantFleet,
)
from repro.simulate.presets import sales_deployment
from repro.simulate.sharding import ShardedAttribution, shard_bounds
from repro.workload import paper_sales_workload


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(6, 3) == ((0, 2), (2, 4), (4, 6))

    def test_remainder_goes_to_leading_shards(self):
        assert shard_bounds(7, 3) == ((0, 3), (3, 5), (5, 7))

    def test_more_shards_than_tenants_leaves_idle_shards(self):
        bounds = shard_bounds(3, 8)
        assert bounds[:3] == ((0, 1), (1, 2), (2, 3))
        assert all(start == stop for start, stop in bounds[3:])

    def test_partition_is_exact_for_all_small_sizes(self):
        """Bounds always tile [0, n) contiguously with balanced loads."""
        for n_tenants in range(18):
            for shards in range(1, 10):
                bounds = shard_bounds(n_tenants, shards)
                assert len(bounds) == shards
                cursor = 0
                for start, stop in bounds:
                    assert start == cursor
                    assert stop >= start
                    cursor = stop
                assert cursor == n_tenants
                sizes = [stop - start for start, stop in bounds]
                assert max(sizes) - min(sizes) <= 1

    def test_zero_shards_rejected(self):
        with pytest.raises(SimulationError, match="shards must be >= 1"):
            shard_bounds(4, 0)


@pytest.fixture(scope="module")
def elastic_sim(sales_dataset_10gb):
    """A 3-tenant fleet with one arrival and one departure."""
    schema = sales_dataset_10gb.schema
    fleet = TenantFleet(
        [
            Tenant("a", paper_sales_workload(schema, 3)),
            Tenant("b", paper_sales_workload(schema, 2), arrival_epoch=1),
            Tenant(
                "c", paper_sales_workload(schema, 4), departure_epoch=2
            ),
        ],
        dataset=sales_dataset_10gb,
        deployment=sales_deployment(),
    )
    return MultiTenantSimulator(fleet, clock=SimulationClock(4))


@pytest.fixture(scope="module")
def captured_epochs(elastic_sim):
    """(record, problem, breakdown) per epoch, from a real run."""
    captured = []

    def observer(record, problem, breakdown):
        captured.append((record, problem, breakdown))

    elastic_sim.run(NeverReselect(), observer=observer)
    return captured


class TestShardedStreaming:
    def test_idle_shards_change_nothing(self, elastic_sim):
        """More shards than tenants is legal and byte-identical."""
        narrow = elastic_sim.run_sharded(NeverReselect(), shards=1)
        wide = elastic_sim.run_sharded(NeverReselect(), shards=16)
        assert narrow.to_csv() == wide.to_csv()
        assert wide.shards == 16

    def test_invalid_configuration_rejected(self, elastic_sim):
        with pytest.raises(SimulationError, match="shards must be >= 1"):
            ShardedAttribution(elastic_sim.attributor, shards=0)
        with pytest.raises(SimulationError, match="jobs must be >= 1"):
            ShardedAttribution(elastic_sim.attributor, jobs=0)

    def test_arrived_tenant_missing_from_active_split_rejected(
        self, elastic_sim, captured_epochs
    ):
        """Omitting the arriving tenant from the active split fails
        loudly (its queries are in the workload with no owner to
        charge), rather than silently dropping its share."""
        record, problem, breakdown = captured_epochs[1]
        assert record.arrivals, "fixture epoch 1 should carry b's arrival"
        sharded = ShardedAttribution(elastic_sim.attributor, shards=2)
        with pytest.raises(SimulationError, match="not active this epoch"):
            list(
                sharded.attribute_streaming(
                    problem, record, breakdown, tenants=("a", "c")
                )
            )

    def test_unsplittable_arrival_charge_rejected(
        self, elastic_sim, captured_epochs
    ):
        """An arrival charge naming a tenant outside the split must
        fail loudly, not vanish from the books."""
        from dataclasses import replace

        from repro.money import Money

        record, problem, breakdown = captured_epochs[1]
        doctored = replace(
            record, arrivals=(("ghost", Money("1.00")),)
        )
        sharded = ShardedAttribution(elastic_sim.attributor, shards=2)
        with pytest.raises(SimulationError, match="arrival charges"):
            list(
                sharded.attribute_streaming(
                    problem, doctored, breakdown, tenants=("a", "b", "c")
                )
            )

    def test_departed_tenant_in_active_split_rejected(
        self, elastic_sim, captured_epochs
    ):
        """A departure settlement for a tenant still listed as active
        is a bookkeeping contradiction."""
        record, problem, breakdown = captured_epochs[2]
        assert record.departures, "fixture epoch 2 should carry c's exit"
        sharded = ShardedAttribution(elastic_sim.attributor, shards=2)
        with pytest.raises(SimulationError, match="still in the active"):
            list(
                sharded.attribute_streaming(
                    problem, record, breakdown, tenants=("a", "b", "c")
                )
            )

    def test_close_is_idempotent(self, elastic_sim):
        sharded = ShardedAttribution(elastic_sim.attributor, shards=2)
        sharded.close()
        sharded.close()
