"""The lifecycle simulator end to end, on the reference scenario."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.money import ZERO
from repro.simulate import (
    GrowFactTable,
    LifecycleSimulator,
    SimulationClock,
    make_policy,
)


@pytest.fixture(scope="module")
def ledgers(small_simulator):
    policies = [make_policy(name) for name in ("never", "periodic", "regret")]
    return small_simulator.compare(policies)


class TestLifecycle:
    def test_one_record_per_epoch(self, small_simulator, ledgers):
        for ledger in ledgers.values():
            assert len(ledger) == small_simulator.clock.n_epochs
            assert [r.epoch for r in ledger] == list(
                range(small_simulator.clock.n_epochs)
            )

    def test_initial_build_is_charged_once(self, ledgers):
        never = ledgers["never"]
        first = never.records[0]
        assert first.views_built == first.subset
        assert first.build_cost > ZERO
        # Carried views are never re-charged for materialization.
        for record in never.records[1:]:
            assert record.build_cost == ZERO
            assert record.views_built == ()

    def test_events_are_logged_on_their_epoch(self, small_simulator, ledgers):
        ledger = ledgers["never"]
        by_epoch = {r.epoch: r.events for r in ledger}
        for event in small_simulator.timeline:
            assert event.describe() in by_epoch[event.epoch]

    def test_regret_beats_never_under_drift(self, ledgers):
        """The acceptance criterion: re-selection pays for itself."""
        assert (
            ledgers["regret(>0.05)"].total_cost
            < ledgers["never"].total_cost
        )

    def test_regret_rebuilds_more_but_reoptimizes_less_than_periodic(
        self, ledgers
    ):
        regret = ledgers["regret(>0.05)"]
        periodic = ledgers["periodic(every 4)"]
        assert regret.reoptimization_count < periodic.reoptimization_count
        assert regret.total_cost <= periodic.total_cost

    def test_drift_forces_at_least_one_drop(self, ledgers):
        regret = ledgers["regret(>0.05)"]
        assert any(r.views_dropped for r in regret.records)

    def test_teardown_charged_at_provider_egress_rates(self, initial_state):
        """Dropping a view bills its size as outbound transfer.

        The reference scenario's drops fall inside AWS's free first-GB
        band (teardown legitimately $0), so this uses a flat-rate
        provider where any egress is billed.
        """
        from repro.pricing import flat_cloud
        from repro.simulate import PolicyDecision, ReselectionPolicy

        class DropEverythingAfterOneEpoch(ReselectionPolicy):
            name = "scripted"

            def decide(self, epoch_index, problem, current):
                if current is None:
                    return PolicyDecision(frozenset({"V1"}), reoptimized=True)
                return PolicyDecision(frozenset(), reoptimized=True)

        state = initial_state.with_provider(flat_cloud())
        simulator = LifecycleSimulator(
            initial=state, clock=SimulationClock(2)
        )
        ledger = simulator.run(DropEverythingAfterOneEpoch())
        drop = ledger.records[1]
        assert drop.views_dropped == ("V1",)
        problem = simulator.builder.problem_for(state)
        size_gb = problem.inputs.view_stats["V1"].size_gb
        expected = state.deployment.provider.transfer.outbound_cost(size_gb)
        assert drop.teardown_cost == expected
        assert drop.teardown_cost > ZERO

    def test_cache_avoids_most_pricings(self, small_simulator, ledgers):
        """Multi-epoch + multi-policy runs mostly hit the caches."""
        stats = small_simulator.builder.evaluation_stats()
        assert stats.calls == stats.priced + stats.hits
        assert stats.hits > stats.priced  # most work is avoided
        # Unchanged epochs collapse onto few problems: far fewer than
        # epochs x policies.
        assert small_simulator.builder.problems_cached < 10

    def test_incremental_query_pricing(self, small_simulator, ledgers):
        # 15 candidate grains never repriced per epoch; queries priced
        # once per (signature, world), not once per epoch.
        builder = small_simulator.builder
        n_epochs = small_simulator.clock.n_epochs
        assert builder.queries_priced < n_epochs * 2


class TestConstruction:
    def test_event_past_horizon_rejected(self, initial_state):
        with pytest.raises(SimulationError, match="only runs"):
            LifecycleSimulator(
                initial=initial_state,
                clock=SimulationClock(3),
                events=[GrowFactTable(epoch=5, factor=1.1)],
            )

    def test_timeline_and_events_are_exclusive(self, initial_state):
        from repro.simulate import EventTimeline

        with pytest.raises(SimulationError, match="not both"):
            LifecycleSimulator(
                initial=initial_state,
                clock=SimulationClock(3),
                timeline=EventTimeline(()),
                events=[GrowFactTable(epoch=1, factor=1.1)],
            )

    def test_epoch_length_must_match_billing_period(self, initial_state):
        """Regression: the bill prices one deployment period per epoch,
        so a 2-month epoch on a 1-month billing period would silently
        halve the horizon's charges."""
        with pytest.raises(SimulationError, match="billing period"):
            LifecycleSimulator(
                initial=initial_state,
                clock=SimulationClock(4, months_per_epoch=2.0),
            )

    def test_preset_rejects_too_few_epochs(self):
        from repro.simulate import DRIFT_MIN_EPOCHS, drifting_sales_simulator

        with pytest.raises(SimulationError, match=str(DRIFT_MIN_EPOCHS)):
            drifting_sales_simulator(n_epochs=DRIFT_MIN_EPOCHS - 1, n_rows=5000)

    def test_duplicate_policy_names_rejected(self, initial_state):
        simulator = LifecycleSimulator(
            initial=initial_state, clock=SimulationClock(2)
        )
        with pytest.raises(SimulationError, match="distinct"):
            simulator.compare([make_policy("never"), make_policy("never")])
