"""Online pricing arbitrage: migration economics, hysteresis, billing."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.data import generate_sales
from repro.errors import SimulationError
from repro.money import Money, ZERO
from repro.pricing.compute import ComputePricing
from repro.pricing.migration import migration_transfer_cost
from repro.pricing.providers import aws_2012, flat_cloud
from repro.pricing.storage import StoragePricing
from repro.pricing.tiers import TierSchedule
from repro.pricing.transfer import TransferPricing
from repro.simulate import (
    ArbitrageAware,
    GeneratorContext,
    LifecycleSimulator,
    MarketReprice,
    MonteCarloConfig,
    PolicySpec,
    PriceChange,
    ProviderMigration,
    SimulationClock,
    SpotPriceWalk,
    Tenant,
    TenantFleet,
    MultiTenantSimulator,
    WarehouseState,
    compile_timeline,
    default_market,
    make_policy,
    provider_family,
    run_monte_carlo,
    spot_repriced,
    stochastic_sales_simulator,
)
from repro.simulate.presets import sales_deployment
from repro.workload import paper_sales_workload


def _with_outbound(provider, rate):
    """``provider`` with a flat outbound transfer rate (ingress free)."""
    return replace(
        provider,
        transfer=TransferPricing(TierSchedule.flat(Money(rate))),
    )


def _cheap_clone(provider, name, factor):
    """A different-family book with every compute/storage rate scaled."""
    compute = provider.compute
    return replace(
        provider,
        name=name,
        compute=ComputePricing(
            [
                replace(itype, hourly_rate=itype.hourly_rate * factor)
                for itype in compute.instance_types.values()
            ],
            compute.granularity,
        ),
        storage=StoragePricing(
            TierSchedule.flat(Money("0.14") * factor)
        ),
    )


@pytest.fixture(scope="module")
def world():
    dataset = generate_sales(n_rows=2_000, seed=7, target_gb=10.0)
    return dataset, paper_sales_workload(dataset.schema, 5)


def _simulator(world, deployment, market, n_epochs=6, events=(), **kwargs):
    dataset, workload = world
    return LifecycleSimulator(
        initial=WarehouseState(
            workload=workload,
            dataset=dataset,
            deployment=deployment,
            market=tuple(market),
        ),
        clock=SimulationClock(n_epochs),
        events=events,
        **kwargs,
    )


class TestMarketState:
    def test_candidate_books_exclude_the_active_family(self, world):
        dataset, workload = world
        deployment = sales_deployment()
        state = WarehouseState(
            workload=workload,
            dataset=dataset,
            deployment=deployment,
            market=default_market(),
        )
        families = {provider_family(p.name) for p in state.candidate_books()}
        assert families == {"flat-cloud", "archive-cloud"}

    def test_market_rejects_duplicate_families(self, world):
        dataset, workload = world
        with pytest.raises(SimulationError, match="twice"):
            WarehouseState(
                workload=workload,
                dataset=dataset,
                deployment=sales_deployment(),
                market=(aws_2012(), spot_repriced(aws_2012(), 1.5)),
            )

    def test_repriced_follows_only_the_active_family(self, world):
        dataset, workload = world
        deployment = sales_deployment()
        state = WarehouseState(
            workload=workload,
            dataset=dataset,
            deployment=deployment,
            market=(deployment.provider, flat_cloud()),
        )
        quote = spot_repriced(deployment.provider, 1.5)
        # On the quoted family: the deployment follows the quote.
        moved = state.repriced(quote)
        assert moved.deployment.provider.name == quote.name
        # Off the family (migrated to flat-cloud): only the market
        # entry updates, the deployment stays put.
        migrated = state.with_provider(flat_cloud())
        requoted = migrated.repriced(quote)
        assert requoted.deployment.provider.name == "flat-cloud"
        assert quote.name in {p.name for p in requoted.market}
        # The quote stays priceable as a migration target.
        assert quote.name in {
            p.name for p in requoted.candidate_books()
        }

    def test_market_is_not_part_of_the_state_key(self, world):
        dataset, workload = world
        deployment = sales_deployment()
        bare = WarehouseState(
            workload=workload, dataset=dataset, deployment=deployment
        )
        quoted = WarehouseState(
            workload=workload,
            dataset=dataset,
            deployment=deployment,
            market=default_market(),
        )
        assert bare.key() == quoted.key()

    def test_market_reprice_event_is_family_gated(self, world):
        dataset, workload = world
        deployment = sales_deployment()
        state = WarehouseState(
            workload=workload,
            dataset=dataset,
            deployment=replace(deployment, provider=flat_cloud()),
            market=(deployment.provider, flat_cloud()),
        )
        quote = spot_repriced(deployment.provider, 1.3)
        gated = MarketReprice(epoch=1, provider=quote).apply(state)
        assert gated.deployment.provider.name == "flat-cloud"
        # The unconditional event still moves the warehouse.
        forced = PriceChange(epoch=1, provider=quote).apply(state)
        assert forced.deployment.provider.name == quote.name


class TestMigrationBilling:
    def test_scheduled_migration_bills_exact_transfer_legs(self, world):
        # An empty catalogue pins the shipped volume to the dataset
        # alone, so the billed legs are computable in closed form.
        deployment = sales_deployment()
        simulator = _simulator(
            world,
            deployment,
            market=(),
            events=[ProviderMigration(epoch=2, provider=flat_cloud())],
            catalogue=(),
        )
        ledger = simulator.run(make_policy("never"))
        record = ledger.records[2]
        egress, ingress = migration_transfer_cost(
            deployment.provider, flat_cloud(), 10.0
        )
        assert record.migrated_to == "flat-cloud"
        assert record.migration_cost == egress + ingress
        assert record.migration_cost > ZERO
        assert ledger.migration_count == 1
        assert ledger.total_migration_cost == record.migration_cost
        assert ">>flat-cloud" in record.describe()

    def test_migration_rebuilds_every_kept_view_on_the_target(self, world):
        simulator = _simulator(
            world,
            sales_deployment(),
            market=(),
            n_epochs=5,
            events=[ProviderMigration(epoch=2, provider=flat_cloud())],
        )
        ledger = simulator.run(make_policy("never"))
        migrated = ledger.records[2]
        held = ledger.records[1].subset
        assert held  # the scenario materializes something
        assert migrated.views_built == migrated.subset
        assert migrated.build_cost > ZERO  # re-materialization billed
        # Ordinary epochs after the move carry the views again.
        assert ledger.records[3].views_built == ()

    def test_same_epoch_forced_reprice_bills_egress_on_the_book_left(
        self, world
    ):
        # A forced PriceChange and a policy migration share an epoch:
        # the warehouse is pushed onto a dear book at epoch 2 and the
        # arbitrage layer immediately leaves it.  The egress leg must
        # be billed on the dear book (the one actually departed), not
        # on the pre-event provider.
        deployment = sales_deployment()
        dear = _with_outbound(
            _cheap_clone(deployment.provider, "dear-cloud", 10.0), "0.50"
        )
        simulator = _simulator(
            world,
            deployment,
            market=(deployment.provider, dear),
            events=[PriceChange(epoch=2, provider=dear)],
            catalogue=(),
        )
        ledger = simulator.run(
            ArbitrageAware(make_policy("never"), horizon=4, hysteresis=1)
        )
        record = ledger.records[2]
        assert record.migrated_to == deployment.provider.name
        egress, ingress = migration_transfer_cost(
            dear, deployment.provider, 10.0
        )
        assert record.migration_cost == egress + ingress
        assert record.migration_cost == Money("0.50") * 10

    def test_total_cost_includes_the_migration_line(self, world):
        simulator = _simulator(
            world,
            sales_deployment(),
            market=(),
            events=[ProviderMigration(epoch=1, provider=flat_cloud())],
            catalogue=(),
        )
        record = simulator.run(make_policy("never")).records[1]
        assert record.total_cost == (
            record.operating_cost
            + record.build_cost
            + record.teardown_cost
            + record.migration_cost
        )


class TestArbitragePolicy:
    def test_never_migrates_when_egress_dominates(self, world):
        # The source charges $1000/GB on the way out; even a nearly
        # free target cannot amortize a five-figure exit bill.
        deployment = replace(
            sales_deployment(),
            provider=_with_outbound(sales_deployment().provider, "1000"),
        )
        cheap = _cheap_clone(deployment.provider, "cheap-cloud", 0.01)
        simulator = _simulator(
            world, deployment, market=(deployment.provider, cheap)
        )
        policy = ArbitrageAware(
            make_policy("never"), horizon=4, hysteresis=1
        )
        ledger = simulator.run(policy)
        assert ledger.migration_count == 0
        assert ledger.total_migration_cost == ZERO

    def test_always_migrates_under_free_egress(self, world):
        # Free egress, free ingress, a 100x cheaper target: the switch
        # cost is only the rebuild, which one epoch's savings clears.
        deployment = replace(
            sales_deployment(),
            provider=_with_outbound(sales_deployment().provider, 0),
        )
        cheap = _cheap_clone(deployment.provider, "cheap-cloud", 0.01)
        simulator = _simulator(
            world, deployment, market=(deployment.provider, cheap)
        )
        policy = ArbitrageAware(
            make_policy("never"), horizon=4, hysteresis=1
        )
        ledger = simulator.run(policy)
        assert ledger.migration_count == 1
        # Hysteresis 1 moves on the first assessable epoch (epoch 0
        # never migrates: nothing is deployed yet).
        assert ledger.records[1].migrated_to == "cheap-cloud"
        assert ledger.records[1].migration_cost == ZERO
        # And the move pays: cheaper than staying put.
        stay = _simulator(
            world, deployment, market=(deployment.provider, cheap)
        ).run(make_policy("never"))
        assert ledger.total_cost < stay.total_cost

    def test_hysteresis_prevents_thrash_under_spot_walk(self, world):
        dataset, workload = world
        deployment = sales_deployment()
        timeline = compile_timeline(
            (SpotPriceWalk(volatility=0.6, floor=0.5, ceiling=2.0),),
            5,
            GeneratorContext(
                schema=dataset.schema,
                base_workload=workload,
                provider=deployment.provider,
                n_epochs=16,
            ),
        )

        def migrations(hold: int) -> int:
            simulator = LifecycleSimulator(
                initial=WarehouseState(
                    workload=workload,
                    dataset=dataset,
                    deployment=deployment,
                    market=(deployment.provider, flat_cloud()),
                ),
                clock=SimulationClock(16),
                timeline=timeline,
            )
            policy = ArbitrageAware(
                make_policy("never"), horizon=12, hysteresis=hold
            )
            return simulator.run(policy).migration_count

        twitchy = migrations(1)
        held = migrations(3)
        assert twitchy >= 3  # the walk genuinely whipsaws this seed
        assert held < twitchy
        assert held <= 2

    def test_first_epoch_never_migrates(self, world):
        cheap = _cheap_clone(
            sales_deployment().provider, "cheap-cloud", 0.01
        )
        deployment = replace(
            sales_deployment(),
            provider=_with_outbound(sales_deployment().provider, 0),
        )
        simulator = _simulator(
            world, deployment, market=(deployment.provider, cheap)
        )
        ledger = simulator.run(
            ArbitrageAware(make_policy("never"), horizon=8, hysteresis=1)
        )
        assert ledger.records[0].migrated_to is None

    def test_empty_market_is_a_passthrough(self, world):
        simulator = _simulator(world, sales_deployment(), market=())
        wrapped = simulator.run(
            ArbitrageAware(make_policy("never"), horizon=6)
        )
        plain = _simulator(world, sales_deployment(), market=()).run(
            make_policy("never")
        )
        assert wrapped.total_cost == plain.total_cost
        assert wrapped.migration_count == 0

    def test_validation_and_describe(self):
        inner = make_policy("regret")
        with pytest.raises(SimulationError, match="horizon"):
            ArbitrageAware(inner, horizon=0)
        with pytest.raises(SimulationError, match="hysteresis"):
            ArbitrageAware(inner, hysteresis=0)
        with pytest.raises(SimulationError, match="nest"):
            ArbitrageAware(ArbitrageAware(inner))
        assert (
            ArbitrageAware(inner, horizon=6, hysteresis=2).describe()
            == "arbitrage[regret(>0.05), h=6, hold 2]"
        )
        assert (
            ArbitrageAware(make_policy("never"), horizon=3, hysteresis=1)
            .describe()
            == "arbitrage[never, h=3]"
        )


class TestTenantAttribution:
    def test_migration_cost_attribution_sums_exactly(self, world):
        dataset, _ = world
        schema = dataset.schema
        tenants = [
            Tenant(
                name=f"t{i + 1}",
                workload=paper_sales_workload(schema, size),
            )
            for i, size in enumerate((3, 5))
        ]
        fleet = TenantFleet(
            tenants,
            dataset=dataset,
            deployment=sales_deployment(),
            shared_events=(
                ProviderMigration(epoch=2, provider=flat_cloud()),
            ),
        )
        simulator = MultiTenantSimulator(fleet, clock=SimulationClock(5))
        fleet_ledger = simulator.run(make_policy("regret"))
        fleet_ledger.verify_attribution()  # includes the migration rows
        migrated = fleet_ledger.fleet.records[2]
        assert migrated.migration_cost > ZERO
        shares = [
            ledger.records[2].migration_cost
            for ledger in fleet_ledger.tenants.values()
        ]
        assert sum(shares, ZERO) == migrated.migration_cost
        # Every other epoch attributes zero migration cost.
        for ledger in fleet_ledger.tenants.values():
            for record in ledger.records:
                if record.epoch != 2:
                    assert record.migration_cost == ZERO

    def test_even_mode_splits_the_switch_evenly(self, world):
        dataset, _ = world
        schema = dataset.schema
        tenants = [
            Tenant(name=f"t{i + 1}", workload=paper_sales_workload(schema, 3))
            for i in range(2)
        ]
        fleet = TenantFleet(
            tenants,
            dataset=dataset,
            deployment=sales_deployment(),
            shared_events=(
                ProviderMigration(epoch=1, provider=flat_cloud()),
            ),
        )
        simulator = MultiTenantSimulator(
            fleet, clock=SimulationClock(3), attribution="even"
        )
        fleet_ledger = simulator.run(make_policy("never"))
        first, second = (
            fleet_ledger.tenant("t1").records[1].migration_cost,
            fleet_ledger.tenant("t2").records[1].migration_cost,
        )
        assert first + second == fleet_ledger.fleet.records[1].migration_cost
        assert first == second


class TestMonteCarloArbitrage:
    def test_arbitrage_beats_stay_put_under_spot_drift(self):
        config = MonteCarloConfig(
            generator="spot",
            n_trials=4,
            n_epochs=8,
            n_rows=4_000,
            seed=7,
            policies=(
                PolicySpec("regret"),
                PolicySpec("regret", arbitrage=True),
            ),
        )
        assert config.quotes_market
        result = run_monte_carlo(config, jobs=1)
        arbitrage_label = "arbitrage[regret(>0.05), h=6, hold 2]"
        stay = result.metric("regret(>0.05)", "total_cost")
        moved = result.metric(arbitrage_label, "total_cost")
        assert moved.mean < stay.mean
        assert result.metric(arbitrage_label, "migrations").mean > 0
        assert result.metric("regret(>0.05)", "migrations").mean == 0
        assert "migrations" in result.metric_names()
        assert "migration_cost" in result.metric_names()

    def test_market_quotes_do_not_change_stay_put_costs(self):
        # The market is inert to non-arbitrage policies: quoting it
        # must not move a single digit of their ledgers.
        bare = stochastic_sales_simulator(
            generator="spot", n_epochs=6, n_rows=2_000, seed=3
        ).run(make_policy("never"))
        quoted = stochastic_sales_simulator(
            generator="spot",
            n_epochs=6,
            n_rows=2_000,
            seed=3,
            market=default_market(),
        ).run(make_policy("never"))
        assert bare.render() == quoted.render()

    def test_policyspec_validation(self):
        with pytest.raises(SimulationError, match="migration_horizon"):
            PolicySpec("never", migration_horizon=0)
        with pytest.raises(SimulationError, match="migration_hold"):
            PolicySpec("never", migration_hold=0)
        spec = PolicySpec("never", arbitrage=True, migration_horizon=3)
        assert spec.label() == "arbitrage[never, h=3, hold 2]"
