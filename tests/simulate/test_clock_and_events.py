"""The simulation clock and the event vocabulary."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.pricing import flat_cloud
from repro.simulate import (
    AddQueries,
    DropQueries,
    EventTimeline,
    FleetChange,
    GrowFactTable,
    PriceChange,
    ReweightQueries,
    SimulationClock,
)
from repro.workload import AggregateQuery


class TestClock:
    def test_epochs_tile_the_horizon(self):
        clock = SimulationClock(4, months_per_epoch=1.0)
        epochs = list(clock)
        assert [e.index for e in epochs] == [0, 1, 2, 3]
        assert epochs[0].start_month == 0.0
        assert epochs[3].end_month == clock.horizon_months == 4.0

    def test_len_matches_iteration(self):
        assert len(SimulationClock(7)) == len(list(SimulationClock(7))) == 7

    def test_rejects_empty_or_negative(self):
        with pytest.raises(SimulationError):
            SimulationClock(0)
        with pytest.raises(SimulationError):
            SimulationClock(5, months_per_epoch=0)

    # Fractional-epoch boundary property: boundaries must come from
    # index * months_per_epoch, never cumulative addition — for float
    # lengths like 0.1 the two disagree after a handful of epochs.
    @pytest.mark.parametrize(
        "n_epochs,months", [(500, 0.1), (300, 0.3), (200, 0.7), (120, 1 / 3)]
    )
    def test_fractional_epochs_tile_without_float_drift(
        self, n_epochs, months
    ):
        clock = SimulationClock(n_epochs, months_per_epoch=months)
        epochs = list(clock)
        for earlier, later in zip(epochs, epochs[1:]):
            # Exact equality, not approx: a build landing "at the
            # boundary" must land at one number, not two.
            assert earlier.end_month == later.start_month
        assert epochs[0].start_month == 0.0
        assert epochs[-1].end_month == clock.horizon_months
        for epoch in epochs:
            assert epoch.start_month == epoch.index * months
            assert epoch.end_month == (epoch.index + 1) * months

    def test_naive_summation_would_drift(self):
        # Documents why the grid arithmetic matters: cumulative float
        # addition leaves the 0.1-month grid almost immediately.
        months = 0.1
        cumulative, drifted = 0.0, False
        for index in range(100):
            cumulative += months
            drifted = drifted or cumulative != (index + 1) * months
        assert drifted

    def test_explicit_end_month_still_validated(self):
        from repro.simulate import Epoch

        with pytest.raises(SimulationError, match="before it starts"):
            Epoch(index=0, start_month=2.0, months=1.0, end_month=1.5)
        # Defaulted end falls back to start + months.
        assert Epoch(index=1, start_month=1.0, months=1.0).end_month == 2.0

    def test_boundary_accessor_bounds_checked(self):
        clock = SimulationClock(4, months_per_epoch=0.5)
        assert clock.boundary(4) == clock.horizon_months
        with pytest.raises(SimulationError, match="outside"):
            clock.boundary(5)
        with pytest.raises(SimulationError, match="outside"):
            clock.boundary(-1)


class TestWorkloadDriftEvents:
    def test_add_queries(self, initial_state):
        schema = initial_state.workload.schema
        new = AggregateQuery.per(
            schema, "D1", {"time": "day", "geography": "country"}, 3.0
        )
        after = AddQueries(epoch=1, queries=(new,)).apply(initial_state)
        assert [q.name for q in after.workload][-1] == "D1"
        assert len(after.workload) == len(initial_state.workload) + 1

    def test_add_duplicate_name_fails_loudly(self, initial_state):
        schema = initial_state.workload.schema
        dupe = AggregateQuery.per(
            schema, "Q1", {"time": "day", "geography": "country"}
        )
        with pytest.raises(SimulationError, match="cannot add"):
            AddQueries(epoch=0, queries=(dupe,)).apply(initial_state)

    def test_drop_queries(self, initial_state):
        after = DropQueries(epoch=2, names=("Q1", "Q3")).apply(initial_state)
        assert {q.name for q in after.workload} == {"Q2", "Q4", "Q5"}

    def test_drop_unknown_fails(self, initial_state):
        with pytest.raises(SimulationError, match="cannot drop"):
            DropQueries(epoch=0, names=("nope",)).apply(initial_state)

    def test_drop_everything_fails(self, initial_state):
        names = tuple(q.name for q in initial_state.workload)
        with pytest.raises(SimulationError, match="cannot drop"):
            DropQueries(epoch=0, names=names).apply(initial_state)

    def test_reweight(self, initial_state):
        after = ReweightQueries(
            epoch=3, frequencies=(("Q1", 9.0),)
        ).apply(initial_state)
        by_name = {q.name: q.frequency for q in after.workload}
        assert by_name["Q1"] == 9.0
        assert by_name["Q2"] == 1.0  # untouched

    def test_reweight_unknown_fails(self, initial_state):
        with pytest.raises(SimulationError, match="cannot reweight"):
            ReweightQueries(
                epoch=0, frequencies=(("nope", 2.0),)
            ).apply(initial_state)

    def test_reweight_duplicate_names_rejected(self):
        with pytest.raises(SimulationError, match="more than once"):
            ReweightQueries(
                epoch=0, frequencies=(("Q1", 2.0), ("Q1", 6.0))
            )


class TestWarehouseEvents:
    def test_growth_scales_logical_size(self, initial_state):
        before = initial_state.dataset.logical_size_gb
        after = GrowFactTable(epoch=1, factor=1.5).apply(initial_state)
        assert after.dataset.logical_size_gb == pytest.approx(before * 1.5)
        assert after.growth_factor == pytest.approx(1.5)
        # The original state is untouched (states are immutable).
        assert initial_state.dataset.logical_size_gb == pytest.approx(before)

    def test_price_change_swaps_provider(self, initial_state):
        after = PriceChange(epoch=1, provider=flat_cloud()).apply(
            initial_state
        )
        assert after.deployment.provider.name == "flat-cloud"
        assert initial_state.deployment.provider.name == "aws-2012"

    def test_fleet_change(self, initial_state):
        after = FleetChange(epoch=1, n_instances=3).apply(initial_state)
        assert after.deployment.n_instances == 3

    def test_invalid_parameters_rejected_at_construction(self):
        with pytest.raises(SimulationError):
            GrowFactTable(epoch=0, factor=0.0)
        with pytest.raises(SimulationError):
            FleetChange(epoch=0, n_instances=0)
        with pytest.raises(SimulationError):
            AddQueries(epoch=0, queries=())
        with pytest.raises(SimulationError):
            DropQueries(epoch=-1, names=("Q1",))


class TestTimeline:
    def test_groups_by_epoch_in_schedule_order(self):
        a = GrowFactTable(epoch=2, factor=1.1)
        b = FleetChange(epoch=2, n_instances=2)
        c = GrowFactTable(epoch=5, factor=2.0)
        timeline = EventTimeline([a, b, c])
        assert timeline.at(2) == (a, b)
        assert timeline.at(5) == (c,)
        assert timeline.at(0) == ()
        assert timeline.last_epoch == 5

    def test_check_within(self):
        timeline = EventTimeline([GrowFactTable(epoch=9, factor=1.1)])
        timeline.check_within(10)
        with pytest.raises(SimulationError, match="epoch 9"):
            timeline.check_within(9)


class TestBuildMarkers:
    def test_markers_describe_compactly(self):
        from repro.simulate import BuildCancelled, BuildCompleted, BuildStarted

        assert (
            BuildStarted(epoch=2, view="V4", month=2.5).describe()
            == "build:V4 started@2.5"
        )
        assert (
            BuildCompleted(epoch=2, view="V4", month=2.75).describe()
            == "build:V4 live@2.75"
        )
        assert (
            BuildCancelled(epoch=3, view="V4", month=3.0).describe()
            == "build:V4 cancelled@3"
        )

    def test_markers_preserve_state(self, initial_state):
        from repro.simulate import BuildCompleted

        marker = BuildCompleted(epoch=0, view="V1", month=0.5)
        assert marker.apply(initial_state) is initial_state

    def test_markers_need_a_view(self):
        from repro.simulate import BuildStarted

        with pytest.raises(SimulationError, match="view name"):
            BuildStarted(epoch=0, month=0.5)
