"""Migration costing: transfer legs, volumes, estimate arithmetic."""

from __future__ import annotations

import pytest

from repro.errors import PricingError
from repro.money import Money, ZERO
from repro.pricing.migration import (
    MigrationEstimate,
    migration_transfer_cost,
    migration_volume_gb,
)
from repro.pricing.providers import archive_cloud, aws_2012, flat_cloud


class TestVolume:
    def test_dataset_plus_views(self):
        assert migration_volume_gb(10.0, {"a": 2.0, "b": 0.5}) == 12.5

    def test_dataset_alone(self):
        assert migration_volume_gb(10.0, {}) == 10.0

    def test_negative_sizes_rejected(self):
        with pytest.raises(PricingError):
            migration_volume_gb(-1.0, {})
        with pytest.raises(PricingError):
            migration_volume_gb(1.0, {"v": -0.1})


class TestTransferLegs:
    def test_egress_on_source_ingress_on_target(self):
        # Leaving AWS (Example 1 tiering: first GB free, then $0.12)
        # for flat-cloud (free ingress): only the source egress bills.
        egress, ingress = migration_transfer_cost(
            aws_2012(), flat_cloud(), 10.0
        )
        assert egress == Money("1.08")
        assert ingress == ZERO

    def test_symmetric_books_bill_both_legs(self):
        # flat-cloud has no inbound schedule either; archive-cloud's
        # egress is the dear leg ($0.25/GB past the free first GB).
        egress, ingress = migration_transfer_cost(
            archive_cloud(), aws_2012(), 11.0
        )
        assert egress == Money("0.25") * 10
        assert ingress == ZERO

    def test_negative_volume_rejected(self):
        with pytest.raises(PricingError):
            migration_transfer_cost(aws_2012(), flat_cloud(), -1.0)


class TestEstimate:
    def test_between_sums_exactly(self):
        estimate = MigrationEstimate.between(
            aws_2012(),
            flat_cloud(),
            10.0,
            {"v": 2.0},
            rebuild_cost=Money("3.50"),
        )
        assert estimate.volume_gb == 12.0
        assert estimate.source == "aws-2012"
        assert estimate.target == "flat-cloud"
        assert estimate.transfer_cost == (
            estimate.egress_cost + estimate.ingress_cost
        )
        assert estimate.total == estimate.transfer_cost + Money("3.50")

    def test_describe_names_the_route(self):
        estimate = MigrationEstimate.between(
            aws_2012(), archive_cloud(), 5.0, {}
        )
        text = estimate.describe()
        assert "aws-2012 -> archive-cloud" in text
        assert "5.0 GB" in text

    def test_negative_volume_rejected(self):
        with pytest.raises(PricingError):
            MigrationEstimate(
                source="a",
                target="b",
                volume_gb=-1.0,
                egress_cost=ZERO,
                ingress_cost=ZERO,
            )
