"""Storage and transfer pricing: paper values and direction handling."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PricingError
from repro.money import Money
from repro.pricing.providers import archive_cloud, aws_2012, flat_cloud
from repro.pricing.storage import StoragePricing
from repro.pricing.tiers import TierSchedule
from repro.pricing.transfer import TransferPricing


class TestStorage:
    def test_paper_example_9_monthly_rate(self):
        # 550 GB at the first-TB rate for 12 months = $924.
        assert aws_2012().storage.cost(550, 12) == Money("924.00")

    def test_fractional_months(self):
        storage = StoragePricing(TierSchedule.flat(Money("0.10")))
        assert storage.cost(100, 0.5) == Money(5)

    def test_negative_duration_rejected(self):
        with pytest.raises(PricingError):
            aws_2012().storage.cost(100, -1)

    @given(
        volume=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        months=st.floats(min_value=0, max_value=120, allow_nan=False),
    )
    def test_cost_is_monthly_rate_times_months(self, volume, months):
        storage = aws_2012().storage
        assert storage.cost(volume, months) == storage.monthly_cost(volume) * months


class TestTransfer:
    def test_paper_example_1(self):
        assert aws_2012().transfer.outbound_cost(10.0) == Money("1.08")

    def test_inbound_free_on_aws_model(self):
        transfer = aws_2012().transfer
        assert transfer.inbound_is_free
        assert transfer.inbound_cost(10_000.0) == Money(0)

    def test_inbound_charged_when_schedule_present(self):
        transfer = TransferPricing(
            outbound=TierSchedule.flat(Money("0.10")),
            inbound=TierSchedule.flat(Money("0.02")),
        )
        assert not transfer.inbound_is_free
        assert transfer.inbound_cost(50) == Money(1)

    def test_negative_volumes_rejected(self):
        with pytest.raises(PricingError):
            aws_2012().transfer.outbound_cost(-1)
        with pytest.raises(PricingError):
            aws_2012().transfer.inbound_cost(-1)


class TestProviderPresets:
    def test_all_presets_price_a_typical_month(self):
        for provider in (aws_2012(), flat_cloud(), archive_cloud()):
            compute = provider.compute
            some_instance = next(iter(compute.instance_types))
            assert compute.cost(some_instance, 10, 2) > Money(0)
            assert provider.storage.cost(100, 1) > Money(0)
            assert provider.transfer.outbound_cost(100) >= Money(0)

    def test_archive_cloud_is_cheap_storage_dear_egress(self):
        archive = archive_cloud()
        aws = aws_2012()
        assert archive.storage.monthly_cost(1000) < aws.storage.monthly_cost(1000)
        assert archive.transfer.outbound_cost(100) > aws.transfer.outbound_cost(100)

    def test_marginal_variant_differs_only_past_first_band(self):
        from repro.pricing.providers import aws_2012_marginal

        slab = aws_2012().storage
        marginal = aws_2012_marginal().storage
        assert slab.monthly_cost(512) == marginal.monthly_cost(512)
        assert slab.monthly_cost(2560) != marginal.monthly_cost(2560)
