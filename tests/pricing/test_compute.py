"""Compute pricing: Table 2 rates, billing granularities, validation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PricingError
from repro.money import Money
from repro.pricing.compute import BillingGranularity, ComputePricing, InstanceType
from repro.pricing.providers import aws_2012


@pytest.fixture(scope="module")
def compute():
    return aws_2012().compute


class TestCatalogue:
    def test_table2_prices(self, compute):
        expected = {
            "micro": "0.03",
            "small": "0.12",
            "large": "0.48",
            "xlarge": "0.96",
        }
        for name, price in expected.items():
            assert compute.instance(name).hourly_rate == Money(price)

    def test_small_instance_matches_paper_description(self, compute):
        # Section 2.2: "1.7 GB RAM, 1 EC2 Compute Unit, 160 GB".
        small = compute.instance("small")
        assert small.memory_gb == pytest.approx(1.7)
        assert small.compute_units == 1.0
        assert small.local_storage_gb == 160

    def test_unknown_instance_names_known_ones(self, compute):
        with pytest.raises(PricingError, match="small"):
            compute.instance("gpu-monster")

    def test_duplicate_instance_names_rejected(self):
        itype = InstanceType("x", Money(1), 1.0, 1.0, 0)
        with pytest.raises(PricingError):
            ComputePricing([itype, itype])

    def test_invalid_instance_fields_rejected(self):
        with pytest.raises(PricingError):
            InstanceType("x", Money(-1), 1.0, 1.0, 0)
        with pytest.raises(PricingError):
            InstanceType("x", Money(1), 0.0, 1.0, 0)
        with pytest.raises(PricingError):
            InstanceType("x", Money(1), 1.0, -1.0, 0)


class TestBilling:
    def test_paper_example_2(self, compute):
        # 50 h on two small instances: 2 x RoundUp(50) x 0.12 = $12.
        assert compute.cost("small", 50.0, 2) == Money("12.00")

    def test_started_hour_is_charged(self, compute):
        assert compute.cost("small", 50.01, 2) == Money("0.12") * 51 * 2

    def test_zero_usage_is_free_even_hourly(self, compute):
        assert compute.cost("small", 0.0, 2) == Money(0)

    def test_per_second_bills_exactly(self, compute):
        per_second = compute.with_granularity(BillingGranularity.PER_SECOND)
        assert per_second.cost("small", 0.5, 1) == Money("0.06")

    def test_per_minute_rounds_to_minutes(self):
        granularity = BillingGranularity.PER_MINUTE
        assert granularity.billable_hours(0.5) == pytest.approx(0.5)
        assert granularity.billable_hours(1 / 3600) == pytest.approx(1 / 60)

    def test_negative_usage_rejected(self, compute):
        with pytest.raises(PricingError):
            compute.cost("small", -1.0, 1)

    def test_negative_instances_rejected(self, compute):
        with pytest.raises(PricingError):
            compute.cost("small", 1.0, -1)

    def test_granularity_override_per_call(self, compute):
        cost = compute.cost(
            "small", 0.5, 1, granularity=BillingGranularity.PER_SECOND
        )
        assert cost == Money("0.06")


class TestGranularityProperties:
    durations = st.floats(min_value=0, max_value=10_000, allow_nan=False)

    @given(hours=durations)
    def test_billable_at_least_actual(self, hours):
        for granularity in BillingGranularity:
            assert granularity.billable_hours(hours) >= hours - 1e-9

    @given(hours=durations)
    def test_granularities_are_ordered(self, hours):
        hourly = BillingGranularity.PER_HOUR.billable_hours(hours)
        minutely = BillingGranularity.PER_MINUTE.billable_hours(hours)
        secondly = BillingGranularity.PER_SECOND.billable_hours(hours)
        assert secondly <= minutely + 1e-9 <= hourly + 2e-9

    @given(hours=durations)
    def test_cost_scales_linearly_with_instances(self, hours):
        pricing = aws_2012().compute
        one = pricing.cost("small", hours, 1)
        three = pricing.cost("small", hours, 3)
        assert three == one * 3
