"""Tier schedules: the paper's bands, both semantics, and their edges."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PricingError
from repro.money import Money, dollars
from repro.pricing.tiers import Tier, TierMode, TierSchedule


def bandwidth_schedule() -> TierSchedule:
    """The paper's Table 3 (outbound bandwidth)."""
    return TierSchedule.from_band_widths(
        [
            (1.0, dollars(0)),
            (10 * 1024.0 - 1.0, dollars("0.12")),
            (40 * 1024.0, dollars("0.09")),
            (100 * 1024.0, dollars("0.07")),
            (None, dollars("0.05")),
        ]
    )


def storage_schedule(mode: TierMode) -> TierSchedule:
    """The paper's Table 4 (S3 storage)."""
    return TierSchedule.from_band_widths(
        [
            (1024.0, dollars("0.14")),
            (49 * 1024.0, dollars("0.125")),
            (450 * 1024.0, dollars("0.11")),
            (None, dollars("0.095")),
        ],
        mode,
    )


class TestValidation:
    def test_empty_schedule_rejected(self):
        with pytest.raises(PricingError):
            TierSchedule([])

    def test_final_tier_must_be_unbounded(self):
        with pytest.raises(PricingError):
            TierSchedule([Tier(10.0, Money(1))])

    def test_only_final_tier_unbounded(self):
        with pytest.raises(PricingError):
            TierSchedule([Tier(None, Money(1)), Tier(None, Money(2))])

    def test_bounds_strictly_increasing(self):
        with pytest.raises(PricingError):
            TierSchedule([Tier(10.0, Money(1)), Tier(10.0, Money(2)), Tier(None, Money(3))])

    def test_negative_rate_rejected(self):
        with pytest.raises(PricingError):
            Tier(None, Money(-1))

    def test_negative_volume_rejected(self):
        with pytest.raises(PricingError):
            bandwidth_schedule().cost(-1.0)


class TestMarginalSemantics:
    def test_paper_example_1(self):
        # 10 GB out, first GB free: (10 - 1) x 0.12 = $1.08.
        assert bandwidth_schedule().cost(10.0) == Money("1.08")

    def test_zero_volume_is_free(self):
        assert bandwidth_schedule().cost(0.0) == Money(0)

    def test_within_free_band(self):
        assert bandwidth_schedule().cost(0.5) == Money(0)

    def test_spans_three_bands(self):
        # 11 TB: 1 GB free + (10T-1) at 0.12 + 1T at 0.09.
        schedule = bandwidth_schedule()
        expected = (
            Money("0.12") * (10 * 1024.0 - 1)
            + Money("0.09") * 1024.0
        )
        assert schedule.cost(11 * 1024.0) == expected

    def test_marginal_rate_lookup(self):
        schedule = bandwidth_schedule()
        assert schedule.marginal_rate(0.0) == Money(0)
        assert schedule.marginal_rate(1.0) == Money("0.12")
        assert schedule.marginal_rate(10 * 1024.0) == Money("0.09")

    def test_flat_schedule(self):
        assert TierSchedule.flat(Money(2)).cost(3.5) == Money(7)


class TestSlabSemantics:
    def test_paper_example_3_rate_selection(self):
        # 2560 GB falls in the second band: whole volume at 0.125.
        schedule = storage_schedule(TierMode.SLAB)
        assert schedule.cost(2560.0) == Money("0.125") * 2560

    def test_below_first_boundary(self):
        schedule = storage_schedule(TierMode.SLAB)
        assert schedule.cost(512.0) == Money("0.14") * 512

    def test_band_edge_cliff_is_real(self):
        # Slab pricing is non-monotonic: crossing into the cheaper band
        # (band bounds are exclusive, so 1024 GB is already "next 49
        # TB") makes the *larger* volume bill less.
        schedule = storage_schedule(TierMode.SLAB)
        below_edge = schedule.cost(1023.0)   # 1023 x 0.14  = 143.22
        at_edge = schedule.cost(1024.0)      # 1024 x 0.125 = 128.00
        assert at_edge < below_edge

    def test_marginal_has_no_cliff_at_same_edge(self):
        schedule = storage_schedule(TierMode.MARGINAL)
        assert schedule.cost(1024.0) > schedule.cost(1023.0)

    def test_with_mode_converts(self):
        slab = storage_schedule(TierMode.MARGINAL).with_mode(TierMode.SLAB)
        assert slab.mode is TierMode.SLAB
        assert slab.cost(2560.0) == Money("0.125") * 2560


class TestProperties:
    volumes = st.floats(min_value=0, max_value=1e7, allow_nan=False)

    @given(v=volumes)
    def test_marginal_cost_nonnegative(self, v):
        assert bandwidth_schedule().cost(v) >= Money(0)

    @given(a=volumes, b=volumes)
    def test_marginal_cost_monotone(self, a, b):
        schedule = storage_schedule(TierMode.MARGINAL)
        lo, hi = sorted([a, b])
        assert schedule.cost(lo) <= schedule.cost(hi)

    @given(v=volumes)
    def test_marginal_never_exceeds_top_rate_times_volume(self, v):
        schedule = storage_schedule(TierMode.MARGINAL)
        assert schedule.cost(v) <= Money("0.14") * v + Money("0.0001")

    @given(v=st.floats(min_value=0.001, max_value=1e7, allow_nan=False))
    def test_slab_cost_is_rate_times_volume(self, v):
        schedule = storage_schedule(TierMode.SLAB)
        assert schedule.cost(v) == schedule.marginal_rate(v) * v

    @given(v=volumes)
    def test_decreasing_rates_make_marginal_at_least_slab(self, v):
        # With rates decreasing by band, slab charges the (cheaper)
        # top band's rate to every unit, so slab <= marginal.
        marginal = storage_schedule(TierMode.MARGINAL).cost(v)
        slab = storage_schedule(TierMode.SLAB).cost(v)
        assert slab <= marginal + Money("0.0001")
