"""Scenario definitions: feasibility, keys, violations, MV3 objective."""

from __future__ import annotations

import pytest

from repro.costmodel.computing import view_computing_cost
from repro.costmodel.total import CostBreakdown
from repro.errors import OptimizationError
from repro.money import Money
from repro.optimizer import Tradeoff, mv1, mv2, mv3
from repro.optimizer.problem import SelectionOutcome
from repro.pricing import aws_2012


def make_outcome(hours: float, dollars: str) -> SelectionOutcome:
    """A synthetic outcome with the given time and total cost."""
    compute = aws_2012().compute
    breakdown = CostBreakdown(
        computing=view_computing_cost(compute, "small", 1, query_hours=[]),
        storage=Money(dollars),
        transfer=Money(0),
        processing_hours=hours,
    )
    return SelectionOutcome(subset=frozenset(), breakdown=breakdown)


class TestBudgetLimit:
    def test_feasibility(self):
        scenario = mv1(Money("2.00"))
        assert scenario.feasible(make_outcome(1.0, "1.99"))
        assert scenario.feasible(make_outcome(1.0, "2.00"))
        assert not scenario.feasible(make_outcome(1.0, "2.01"))

    def test_key_minimizes_time_then_cost(self):
        scenario = mv1(Money(10))
        fast_dear = make_outcome(1.0, "5.00")
        slow_cheap = make_outcome(2.0, "1.00")
        assert scenario.key(fast_dear) < scenario.key(slow_cheap)

    def test_violation(self):
        scenario = mv1(Money("2.00"))
        assert scenario.violation(make_outcome(1.0, "1.50")) == 0.0
        assert scenario.violation(make_outcome(1.0, "2.50")) == pytest.approx(0.5)

    def test_negative_budget_rejected(self):
        with pytest.raises(OptimizationError):
            mv1(Money(-1))


class TestTimeLimit:
    def test_feasibility(self):
        scenario = mv2(1.0)
        assert scenario.feasible(make_outcome(0.99, "5"))
        assert scenario.feasible(make_outcome(1.0, "5"))
        assert not scenario.feasible(make_outcome(1.01, "5"))

    def test_key_minimizes_cost_then_time(self):
        scenario = mv2(10.0)
        cheap_slow = make_outcome(5.0, "1.00")
        dear_fast = make_outcome(1.0, "5.00")
        assert scenario.key(cheap_slow) < scenario.key(dear_fast)

    def test_violation(self):
        scenario = mv2(1.0)
        assert scenario.violation(make_outcome(0.5, "1")) == 0.0
        assert scenario.violation(make_outcome(1.5, "1")) == pytest.approx(0.5)

    def test_negative_limit_rejected(self):
        with pytest.raises(OptimizationError):
            mv2(-1.0)


class TestTradeoff:
    def test_objective_mixes_hours_and_dollars(self):
        scenario = mv3(0.3)
        outcome = make_outcome(2.0, "4.00")
        assert scenario.objective(outcome) == pytest.approx(0.3 * 2 + 0.7 * 4)

    def test_alpha_one_is_pure_time(self):
        scenario = mv3(1.0)
        assert scenario.objective(make_outcome(2.0, "100")) == pytest.approx(2.0)

    def test_alpha_zero_is_pure_cost(self):
        scenario = mv3(0.0)
        assert scenario.objective(make_outcome(99.0, "4")) == pytest.approx(4.0)

    def test_cost_scale(self):
        scenario = Tradeoff(alpha=0.5, cost_scale=0.1)
        assert scenario.objective(make_outcome(1.0, "10")) == pytest.approx(
            0.5 * 1 + 0.5 * 1.0
        )

    def test_always_feasible(self):
        scenario = mv3(0.5)
        assert scenario.feasible(make_outcome(1e9, "1e9".replace("e9", "")))
        assert scenario.violation(make_outcome(5, "5")) == 0.0

    def test_normalized_against_baseline(self):
        baseline = make_outcome(2.0, "4.00")
        scenario = Tradeoff.normalized_against(0.5, baseline)
        # The baseline itself scores exactly 1.0.
        assert scenario.objective(baseline) == pytest.approx(1.0)
        halved = make_outcome(1.0, "2.00")
        assert scenario.objective(halved) == pytest.approx(0.5)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(OptimizationError):
            mv3(1.5)
        with pytest.raises(OptimizationError):
            mv3(-0.1)

    def test_invalid_cost_scale_rejected(self):
        with pytest.raises(OptimizationError):
            Tradeoff(alpha=0.5, cost_scale=0)
