"""Knapsack DPs against brute force."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizationError
from repro.optimizer import max_value_knapsack, min_weight_cover


def brute_force_max_value(weights, values, capacity):
    best_value, best_weight = 0.0, 0
    n = len(weights)
    for size in range(n + 1):
        for combo in combinations(range(n), size):
            w = sum(weights[i] for i in combo)
            v = sum(values[i] for i in combo)
            if w <= capacity and (
                v > best_value or (v == best_value and w < best_weight)
            ):
                best_value, best_weight = v, w
    return best_value


def brute_force_min_cover(weights, values, required):
    best = None
    n = len(weights)
    for size in range(n + 1):
        for combo in combinations(range(n), size):
            v = sum(values[i] for i in combo)
            if v < required:
                continue
            w = sum(weights[i] for i in combo)
            if best is None or w < best:
                best = w
    return best


class TestMaxValue:
    def test_textbook_instance(self):
        solution = max_value_knapsack([3, 4, 5], [4.0, 5.0, 6.0], 7)
        assert solution.chosen == (0, 1)
        assert solution.total_value == 9.0

    def test_empty_items(self):
        solution = max_value_knapsack([], [], 10)
        assert solution.chosen == ()

    def test_zero_capacity_takes_only_free_items(self):
        solution = max_value_knapsack([0, 5], [1.0, 10.0], 0)
        assert solution.chosen == (0,)

    def test_negative_weight_items_enlarge_capacity(self):
        # Item 0 pays for item 1.
        solution = max_value_knapsack([-5, 5], [1.0, 10.0], 0)
        assert solution.chosen == (0, 1)
        assert solution.pre_accepted == (0,)

    def test_negative_capacity_with_rescuing_items(self):
        solution = max_value_knapsack([-10, 4], [1.0, 2.0], -2)
        assert 0 in solution.chosen
        assert 1 in solution.chosen  # capacity -2 + 10 = 8 >= 4

    def test_negative_capacity_unrescued(self):
        solution = max_value_knapsack([3], [1.0], -1)
        assert solution.chosen == ()

    def test_negative_values_rejected(self):
        with pytest.raises(OptimizationError):
            max_value_knapsack([1], [-1.0], 10)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(OptimizationError):
            max_value_knapsack([1, 2], [1.0], 10)

    @given(
        items=st.lists(
            st.tuples(
                st.integers(min_value=-20, max_value=60),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            max_size=9,
        ),
        capacity=st.integers(min_value=-20, max_value=150),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force_value(self, items, capacity):
        weights = [w for w, _ in items]
        values = [v for _, v in items]
        solution = max_value_knapsack(weights, values, capacity)
        # The DP must respect the capacity whenever brute force can.
        if solution.total_weight <= capacity:
            expected = brute_force_max_value(weights, values, capacity)
            assert solution.total_value == pytest.approx(expected)
        else:
            # Only possible when even the free items overshoot a
            # negative capacity; the solution is exactly the free set.
            assert capacity < 0
            assert set(solution.chosen) == set(solution.pre_accepted)


class TestMinCover:
    def test_textbook_instance(self):
        solution = min_weight_cover([5, 3, 4], [4, 2, 3], 5)
        assert solution.chosen == (1, 2)
        assert solution.total_weight == 7

    def test_zero_requirement_takes_only_free_items(self):
        solution = min_weight_cover([2, -1], [3, 1], 0)
        assert solution.chosen == (1,)

    def test_unreachable_requirement_raises(self):
        with pytest.raises(OptimizationError, match="unreachable"):
            min_weight_cover([1, 1], [2, 3], 10)

    def test_negative_values_rejected(self):
        with pytest.raises(OptimizationError):
            min_weight_cover([1], [-1], 1)

    @given(
        items=st.lists(
            st.tuples(
                st.integers(min_value=-20, max_value=60),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=9,
        ),
        required=st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force_weight(self, items, required):
        weights = [w for w, _ in items]
        values = [v for _, v in items]
        expected = brute_force_min_cover(weights, values, required)
        if expected is None:
            with pytest.raises(OptimizationError):
                min_weight_cover(weights, values, required)
            return
        solution = min_weight_cover(weights, values, required)
        assert solution.total_value >= required
        assert solution.total_weight == expected
