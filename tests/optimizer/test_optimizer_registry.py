"""The optimizer-spec registry: resolution, errors, spec equivalence."""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.errors import OptimizationError, ScenarioMismatchError
from repro.optimizer import (
    BeamSearchSpec,
    ExhaustiveSpec,
    GreedySpec,
    KnapsackSpec,
    LocalSearchSpec,
    OptimizerSpec,
    mv1,
    mv2,
    registered_algorithms,
    resolve,
    select_views,
)
from repro.money import Money


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_algorithms()
        for expected in ("beam", "exhaustive", "greedy", "knapsack", "local"):
            assert expected in names

    def test_registered_names_sorted(self):
        names = registered_algorithms()
        assert list(names) == sorted(names)

    def test_resolve_string_to_spec(self):
        assert isinstance(resolve("greedy"), GreedySpec)
        assert isinstance(resolve("knapsack"), KnapsackSpec)
        assert isinstance(resolve("exhaustive"), ExhaustiveSpec)
        assert isinstance(resolve("beam"), BeamSearchSpec)
        assert isinstance(resolve("local"), LocalSearchSpec)

    def test_resolve_spec_passthrough(self):
        spec = BeamSearchSpec(budget=32)
        assert resolve(spec) is spec

    def test_unknown_name_lists_registered(self):
        with pytest.raises(OptimizationError) as err:
            resolve("quantum")
        message = str(err.value)
        assert "quantum" in message
        for name in registered_algorithms():
            assert name in message

    def test_unknown_name_is_not_scenario_mismatch(self):
        with pytest.raises(OptimizationError):
            resolve("")


class TestSpecContracts:
    def test_specs_are_frozen(self):
        spec = BeamSearchSpec()
        with pytest.raises(Exception):
            spec.budget = 1

    def test_spec_names_match_registry_keys(self):
        for name in registered_algorithms():
            assert resolve(name).name == name

    def test_describe_mentions_name(self):
        for name in registered_algorithms():
            assert name in resolve(name).describe()

    def test_abstract_spec_cannot_register(self):
        from repro.optimizer.registry import register

        @dataclass(frozen=True)
        class Nameless(OptimizerSpec):
            pass

        with pytest.raises(OptimizationError):
            register(Nameless)


class TestScenarioMismatch:
    def test_knapsack_rejects_unknown_scenario(self, paper_problem):
        @dataclass(frozen=True)
        class Custom:
            name: ClassVar[str] = "custom"

            def feasible(self, outcome):
                return True

            def violation(self, outcome):
                return 0.0

            def key(self, outcome):
                return (outcome.processing_hours,)

            def describe(self):
                return "custom scenario"

        with pytest.raises(ScenarioMismatchError) as err:
            select_views(paper_problem, Custom(), "knapsack")
        message = str(err.value)
        assert "knapsack" in message
        assert "Custom" in message

    def test_mismatch_is_an_optimization_error(self):
        assert issubclass(ScenarioMismatchError, OptimizationError)


class TestStringSpecEquivalence:
    def test_string_and_spec_select_identically(self, paper_problem):
        scenario = mv1(Money(50))
        by_name = select_views(paper_problem, scenario, "greedy")
        by_spec = select_views(paper_problem, scenario, GreedySpec())
        assert by_name.outcome.subset == by_spec.outcome.subset
        assert by_name.algorithm == by_spec.algorithm == "greedy"

    def test_search_spec_knobs_flow_through(self, paper_problem):
        scenario = mv2(mv2_limit(paper_problem))
        default = select_views(paper_problem, scenario, "beam")
        tuned = select_views(paper_problem, scenario, BeamSearchSpec(budget=64, seed=3))
        assert default.algorithm == tuned.algorithm == "beam"
        assert scenario.feasible(default.outcome)
        assert scenario.feasible(tuned.outcome)


def mv2_limit(problem) -> float:
    """A reachable MV2 limit: halfway from all-views to baseline hours."""
    baseline = problem.baseline().processing_hours
    best = problem.evaluate(frozenset(problem.candidate_names)).processing_hours
    return best + 0.5 * (baseline - best)
