"""View selection end to end: all algorithms, all scenarios."""

from __future__ import annotations

import pytest

from repro.errors import InfeasibleProblemError, OptimizationError
from repro.money import Money
from repro.optimizer import (
    SelectionProblem,
    exhaustive_select,
    mv1,
    mv2,
    mv3,
    select_views,
)


@pytest.fixture(scope="module")
def baseline(paper_problem):
    return paper_problem.baseline()


class TestProblemBasics:
    def test_baseline_is_empty_subset(self, paper_problem, baseline):
        assert baseline.subset == frozenset()

    def test_evaluation_is_memoized(self, paper_problem):
        a = paper_problem.evaluate(frozenset({"V1"}))
        b = paper_problem.evaluate(frozenset({"V1"}))
        assert a is b

    def test_marginal_saving_nonnegative(self, paper_problem):
        for name in paper_problem.candidate_names:
            assert paper_problem.marginal_saving_hours(name) >= 0

    def test_views_never_slow_the_workload(self, paper_problem, baseline):
        for name in paper_problem.candidate_names:
            outcome = paper_problem.singleton(name)
            assert outcome.processing_hours <= baseline.processing_hours


class TestMv1:
    def test_budget_respected_by_all_algorithms(self, paper_problem, baseline):
        budget = baseline.total_cost + Money("5.00")
        scenario = mv1(budget)
        for algorithm in ("knapsack", "greedy", "exhaustive"):
            result = select_views(paper_problem, scenario, algorithm)
            assert result.outcome.total_cost <= budget

    def test_huge_budget_reaches_best_time(self, paper_problem):
        scenario = mv1(Money(10_000))
        exhaustive = select_views(paper_problem, scenario, "exhaustive")
        knapsack = select_views(paper_problem, scenario, "knapsack")
        greedy = select_views(paper_problem, scenario, "greedy")
        best = exhaustive.outcome.processing_hours
        assert knapsack.outcome.processing_hours == pytest.approx(best, rel=0.05)
        assert greedy.outcome.processing_hours == pytest.approx(best, rel=0.05)

    def test_more_budget_never_hurts(self, paper_problem, baseline):
        previous_hours = None
        for extra in ("0.00", "2.00", "10.00", "100.00"):
            scenario = mv1(baseline.total_cost + Money(extra))
            result = select_views(paper_problem, scenario, "exhaustive")
            if previous_hours is not None:
                assert result.outcome.processing_hours <= previous_hours + 1e-9
            previous_hours = result.outcome.processing_hours

    def test_impossible_budget_raises(self, paper_problem):
        # A one-cent budget is below even the best achievable cost.
        with pytest.raises(InfeasibleProblemError):
            select_views(paper_problem, mv1(Money("0.01")), "exhaustive")
        with pytest.raises(InfeasibleProblemError):
            select_views(paper_problem, mv1(Money("0.01")), "greedy")
        with pytest.raises(InfeasibleProblemError):
            select_views(paper_problem, mv1(Money("0.01")), "knapsack")


class TestMv2:
    def test_time_limit_respected(self, paper_problem, baseline):
        limit = baseline.processing_hours * 0.5
        for algorithm in ("knapsack", "greedy", "exhaustive"):
            result = select_views(paper_problem, mv2(limit), algorithm)
            assert result.outcome.processing_hours <= limit + 1e-9

    def test_loose_limit_still_cuts_cost_when_views_self_pay(
        self, paper_problem, baseline
    ):
        result = select_views(
            paper_problem, mv2(baseline.processing_hours), "exhaustive"
        )
        assert result.outcome.total_cost <= baseline.total_cost

    def test_unreachable_limit_raises(self, paper_problem):
        with pytest.raises(InfeasibleProblemError):
            select_views(paper_problem, mv2(1e-6), "knapsack")
        with pytest.raises(InfeasibleProblemError):
            select_views(paper_problem, mv2(1e-6), "exhaustive")

    def test_knapsack_close_to_exhaustive(self, paper_problem, baseline):
        limit = baseline.processing_hours * 0.6
        exhaustive = select_views(paper_problem, mv2(limit), "exhaustive")
        knapsack = select_views(paper_problem, mv2(limit), "knapsack")
        # The independence assumption may overspend, but not wildly.
        assert knapsack.outcome.total_cost <= exhaustive.outcome.total_cost * 2


class TestMv3:
    def test_never_worse_than_baseline(self, paper_problem, baseline):
        for alpha in (0.0, 0.3, 0.7, 1.0):
            scenario = mv3(alpha)
            for algorithm in ("knapsack", "greedy", "exhaustive"):
                result = select_views(paper_problem, scenario, algorithm)
                assert scenario.objective(result.outcome) <= scenario.objective(
                    baseline
                ) + 1e-9

    def test_greedy_matches_exhaustive_here(self, paper_problem):
        scenario = mv3(0.5)
        greedy = select_views(paper_problem, scenario, "greedy")
        exhaustive = select_views(paper_problem, scenario, "exhaustive")
        assert scenario.objective(greedy.outcome) == pytest.approx(
            scenario.objective(exhaustive.outcome), rel=0.02
        )

    def test_objective_improvement_only_for_tradeoff(self, paper_problem):
        result = select_views(paper_problem, mv1(Money(1000)), "greedy")
        with pytest.raises(OptimizationError):
            result.objective_improvement()


class TestSelectionResult:
    def test_improvement_rates(self, paper_problem, baseline):
        result = select_views(paper_problem, mv3(0.5), "exhaustive")
        expected_time = (
            baseline.processing_hours - result.outcome.processing_hours
        ) / baseline.processing_hours
        assert result.time_improvement == pytest.approx(expected_time)

    def test_describe_mentions_scenario_and_views(self, paper_problem):
        result = select_views(paper_problem, mv3(0.5), "greedy")
        text = result.describe()
        assert "MV3" in text
        assert "baseline" in text

    def test_unknown_algorithm_rejected(self, paper_problem):
        with pytest.raises(OptimizationError):
            select_views(paper_problem, mv3(0.5), "quantum")


class TestExhaustiveGuard:
    def test_too_many_candidates_rejected(self, sales_dataset_10gb):
        from repro.costmodel import DeploymentSpec, PlanningEstimator
        from repro.cube import CuboidLattice, candidates_from_grains
        from repro.workload import paper_sales_workload

        lattice = CuboidLattice(sales_dataset_10gb.schema)
        # 21 artificial candidates exceed the 2^20 enumeration guard.
        grains = [("month", "country")] * 21
        candidates = candidates_from_grains(lattice, grains)
        inputs = PlanningEstimator(
            sales_dataset_10gb, DeploymentSpec.paper_deployment()
        ).build(paper_sales_workload(sales_dataset_10gb.schema, 3), candidates)
        problem = SelectionProblem(inputs)
        with pytest.raises(OptimizationError, match="exhaustive"):
            exhaustive_select(problem, mv3(0.5))
