"""Randomized selection problems: algorithm relations under hypothesis.

These tests build small synthetic :class:`PlanningInputs` directly
(random times, sizes, and query-view coverage) and assert the
relations that must hold on *every* instance:

* every algorithm's answer is feasible,
* the exhaustive optimum is never beaten,
* the greedy and knapsack answers never lose to the no-views baseline.

This is the adversarial counterpart of the dataset-driven tests: here
the coverage structure is arbitrary, so view interactions (overlap,
dominance, useless candidates) are exercised far beyond what the sales
lattice produces.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import DeploymentSpec, PlanningInputs, StorageTimeline
from repro.cube import CandidateView, ViewStats
from repro.errors import InfeasibleProblemError
from repro.money import Money
from repro.optimizer import SelectionProblem, mv1, mv2, mv3, select_views
from repro.pricing import BillingGranularity, aws_2012
from repro.schema import sales_schema
from repro.workload import AggregateQuery, Workload

SCHEMA = sales_schema()
DEPLOYMENT = DeploymentSpec(
    provider=aws_2012(BillingGranularity.PER_SECOND),
    instance_type="small",
    n_instances=2,
    maintenance_cycles=1,
)

# A pool of distinct grains for queries/views (identity is by name, so
# grain reuse is fine).
GRAINS = [
    ("month", "country"),
    ("year", "region"),
    ("month", "region"),
    ("year", "department"),
    ("day", "country"),
    ("year", "country"),
]


@st.composite
def synthetic_problems(draw):
    """A random small selection problem."""
    n_queries = draw(st.integers(min_value=1, max_value=4))
    n_views = draw(st.integers(min_value=1, max_value=5))

    queries = [
        AggregateQuery(f"Q{i}", GRAINS[i % len(GRAINS)])
        for i in range(n_queries)
    ]
    workload = Workload(SCHEMA, queries)
    candidates = tuple(
        CandidateView(f"V{j}", GRAINS[j % len(GRAINS)]) for j in range(n_views)
    )

    base_hours = {
        q.name: draw(
            st.floats(min_value=0.05, max_value=2.0, allow_nan=False)
        )
        for q in queries
    }
    view_stats = {}
    view_hours = {}
    for view in candidates:
        view_stats[view.name] = ViewStats(
            view=view,
            rows=draw(st.floats(min_value=1, max_value=1e6)),
            size_gb=draw(st.floats(min_value=0.0, max_value=5.0)),
            materialization_hours=draw(st.floats(min_value=0.0, max_value=1.0)),
            maintenance_hours_per_cycle=draw(
                st.floats(min_value=0.0, max_value=0.2)
            ),
        )
        for q in queries:
            if draw(st.booleans()):
                # This view answers q, some amount faster or not at all.
                factor = draw(st.floats(min_value=0.05, max_value=1.0))
                view_hours[(q.name, view.name)] = base_hours[q.name] * factor

    return PlanningInputs(
        workload=workload,
        candidates=candidates,
        view_stats=view_stats,
        base_query_hours=base_hours,
        view_query_hours=view_hours,
        result_sizes_gb={q.name: 0.01 for q in queries},
        dataset_gb=10.0,
        deployment=DEPLOYMENT,
        base_timeline=StorageTimeline(10.0, 1.0),
    )


@settings(max_examples=40, deadline=None)
@given(inputs=synthetic_problems(), budget_slack=st.floats(0.0, 5.0))
def test_mv1_relations(inputs, budget_slack):
    problem = SelectionProblem(inputs)
    baseline = problem.baseline()
    scenario = mv1(baseline.total_cost + Money(str(round(budget_slack, 2))))

    exhaustive = select_views(problem, scenario, "exhaustive")
    for algorithm in ("knapsack", "greedy"):
        result = select_views(problem, scenario, algorithm)
        assert scenario.feasible(result.outcome)
        # Heuristics never beat the exhaustive optimum.
        assert scenario.key(result.outcome) >= scenario.key(exhaustive.outcome)
        # And never lose to doing nothing (baseline is feasible here).
        assert result.outcome.processing_hours <= baseline.processing_hours + 1e-9


@settings(max_examples=40, deadline=None)
@given(inputs=synthetic_problems(), tightness=st.floats(0.0, 1.0))
def test_mv2_relations(inputs, tightness):
    problem = SelectionProblem(inputs)
    baseline = problem.baseline()
    best_hours = problem.evaluate(
        frozenset(problem.candidate_names)
    ).processing_hours
    # A limit between the best achievable and the baseline.
    limit = best_hours + (baseline.processing_hours - best_hours) * tightness
    scenario = mv2(limit)

    exhaustive = select_views(problem, scenario, "exhaustive")
    for algorithm in ("knapsack", "greedy"):
        result = select_views(problem, scenario, algorithm)
        assert scenario.feasible(result.outcome)
        assert result.outcome.total_cost >= exhaustive.outcome.total_cost


@settings(max_examples=40, deadline=None)
@given(inputs=synthetic_problems(), alpha=st.floats(0.0, 1.0))
def test_mv3_relations(inputs, alpha):
    problem = SelectionProblem(inputs)
    baseline = problem.baseline()
    scenario = mv3(alpha)

    exhaustive = select_views(problem, scenario, "exhaustive")
    assert scenario.objective(exhaustive.outcome) <= scenario.objective(
        baseline
    ) + 1e-9
    for algorithm in ("knapsack", "greedy"):
        result = select_views(problem, scenario, algorithm)
        assert (
            scenario.objective(result.outcome)
            >= scenario.objective(exhaustive.outcome) - 1e-9
        )
        # Greedy can never end above the baseline (it only accepts
        # improvements); the knapsack's independence assumption can, so
        # it is excluded from this bound.
        if algorithm == "greedy":
            assert scenario.objective(result.outcome) <= scenario.objective(
                baseline
            ) + 1e-9


@settings(max_examples=25, deadline=None)
@given(inputs=synthetic_problems())
def test_impossible_deadline_always_raises(inputs):
    problem = SelectionProblem(inputs)
    best_hours = problem.evaluate(
        frozenset(problem.candidate_names)
    ).processing_hours
    if best_hours <= 0:
        return
    scenario = mv2(best_hours * 0.5)
    if scenario.feasible(problem.evaluate(frozenset(problem.candidate_names))):
        return  # limit not actually impossible (0.5x still above floor)
    for algorithm in ("knapsack", "greedy", "exhaustive"):
        with pytest.raises(InfeasibleProblemError):
            select_views(problem, scenario, algorithm)
