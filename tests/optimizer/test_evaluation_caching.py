"""Evaluation counting: the caches must actually avoid re-pricing.

Covers the selector's shared-marginal computation (one baseline + one
singleton per candidate instead of four evaluations per candidate),
the per-problem evaluation counters, and the cross-problem
:class:`SubsetEvaluationCache`.
"""

from __future__ import annotations

import pytest

from repro.costmodel import PlanningEstimator
from repro.optimizer import SelectionProblem, SubsetEvaluationCache, mv2
from repro.optimizer.selector import _independent_marginals, select_views


@pytest.fixture()
def counting_problem(paper_problem):
    """A fresh problem over the session inputs (counters start at 0)."""
    return SelectionProblem(paper_problem.inputs)


class TestEvaluationStats:
    def test_counters_track_calls_hits_and_pricings(self, counting_problem):
        problem = counting_problem
        problem.evaluate(frozenset())
        problem.evaluate(frozenset())
        problem.evaluate(frozenset({"V1"}))
        assert problem.stats.calls == 3
        assert problem.stats.priced == 2
        assert problem.stats.local_hits == 1
        assert problem.stats.hits == 1


class TestSelectorEvaluationCounts:
    def test_marginals_price_each_subset_once(self, counting_problem):
        """n candidates -> exactly n + 1 evaluations (was 4n before the
        baseline/singleton reuse fix)."""
        n = len(counting_problem.candidate_names)
        _independent_marginals(counting_problem)
        assert counting_problem.stats.calls == n + 1
        assert counting_problem.stats.priced == n + 1
        # A second pass is pure cache hits.
        _independent_marginals(counting_problem)
        assert counting_problem.stats.priced == n + 1

    def test_mv2_repair_requests_each_grown_subset_once(self, paper_problem):
        """The repair loop adopts its best trial outcome directly.

        Before the fix it re-called ``evaluate`` on the adopted subset
        after trialling it, so repair-grown subsets were requested
        twice; now every multi-view subset strictly between the
        knapsack seed and the full set is requested exactly once.
        """
        from collections import Counter

        class RecordingProblem(SelectionProblem):
            def __init__(self, inputs):
                super().__init__(inputs)
                self.requests = Counter()

            def evaluate(self, subset):
                self.requests[frozenset(subset)] += 1
                return super().evaluate(subset)

        problem = RecordingProblem(paper_problem.inputs)
        n = len(problem.candidate_names)
        # Just above the everything-materialized optimum: the cover's
        # independent savings over-promise, so repair must iterate.
        everything = paper_problem.evaluate(
            frozenset(paper_problem.candidate_names)
        )
        select_views(problem, mv2(everything.processing_hours * 1.01), "knapsack")
        grown = {
            subset: count
            for subset, count in problem.requests.items()
            if 2 <= len(subset) < n
        }
        assert grown, "the repair loop must actually run in this setup"
        assert all(count == 1 for count in grown.values()), grown


class TestSubsetEvaluationCache:
    def test_shared_outcomes_across_equal_problems(self, paper_problem):
        cache = SubsetEvaluationCache()
        first = SelectionProblem(paper_problem.inputs, cache=cache)
        second = SelectionProblem(paper_problem.inputs, cache=cache)
        outcome = first.evaluate(frozenset({"V1", "V2"}))
        assert second.evaluate(frozenset({"V1", "V2"})) is outcome
        assert second.stats.priced == 0
        assert second.stats.shared_hits == 1
        assert cache.hits >= 1

    def test_state_key_defaults_to_inputs_fingerprint(self, paper_problem):
        cache = SubsetEvaluationCache()
        problem = SelectionProblem(paper_problem.inputs, cache=cache)
        assert problem.state_key == paper_problem.inputs.fingerprint()

    def test_distinct_worlds_do_not_collide(
        self, sales_dataset_10gb, paper_problem
    ):
        """Different deployments must never share pricings."""
        from repro.costmodel import DeploymentSpec

        cache = SubsetEvaluationCache()
        first = SelectionProblem(paper_problem.inputs, cache=cache)
        other_inputs = PlanningEstimator(
            sales_dataset_10gb, DeploymentSpec.paper_deployment(n_instances=2)
        ).build(
            paper_problem.inputs.workload,
            paper_problem.inputs.candidates,
        )
        second = SelectionProblem(other_inputs, cache=cache)
        a = first.evaluate(frozenset({"V1"}))
        b = second.evaluate(frozenset({"V1"}))
        assert second.stats.priced == 1  # not served from first's world
        assert a.total_cost != b.total_cost

    def test_same_named_providers_with_different_billing_never_collide(
        self, sales_dataset_10gb, paper_problem
    ):
        """Regression: provider identity is the full price book.

        ``aws_2012(PER_HOUR)`` and ``aws_2012(PER_SECOND)`` share the
        name 'aws-2012' but bill differently; a name-keyed fingerprint
        once let them share cached outcomes.
        """
        from dataclasses import replace

        from repro.costmodel import DeploymentSpec
        from repro.pricing import BillingGranularity, aws_2012

        hourly = paper_problem.inputs.deployment
        per_second = replace(
            hourly, provider=aws_2012(BillingGranularity.PER_SECOND)
        )
        assert hourly.provider.name == per_second.provider.name
        assert hourly.fingerprint() != per_second.fingerprint()

        cache = SubsetEvaluationCache()
        first = SelectionProblem(paper_problem.inputs, cache=cache)
        other_inputs = PlanningEstimator(
            sales_dataset_10gb, per_second
        ).build(
            paper_problem.inputs.workload, paper_problem.inputs.candidates
        )
        second = SelectionProblem(other_inputs, cache=cache)
        a = first.evaluate(frozenset({"V1"}))
        b = second.evaluate(frozenset({"V1"}))
        assert second.stats.priced == 1  # not aliased across billing rules
        assert a.total_cost != b.total_cost

    def test_hit_rate_and_clear(self, paper_problem):
        cache = SubsetEvaluationCache()
        problem = SelectionProblem(paper_problem.inputs, cache=cache)
        problem.evaluate(frozenset())
        assert len(cache) == 1
        assert 0.0 <= cache.hit_rate <= 1.0
        cache.clear()
        assert len(cache) == 0

    def test_intern_is_stable_and_distinct(self):
        cache = SubsetEvaluationCache()
        a = cache.intern(("world", 1))
        b = cache.intern(("world", 2))
        assert a != b
        assert cache.intern(("world", 1)) == a
        cache.clear()  # interned ids survive a clear
        assert cache.intern(("world", 1)) == a

    def test_interned_ids_stay_distinct_across_clear(self, paper_problem):
        """Regression: ``clear()`` must not recycle interned ids.

        The simulator interns one id per epoch world and keeps using it
        after trimming the cache between policy sweeps.  If ``clear()``
        also dropped ``_interned``, the next world interned after a
        clear would reuse id 0 and silently serve another world's
        pricings.  Here two problems interned *before* the clear and a
        third interned *after* it must all resolve to distinct worlds.
        """
        cache = SubsetEvaluationCache()
        id_a = cache.intern(("epoch", 0))
        id_b = cache.intern(("epoch", 1))
        first = SelectionProblem(
            paper_problem.inputs, cache=cache, state_key=id_a
        )
        outcome_a = first.evaluate(frozenset({"V1"}))
        cache.clear()
        # A world interned after the clear gets a fresh id, not id 0.
        id_c = cache.intern(("epoch", 2))
        assert len({id_a, id_b, id_c}) == 3
        third = SelectionProblem(
            paper_problem.inputs, cache=cache, state_key=id_c
        )
        outcome_c = third.evaluate(frozenset({"V1"}))
        # Both worlds priced independently: the clear dropped entries,
        # and the post-clear world never aliased the pre-clear one.
        assert third.stats.priced == 1
        assert outcome_c is not outcome_a
        # Pre-clear ids still resolve: re-pricing under id_a repopulates
        # its own slot without touching id_c's.
        second = SelectionProblem(
            paper_problem.inputs, cache=cache, state_key=id_a
        )
        outcome_a2 = second.evaluate(frozenset({"V1"}))
        assert second.stats.priced == 1
        assert cache.get(id_a, frozenset({"V1"})) is outcome_a2
        assert cache.get(id_c, frozenset({"V1"})) is outcome_c

    def test_custom_cost_model_needs_explicit_state_key(self, paper_problem):
        """Regression: a custom model under the default fingerprint key
        would alias another model's outcomes in a shared cache."""
        from repro.costmodel import CloudCostModel
        from repro.errors import OptimizationError

        model = CloudCostModel(paper_problem.inputs.deployment)
        with pytest.raises(OptimizationError, match="state_key"):
            SelectionProblem(
                paper_problem.inputs,
                cost_model=model,
                cache=SubsetEvaluationCache(),
            )
        # Fine with an explicit key, and fine without a shared cache.
        SelectionProblem(
            paper_problem.inputs,
            cost_model=model,
            cache=SubsetEvaluationCache(),
            state_key=("custom-model", 1),
        )
        SelectionProblem(paper_problem.inputs, cost_model=model)
