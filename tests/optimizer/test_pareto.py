"""The (time, cost) Pareto frontier."""

from __future__ import annotations

import pytest

from repro.optimizer import dominates, frontier_outcomes, iterate_subsets, pareto_frontier


@pytest.fixture(scope="module")
def frontier(paper_problem):
    return frontier_outcomes(paper_problem)


class TestDominates:
    def test_strictly_better_on_both(self, paper_problem):
        outcomes = {o.subset: o for o in iterate_subsets(paper_problem)}
        # Find any dominated pair to make the relation concrete.
        found = any(
            dominates(a, b)
            for a in outcomes.values()
            for b in outcomes.values()
            if a is not b
        )
        assert found

    def test_nothing_dominates_itself(self, paper_problem):
        for outcome in iterate_subsets(paper_problem):
            assert not dominates(outcome, outcome)


class TestFrontier:
    def test_frontier_is_mutually_non_dominated(self, frontier):
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not dominates(a, b)

    def test_frontier_dominates_or_ties_everything(self, paper_problem, frontier):
        for outcome in iterate_subsets(paper_problem):
            covered = any(
                dominates(f, outcome)
                or (
                    f.processing_hours <= outcome.processing_hours
                    and f.total_cost <= outcome.total_cost
                )
                for f in frontier
            )
            assert covered

    def test_sorted_by_time_with_decreasing_cost(self, frontier):
        hours = [o.processing_hours for o in frontier]
        costs = [o.total_cost for o in frontier]
        assert hours == sorted(hours)
        assert costs == sorted(costs, reverse=True)

    def test_nonempty(self, frontier):
        assert frontier


class TestPureFunction:
    def test_pareto_frontier_of_empty_is_empty(self):
        assert pareto_frontier([]) == []

    def test_single_outcome_is_its_own_frontier(self, paper_problem):
        baseline = paper_problem.baseline()
        assert pareto_frontier([baseline]) == [baseline]
