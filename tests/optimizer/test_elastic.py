"""Elastic selection: joint (fleet size, view set) choice."""

from __future__ import annotations

import pytest

from repro.errors import InfeasibleProblemError, OptimizationError
from repro.money import Money
from repro.optimizer import elastic_select, mv1, mv2, mv3, scale_out_only


@pytest.fixture(scope="module")
def problems(experiment_context):
    return experiment_context.elastic_problems(5, [1, 2, 5, 10])


class TestElasticSelect:
    def test_empty_problems_rejected(self):
        with pytest.raises(OptimizationError):
            elastic_select({}, mv3(0.5))

    def test_mv2_prefers_fewer_instances_with_views(self, problems):
        # With views, the deadline is loose even on a small fleet; the
        # cheapest feasible fleet wins.
        limit = problems[5].baseline().processing_hours
        choice = elastic_select(problems, mv2(limit), "greedy")
        assert choice.n_instances < 10

    def test_winner_is_best_across_sizes(self, problems):
        scenario = mv3(0.5)
        choice = elastic_select(problems, scenario, "greedy")
        for result in choice.per_size.values():
            assert scenario.key(choice.result.outcome) <= scenario.key(
                result.outcome
            )

    def test_infeasible_everywhere_raises(self, problems):
        with pytest.raises(InfeasibleProblemError):
            elastic_select(problems, mv2(1e-9), "greedy")

    def test_invalid_fleet_size_rejected(self, problems):
        bad = {0: next(iter(problems.values()))}
        with pytest.raises(OptimizationError):
            elastic_select(bad, mv3(0.5))


class TestScaleOutOnly:
    def test_tight_deadline_needs_more_instances(self, problems):
        # Pure scale-out: only the larger fleets meet a limit set just
        # below the 5-instance baseline.
        limit = problems[5].baseline().processing_hours * 0.9
        n, result = scale_out_only(problems, mv2(limit))
        assert n > 5
        assert result.outcome.subset == frozenset()

    def test_views_beat_scale_out_on_cost(self, problems):
        limit = problems[5].baseline().processing_hours * 0.9
        _n, scale_out = scale_out_only(problems, mv2(limit))
        elastic = elastic_select(problems, mv2(limit), "greedy")
        assert elastic.result.outcome.total_cost <= scale_out.outcome.total_cost

    def test_unreachable_deadline_raises(self, problems):
        with pytest.raises(InfeasibleProblemError):
            scale_out_only(problems, mv2(1e-9))

    def test_mv1_scale_out_spends_budget_on_speed(self, problems):
        generous = mv1(Money(1_000))
        n, _result = scale_out_only(problems, generous)
        # With no budget pressure, the fastest fleet wins.
        assert n == max(problems)
