"""Anytime search invariants: determinism, budgets, warm starts, parity.

The contracts under test are the ones ISSUE/ROADMAP promise:

* same seed + same budget => byte-identical selections on every run;
* a larger budget never yields a worse scenario key (truncation only);
* warm-started re-selection on an unchanged epoch returns the
  incumbent with zero new pricings (all shared-cache hits);
* screened-then-exact results are repr-equal to pure-Decimal pricing
  of the same subset (screening orders moves, never prices answers);
* on a generated >=1,000-view lattice, beam and local search land
  within 5% of greedy's scenario key spending <=10% of greedy's
  subset evaluations.
"""

from __future__ import annotations

import pytest

from repro.cube import generate_lattice_inputs
from repro.errors import InfeasibleProblemError
from repro.money import Money
from repro.optimizer import (
    BeamSearchSpec,
    LocalSearchSpec,
    SearchBudget,
    SelectionProblem,
    mv1,
    select_views,
)
from repro.optimizer.problem import SubsetEvaluationCache
from repro.optimizer.search import prune_candidates


@pytest.fixture(scope="module")
def small_world():
    """A 200-view lattice: big enough to search, fast enough to loop."""
    return generate_lattice_inputs(n_views=200, seed=1)


@pytest.fixture(scope="module")
def small_scenario(small_world):
    baseline = SelectionProblem(small_world.inputs).baseline()
    return mv1(baseline.total_cost * 2)


@pytest.fixture(scope="module")
def big_world():
    """The acceptance lattice: 1,000 candidate views, seeded."""
    return generate_lattice_inputs(n_views=1_000, seed=0)


@pytest.fixture(scope="module")
def big_scenario(big_world):
    baseline = SelectionProblem(big_world.inputs).baseline()
    return mv1(baseline.total_cost * 2)


@pytest.fixture(scope="module")
def greedy_on_big(big_world, big_scenario):
    problem = SelectionProblem(big_world.inputs)
    result = select_views(problem, big_scenario, "greedy")
    return result, problem.stats.calls


class TestAcceptance:
    """The headline criterion on the 1,000-view lattice."""

    @pytest.mark.parametrize("algorithm", ["beam", "local"])
    def test_within_5pct_of_greedy_at_10pct_evaluations(
        self, big_world, big_scenario, greedy_on_big, algorithm
    ):
        greedy_result, greedy_calls = greedy_on_big
        greedy_key = big_scenario.key(greedy_result.outcome)
        problem = SelectionProblem(big_world.inputs)
        result = select_views(problem, big_scenario, algorithm)
        assert big_scenario.feasible(result.outcome)
        key = big_scenario.key(result.outcome)
        assert key[0] <= greedy_key[0] * 1.05
        assert problem.stats.calls <= greedy_calls * 0.10

    @pytest.mark.parametrize("algorithm", ["beam", "local"])
    def test_deterministic_on_big_lattice(
        self, big_world, big_scenario, algorithm
    ):
        runs = [
            select_views(
                SelectionProblem(big_world.inputs), big_scenario, algorithm
            ).outcome
            for _ in range(2)
        ]
        assert runs[0].subset == runs[1].subset
        assert repr(runs[0].breakdown.total) == repr(runs[1].breakdown.total)


class TestDeterminism:
    @pytest.mark.parametrize("algorithm", ["beam", "local"])
    def test_same_seed_same_budget_byte_identical(
        self, small_world, small_scenario, algorithm
    ):
        outcomes = [
            select_views(
                SelectionProblem(small_world.inputs), small_scenario, algorithm
            ).outcome
            for _ in range(3)
        ]
        first = outcomes[0]
        for other in outcomes[1:]:
            assert other.subset == first.subset
            assert repr(other.breakdown) == repr(first.breakdown)

    def test_seed_is_a_spec_knob(self, small_world, small_scenario):
        # Different seeds are *allowed* to pick different subsets, but
        # each seed must be internally reproducible.
        for seed in (0, 7):
            spec = BeamSearchSpec(seed=seed, budget=64)
            a = select_views(
                SelectionProblem(small_world.inputs), small_scenario, spec
            )
            b = select_views(
                SelectionProblem(small_world.inputs), small_scenario, spec
            )
            assert a.outcome.subset == b.outcome.subset


class TestBudgetMonotonicity:
    @pytest.mark.parametrize("spec_cls", [BeamSearchSpec, LocalSearchSpec])
    def test_larger_budget_never_worse(
        self, small_world, small_scenario, spec_cls
    ):
        previous_key = None
        for budget in (16, 48, 96, 192):
            spec = spec_cls(budget=budget)
            result = select_views(
                SelectionProblem(small_world.inputs), small_scenario, spec
            )
            key = small_scenario.key(result.outcome)
            if previous_key is not None:
                assert key <= previous_key
            previous_key = key

    def test_budget_counts_calls_not_pricings(
        self, small_world, small_scenario
    ):
        # Budgets count evaluate() *calls*, so a pre-warmed cache must
        # not let the search see further down its trajectory.
        cache = SubsetEvaluationCache()
        cold_problem = SelectionProblem(small_world.inputs, cache=cache)
        cold = select_views(
            cold_problem, small_scenario, BeamSearchSpec(budget=48)
        )
        warm_problem = SelectionProblem(small_world.inputs, cache=cache)
        warmed = select_views(
            warm_problem, small_scenario, BeamSearchSpec(budget=48)
        )
        assert warmed.outcome.subset == cold.outcome.subset
        assert warm_problem.stats.priced == 0


class TestWarmStart:
    @pytest.mark.parametrize("algorithm", ["beam", "local"])
    def test_unchanged_epoch_returns_incumbent_free(
        self, small_world, small_scenario, algorithm
    ):
        cache = SubsetEvaluationCache()
        cold_problem = SelectionProblem(small_world.inputs, cache=cache)
        cold = select_views(cold_problem, small_scenario, algorithm)
        warm_problem = SelectionProblem(small_world.inputs, cache=cache)
        warm = select_views(
            warm_problem,
            small_scenario,
            algorithm,
            warm_start=cold.outcome.subset,
        )
        assert warm.outcome.subset == cold.outcome.subset
        assert repr(warm.outcome.breakdown) == repr(cold.outcome.breakdown)
        # Every evaluation replays the cold trajectory through the
        # shared cache: nothing is priced anew.
        assert warm_problem.stats.priced == 0

    def test_warm_start_is_an_incumbent_floor(
        self, small_world, small_scenario
    ):
        # A tiny budget cannot rediscover a good subset, but the warm
        # start guarantees the result is never worse than it.
        problem = SelectionProblem(small_world.inputs)
        good = select_views(problem, small_scenario, "beam")
        tiny = BeamSearchSpec(budget=4)
        warm = select_views(
            SelectionProblem(small_world.inputs),
            small_scenario,
            tiny,
            warm_start=good.outcome.subset,
        )
        assert small_scenario.key(warm.outcome) <= small_scenario.key(
            good.outcome
        )

    def test_classic_algorithms_ignore_warm_start(self, paper_problem):
        scenario = mv1(Money(50))
        plain = select_views(paper_problem, scenario, "greedy")
        warmed = select_views(
            paper_problem,
            scenario,
            "greedy",
            warm_start=frozenset({"V1"}),
        )
        assert warmed.outcome.subset == plain.outcome.subset

    def test_unknown_warm_names_are_dropped(
        self, small_world, small_scenario
    ):
        result = select_views(
            SelectionProblem(small_world.inputs),
            small_scenario,
            "beam",
            warm_start=frozenset({"NOT_A_VIEW"}),
        )
        assert small_scenario.feasible(result.outcome)


class TestScreenedExactParity:
    @pytest.mark.parametrize("algorithm", ["beam", "local"])
    def test_kernel_flag_never_changes_selections(
        self, small_world, small_scenario, algorithm
    ):
        # Screening only *orders* moves; reported outcomes flow through
        # the flag-respecting exact path, so kernel on/off is invisible.
        with_kernel = select_views(
            SelectionProblem(small_world.inputs, kernel=True),
            small_scenario,
            algorithm,
        )
        without = select_views(
            SelectionProblem(small_world.inputs, kernel=False),
            small_scenario,
            algorithm,
        )
        assert with_kernel.outcome.subset == without.outcome.subset
        assert repr(with_kernel.outcome.breakdown) == repr(
            without.outcome.breakdown
        )

    def test_reported_outcome_is_pure_decimal_exact(
        self, small_world, small_scenario
    ):
        result = select_views(
            SelectionProblem(small_world.inputs), small_scenario, "beam"
        )
        oracle = SelectionProblem(small_world.inputs, kernel=False).evaluate(
            result.outcome.subset
        )
        assert repr(result.outcome.breakdown) == repr(oracle.breakdown)
        assert result.outcome.total_cost == oracle.total_cost


class TestInfeasible:
    @pytest.mark.parametrize("algorithm", ["beam", "local"])
    def test_impossible_budget_raises(self, small_world, algorithm):
        with pytest.raises(InfeasibleProblemError):
            select_views(
                SelectionProblem(small_world.inputs),
                mv1(Money("0.01")),
                algorithm,
            )


class TestPruning:
    def test_prune_caps_pool(self, big_world):
        pool = prune_candidates(big_world.inputs, keep=64)
        assert len(pool) <= 64
        names = {view.name for view in big_world.candidates}
        assert set(pool) <= names

    def test_prune_is_deterministic(self, big_world):
        assert prune_candidates(big_world.inputs, 64) == prune_candidates(
            big_world.inputs, 64
        )

    def test_protect_keeps_names(self, big_world):
        pool = prune_candidates(big_world.inputs, keep=8)
        outsider = next(
            view.name
            for view in big_world.candidates
            if view.name not in pool
        )
        protected = prune_candidates(
            big_world.inputs, keep=8, protect=frozenset({outsider})
        )
        assert outsider in protected


class TestSearchBudget:
    def test_take_until_exhausted(self):
        budget = SearchBudget(2)
        assert budget.take() and budget.take()
        assert not budget.take()
        assert budget.exhausted

    def test_force_ignores_budget(self):
        budget = SearchBudget(1)
        assert budget.take()
        assert budget.exhausted
        budget.force()  # must not raise
        assert budget.used == 2

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            SearchBudget(0)
