"""The HRU greedy baseline."""

from __future__ import annotations

import pytest

from repro.cube import CuboidLattice, candidates_from_grains, hru_select
from repro.errors import OptimizationError
from repro.schema import sales_schema
from repro.workload import paper_sales_workload


@pytest.fixture(scope="module")
def lattice():
    return CuboidLattice(sales_schema())


@pytest.fixture(scope="module")
def setup(lattice):
    workload = paper_sales_workload(sales_schema(), 5)
    candidates = candidates_from_grains(
        lattice,
        [
            ("month", "region"),
            ("month", "country"),
            ("year", "region"),
            ("year", "department"),
        ],
    )
    view_rows = {"V1": 9_000.0, "V2": 1_800.0, "V3": 750.0, "V4": 6_000.0}
    return workload, candidates, view_rows


BASE_ROWS = 1_000_000.0


class TestSelection:
    def test_first_pick_maximizes_benefit(self, lattice, setup):
        workload, candidates, view_rows = setup
        result = hru_select(
            lattice, workload, candidates, view_rows, BASE_ROWS, k=1
        )
        # V1 (month, region) answers 4 of 5 queries at 9k rows each:
        # benefit 4 x (1M - 9k), the largest available.
        assert [v.name for v in result.selected] == ["V1"]
        assert result.pick_benefits[0] == pytest.approx(4 * (BASE_ROWS - 9_000))

    def test_k_bounds_the_selection(self, lattice, setup):
        workload, candidates, view_rows = setup
        result = hru_select(
            lattice, workload, candidates, view_rows, BASE_ROWS, k=2
        )
        assert len(result.selected) <= 2

    def test_space_budget_respected(self, lattice, setup):
        workload, candidates, view_rows = setup
        result = hru_select(
            lattice,
            workload,
            candidates,
            view_rows,
            BASE_ROWS,
            space_budget_rows=2_000.0,
        )
        assert sum(view_rows[v.name] for v in result.selected) <= 2_000.0

    def test_stops_when_no_benefit_remains(self, lattice, setup):
        workload, candidates, view_rows = setup
        result = hru_select(
            lattice, workload, candidates, view_rows, BASE_ROWS, k=10
        )
        # Every pick must have had strictly positive benefit.
        assert all(benefit > 0 for benefit in result.pick_benefits)

    def test_final_cost_improves_monotonically_with_k(self, lattice, setup):
        workload, candidates, view_rows = setup
        costs = [
            hru_select(
                lattice, workload, candidates, view_rows, BASE_ROWS, k=k
            ).final_query_cost
            for k in (0, 1, 2, 3)
        ]
        assert costs == sorted(costs, reverse=True)

    def test_greedy_benefits_never_increase(self, lattice, setup):
        # Submodularity of the benefit function: each pick is worth at
        # most as much as the previous one.
        workload, candidates, view_rows = setup
        result = hru_select(
            lattice, workload, candidates, view_rows, BASE_ROWS, k=4
        )
        benefits = list(result.pick_benefits)
        assert benefits == sorted(benefits, reverse=True)


class TestValidation:
    def test_needs_some_budget(self, lattice, setup):
        workload, candidates, view_rows = setup
        with pytest.raises(OptimizationError):
            hru_select(lattice, workload, candidates, view_rows, BASE_ROWS)

    def test_negative_k_rejected(self, lattice, setup):
        workload, candidates, view_rows = setup
        with pytest.raises(OptimizationError):
            hru_select(lattice, workload, candidates, view_rows, BASE_ROWS, k=-1)

    def test_missing_row_estimates_rejected(self, lattice, setup):
        workload, candidates, _ = setup
        with pytest.raises(OptimizationError, match="V1"):
            hru_select(lattice, workload, candidates, {}, BASE_ROWS, k=1)
