"""The cuboid lattice: enumeration, order, DAG cross-validation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube import CuboidLattice
from repro.errors import SchemaError
from repro.schema import ALL, sales_schema, ssb_schema


@pytest.fixture(scope="module")
def lattice():
    return CuboidLattice(sales_schema())


class TestEnumeration:
    def test_sales_lattice_has_sixteen_cuboids(self, lattice):
        # (3 levels + ALL) x (3 levels + ALL).
        assert len(lattice) == 16

    def test_ssb_lattice_has_256_cuboids(self):
        assert len(CuboidLattice(ssb_schema())) == 4**4

    def test_base_and_apex_present(self, lattice):
        assert lattice.base in lattice
        assert lattice.apex in lattice

    def test_enumeration_is_deterministic(self):
        a = CuboidLattice(sales_schema()).cuboids
        b = CuboidLattice(sales_schema()).cuboids
        assert a == b


class TestGraph:
    def test_immediate_edges_step_one_level(self, lattice):
        children = list(lattice.graph.successors(("day", "department")))
        assert sorted(children) == [("day", "region"), ("month", "department")]

    def test_apex_has_no_children(self, lattice):
        assert list(lattice.graph.successors(lattice.apex)) == []

    def test_base_has_no_parents(self, lattice):
        assert list(lattice.graph.predecessors(lattice.base)) == []

    def test_topological_order_starts_at_base(self, lattice):
        order = lattice.topological_order()
        assert order[0] == lattice.base
        assert order[-1] == lattice.apex


class TestOrderAgainstReachability:
    """The O(dims) level comparison must equal DAG reachability."""

    grains = st.tuples(
        st.sampled_from(["day", "month", "year", ALL]),
        st.sampled_from(["department", "region", "country", ALL]),
    )

    @given(a=grains, b=grains)
    @settings(max_examples=60, deadline=None)
    def test_answers_equals_path_existence(self, lattice, a, b):
        assert lattice.answers(a, b) == lattice.roll_up_path_exists(a, b)


class TestQueries:
    def test_answerable_by_base_is_everything(self, lattice):
        assert len(lattice.answerable_by(lattice.base)) == 16

    def test_answer_sources_of_apex_is_everything(self, lattice):
        assert len(lattice.answer_sources(lattice.apex)) == 16

    def test_answer_sources_of_base_is_itself(self, lattice):
        assert lattice.answer_sources(lattice.base) == [lattice.base]

    def test_mid_lattice_counts(self, lattice):
        # (month, region): sources are (day|month) x (department|region).
        assert len(lattice.answer_sources(("month", "region"))) == 4


class TestDescribe:
    def test_describe_uses_star_for_all(self, lattice):
        assert lattice.describe(("month", ALL)) == "(month, *)"

    def test_parse_roundtrip(self, lattice):
        for grain in lattice.cuboids:
            assert lattice.grain_by_name(lattice.describe(grain)) == grain

    def test_parse_rejects_garbage(self, lattice):
        with pytest.raises(SchemaError):
            lattice.grain_by_name("month, country")
        with pytest.raises(SchemaError):
            lattice.grain_by_name("(week, country)")
