"""Candidate view generation."""

from __future__ import annotations

import pytest

from repro.cube import (
    CuboidLattice,
    candidates_from_grains,
    candidates_from_workload,
    enumerate_candidates,
)
from repro.schema import ALL, sales_schema
from repro.workload import paper_sales_workload


@pytest.fixture(scope="module")
def lattice():
    return CuboidLattice(sales_schema())


@pytest.fixture(scope="module")
def workload():
    return paper_sales_workload(sales_schema(), 10)


class TestEnumerate:
    def test_excludes_base_grain(self, lattice, workload):
        grains = {c.grain for c in enumerate_candidates(lattice, workload)}
        assert lattice.base not in grains

    def test_useful_only_excludes_nonanswering_grains(self, lattice):
        small = paper_sales_workload(sales_schema(), 3)
        useful = enumerate_candidates(lattice, small, useful_only=True)
        every = enumerate_candidates(lattice, small, useful_only=False)
        assert len(useful) < len(every)
        for candidate in useful:
            assert any(
                lattice.answers(candidate.grain, q.grain) for q in small
            )

    def test_names_are_stable(self, lattice, workload):
        a = enumerate_candidates(lattice, workload)
        b = enumerate_candidates(lattice, workload)
        assert [(c.name, c.grain) for c in a] == [(c.name, c.grain) for c in b]

    def test_max_candidates_truncates(self, lattice, workload):
        assert len(enumerate_candidates(lattice, workload, max_candidates=3)) == 3


class TestFromWorkload:
    def test_one_candidate_per_distinct_query_grain(self, lattice, workload):
        candidates = candidates_from_workload(lattice, workload)
        grains = [c.grain for c in candidates]
        assert len(grains) == len(set(grains))
        # 10 queries, base grain (day, department) excluded -> 9.
        assert len(candidates) == 9

    def test_base_grain_query_yields_no_candidate(self, lattice):
        workload = paper_sales_workload(sales_schema(), 10)
        candidates = candidates_from_workload(lattice, workload)
        assert lattice.base not in {c.grain for c in candidates}

    def test_no_dominating_view_in_workload_candidates(self, lattice):
        # The defining property of this generator for m=3: no candidate
        # answers all three queries.
        small = paper_sales_workload(sales_schema(), 3)
        candidates = candidates_from_workload(lattice, small)
        for candidate in candidates:
            answered = sum(
                lattice.answers(candidate.grain, q.grain) for q in small
            )
            assert answered < 3


class TestFromGrains:
    def test_wraps_and_validates(self, lattice):
        candidates = candidates_from_grains(lattice, [("month", ALL)])
        assert candidates[0].name == "V1"
        assert candidates[0].grain == ("month", ALL)

    def test_invalid_grain_rejected(self, lattice):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            candidates_from_grains(lattice, [("week", ALL)])
