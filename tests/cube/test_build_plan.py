"""Cascaded materialization plans."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube import CandidateView, ViewStats, plan_builds
from repro.errors import CostModelError
from repro.schema import ALL, sales_schema

DATASET_GB = 10.0


def job_hours(input_gb: float, groups: float) -> float:
    """A toy linear oracle: easy to verify by hand."""
    return 1.0 + input_gb


def make_stats(name, grain, rows, size_gb):
    return ViewStats(
        view=CandidateView(name, grain),
        rows=rows,
        size_gb=size_gb,
        materialization_hours=job_hours(DATASET_GB, rows),
        maintenance_hours_per_cycle=0.0,
    )


@pytest.fixture(scope="module")
def schema():
    return sales_schema()


class TestPlanBuilds:
    def test_nested_views_cascade(self, schema):
        fine = make_stats("V1", ("month", "region"), 9_000, 0.5)
        coarse = make_stats("V2", ("year", "country"), 150, 0.01)
        plan = plan_builds(schema, [fine, coarse], DATASET_GB, job_hours)
        by_name = {s.view_name: s for s in plan.steps}
        # The fine view reads the base; the coarse one reads the fine.
        assert by_name["V1"].source_name is None
        assert by_name["V2"].source_name == "V1"
        assert by_name["V2"].input_gb == 0.5
        assert plan.base_scans == 1

    def test_incomparable_views_both_scan_base(self, schema):
        a = make_stats("V1", ("month", ALL), 120, 0.2)
        b = make_stats("V2", (ALL, "country"), 15, 0.1)
        plan = plan_builds(schema, [a, b], DATASET_GB, job_hours)
        assert plan.base_scans == 2

    def test_cheapest_ancestor_chosen(self, schema):
        finest = make_stats("V1", ("day", "region"), 500_000, 5.0)
        mid = make_stats("V2", ("month", "region"), 9_000, 0.5)
        coarse = make_stats("V3", ("year", "region"), 750, 0.05)
        plan = plan_builds(schema, [finest, mid, coarse], DATASET_GB, job_hours)
        by_name = {s.view_name: s for s in plan.steps}
        # V3 could read V1 or V2; V2 is smaller.
        assert by_name["V3"].source_name == "V2"

    def test_write_factor_scales_every_step(self, schema):
        views = [make_stats("V1", ("month", "region"), 9_000, 0.5)]
        plain = plan_builds(schema, views, DATASET_GB, job_hours, 1.0)
        amplified = plan_builds(schema, views, DATASET_GB, job_hours, 2.0)
        assert amplified.total_hours == pytest.approx(plain.total_hours * 2)

    def test_empty_subset(self, schema):
        plan = plan_builds(schema, [], DATASET_GB, job_hours)
        assert plan.steps == ()
        assert plan.total_hours == 0.0

    def test_hours_for_unknown_view(self, schema):
        plan = plan_builds(schema, [], DATASET_GB, job_hours)
        with pytest.raises(CostModelError):
            plan.hours_for("V9")

    def test_validation(self, schema):
        with pytest.raises(CostModelError):
            plan_builds(schema, [], -1.0, job_hours)
        with pytest.raises(CostModelError):
            plan_builds(schema, [], 1.0, job_hours, write_factor=0.5)


class TestCascadeNeverWorse:
    grains = st.sampled_from(
        [
            ("day", "region"),
            ("day", "country"),
            ("month", "department"),
            ("month", "region"),
            ("month", "country"),
            ("year", "region"),
            ("year", "country"),
            ("year", ALL),
            (ALL, "country"),
        ]
    )

    @given(grain_set=st.sets(grains, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_cascade_at_most_independent_cost(self, grain_set):
        """Cascading never exceeds the paper's one-scan-per-view cost."""
        schema = sales_schema()
        from repro.engine import estimate_group_count

        stats = []
        for i, grain in enumerate(sorted(grain_set)):
            rows = estimate_group_count(schema, grain, 1e8)
            size = rows * schema.row_logical_bytes(grain) / 1024**3
            stats.append(make_stats(f"V{i + 1}", grain, rows, size))
        plan = plan_builds(schema, stats, DATASET_GB, job_hours)
        independent = sum(job_hours(DATASET_GB, s.rows) for s in stats)
        assert plan.total_hours <= independent + 1e-9
