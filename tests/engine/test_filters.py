"""Filtered (slice/dice) queries: execution and answerability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_sales
from repro.engine import Executor
from repro.errors import EngineError, SchemaError
from repro.schema import ALL
from repro.workload import AggregateQuery, DimensionFilter


@pytest.fixture(scope="module")
def dataset():
    return generate_sales(n_rows=8_000, seed=17)


@pytest.fixture(scope="module")
def executor(dataset):
    return Executor(dataset)


def filtered_query(name, grain, **filter_kwargs):
    return AggregateQuery(
        name, grain, filters=(DimensionFilter(**filter_kwargs),)
    )


class TestFilterValidation:
    def test_empty_members_rejected(self):
        with pytest.raises(SchemaError):
            DimensionFilter("time", "year", frozenset())

    def test_filter_at_all_rejected(self):
        with pytest.raises(SchemaError):
            DimensionFilter("time", ALL, frozenset({0}))

    def test_negative_member_rejected(self):
        with pytest.raises(SchemaError):
            DimensionFilter("time", "year", frozenset({-1}))

    def test_unknown_level_rejected(self, dataset):
        filt = DimensionFilter("time", "week", frozenset({0}))
        with pytest.raises(SchemaError):
            filt.validate_against(dataset.schema)

    def test_out_of_range_member_rejected(self, dataset):
        filt = DimensionFilter("time", "year", frozenset({99}))
        with pytest.raises(SchemaError):
            filt.validate_against(dataset.schema)

    def test_two_filters_same_dimension_rejected(self):
        f1 = DimensionFilter("time", "year", frozenset({0}))
        f2 = DimensionFilter("time", "month", frozenset({0}))
        with pytest.raises(SchemaError):
            AggregateQuery("q", ("month", ALL), filters=(f1, f2))


class TestFilteredExecution:
    def test_year_slice_matches_manual_mask(self, dataset, executor):
        query = filtered_query(
            "q", ("month", ALL), dimension="time", level="year",
            members=frozenset({3}),
        )
        result = executor.answer(query)

        # Manual: keep facts whose day falls in year 3, sum by month.
        index = dataset.hierarchy_index("time")
        years = index.map_codes(dataset.fact.codes("time"), "day", "year")
        months = index.map_codes(dataset.fact.codes("time"), "day", "month")
        mask = years == 3
        expected_total = dataset.fact.measure("profit")[mask].sum()
        assert result.table.measure("profit").sum() == pytest.approx(
            expected_total
        )
        assert set(np.unique(months[mask])) == set(
            result.table.codes("time")
        )

    def test_filter_on_aggregated_dimension_still_works_on_base(
        self, dataset, executor
    ):
        # Group by geography only, but slice time to one year: the base
        # table keeps days, so the predicate applies.
        query = filtered_query(
            "q", (ALL, "country"), dimension="time", level="year",
            members=frozenset({0}),
        )
        result = executor.answer(query)
        assert result.table.n_rows > 0

    def test_empty_slice_gives_empty_result(self, dataset, executor):
        # With 8k skewed rows over 600 departments, some departments
        # have no facts at all; slicing to one of those must yield an
        # empty (not erroneous) result.
        present = set(np.unique(dataset.fact.codes("geography")))
        absent = next(
            code
            for code in range(
                dataset.schema.dimension("geography").cardinality("department")
            )
            if code not in present
        )
        query = filtered_query(
            "q", ("year", ALL), dimension="geography", level="department",
            members=frozenset({absent}),
        )
        result = executor.answer(query)
        assert result.table.n_rows == 0

    def test_multi_dimension_filters_compose(self, dataset, executor):
        query = AggregateQuery(
            "q",
            ("month", "region"),
            filters=(
                DimensionFilter("time", "year", frozenset({1, 2})),
                DimensionFilter("geography", "country", frozenset({0})),
            ),
        )
        result = executor.answer(query)
        index = dataset.hierarchy_index("geography")
        countries = index.map_codes(
            result.table.codes("geography"), "region", "country"
        )
        assert set(countries) <= {0}


class TestFilteredAnswerability:
    def test_view_finer_than_filter_level_answers(self, dataset, executor):
        # View at (month, country) can apply a year filter.
        view = executor.materialize(("month", "country")).table
        query = filtered_query(
            "q", ("year", "country"), dimension="time", level="year",
            members=frozenset({2}),
        )
        via_view = executor.answer(query, source=view)
        direct = executor.answer(query)
        assert via_view.table.n_rows == direct.table.n_rows
        assert via_view.table.measure("profit").sum() == pytest.approx(
            direct.table.measure("profit").sum()
        )

    def test_view_coarser_than_filter_level_cannot_answer(
        self, dataset, executor
    ):
        # View at (year, country) cannot apply a month filter: months
        # are aggregated away.
        view = executor.materialize(("year", "country")).table
        query = filtered_query(
            "q", ("year", "country"), dimension="time", level="month",
            members=frozenset({5}),
        )
        assert not query.answerable_from(dataset.schema, view.grain)
        with pytest.raises(EngineError):
            executor.answer(query, source=view)

    def test_view_with_dimension_aggregated_away_cannot_filter_it(
        self, dataset, executor
    ):
        view = executor.materialize(("month", ALL)).table
        query = filtered_query(
            "q", ("year", ALL), dimension="geography", level="country",
            members=frozenset({0}),
        )
        assert not query.answerable_from(dataset.schema, view.grain)


class TestSelectivity:
    def test_unfiltered_selectivity_is_one(self, dataset):
        query = AggregateQuery("q", ("year", ALL))
        assert query.selectivity(dataset.schema) == 1.0

    def test_filter_selectivity_is_member_fraction(self, dataset):
        query = filtered_query(
            "q", ("month", ALL), dimension="time", level="year",
            members=frozenset({0, 1}),
        )
        # 2 of 10 years.
        assert query.selectivity(dataset.schema) == pytest.approx(0.2)

    def test_filters_multiply(self, dataset):
        query = AggregateQuery(
            "q",
            ("month", "region"),
            filters=(
                DimensionFilter("time", "year", frozenset({0})),
                DimensionFilter("geography", "country", frozenset({0, 1, 2})),
            ),
        )
        assert query.selectivity(dataset.schema) == pytest.approx(
            (1 / 10) * (3 / 15)
        )


class TestEstimatorWithFilters:
    def test_filtered_queries_flow_through_planning(self, dataset):
        from repro.costmodel import DeploymentSpec, PlanningEstimator
        from repro.cube import CuboidLattice, candidates_from_workload
        from repro.workload import Workload

        schema = dataset.schema
        workload = Workload(
            schema,
            [
                filtered_query(
                    "france-monthly", ("month", "country"),
                    dimension="geography", level="country",
                    members=frozenset({0}),
                ),
                AggregateQuery("all-yearly", ("year", "country")),
            ],
        )
        lattice = CuboidLattice(schema)
        candidates = candidates_from_workload(lattice, workload)
        deployment = DeploymentSpec.paper_deployment(n_instances=5)
        inputs = PlanningEstimator(dataset, deployment, mode="empirical").build(
            workload, candidates
        )
        # The filtered query's result is smaller than the unfiltered
        # equivalent at the same grain would be.
        from repro.engine import Executor

        unfiltered_groups = (
            Executor(dataset).materialize(("month", "country")).stats.groups_out
        )
        filtered_result_rows = (
            inputs.result_sizes_gb["france-monthly"]
            / (schema.row_logical_bytes(("month", "country")) / 1024**3)
        )
        assert filtered_result_rows < unfiltered_groups

    def test_analytic_selectivity_shrinks_estimates(self, sales_dataset_10gb):
        from repro.costmodel import DeploymentSpec, PlanningEstimator
        from repro.cube import CuboidLattice, candidates_from_workload
        from repro.workload import Workload

        schema = sales_dataset_10gb.schema
        sliced = filtered_query(
            "sliced", ("month", "country"),
            dimension="time", level="year", members=frozenset({0}),
        )
        full = AggregateQuery("full", ("month", "country"))
        workload = Workload(schema, [sliced, full])
        lattice = CuboidLattice(schema)
        candidates = candidates_from_workload(lattice, workload)
        inputs = PlanningEstimator(
            sales_dataset_10gb, DeploymentSpec.paper_deployment(5)
        ).build(workload, candidates)
        assert (
            inputs.result_sizes_gb["sliced"] < inputs.result_sizes_gb["full"]
        )
