"""Executor correctness: exact roll-ups, view equivalence, errors."""

from __future__ import annotations

from collections import defaultdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import GrainTable, generate_sales
from repro.engine import Executor
from repro.errors import EngineError
from repro.schema import ALL, sales_schema
from repro.workload import AggregateQuery, paper_sales_workload


@pytest.fixture(scope="module")
def dataset():
    return generate_sales(n_rows=5_000, seed=3)


@pytest.fixture(scope="module")
def executor(dataset):
    return Executor(dataset)


def brute_force_rollup(dataset, grain):
    """Reference implementation: dict-of-sums over mapped codes."""
    fact = dataset.fact
    n = fact.n_rows
    keys = defaultdict(float)
    time_idx = dataset.hierarchy_index("time")
    geo_idx = dataset.hierarchy_index("geography")
    t_level, g_level = grain
    t_codes = (
        time_idx.map_codes(fact.codes("time"), "day", t_level)
        if t_level != ALL
        else np.zeros(n, dtype=np.int64)
    )
    g_codes = (
        geo_idx.map_codes(fact.codes("geography"), "department", g_level)
        if g_level != ALL
        else np.zeros(n, dtype=np.int64)
    )
    profit = fact.measure("profit")
    for i in range(n):
        keys[(t_codes[i], g_codes[i])] += profit[i]
    return keys


def result_as_dict(result, grain):
    table = result.table
    n = table.n_rows
    t_level, g_level = grain
    t = table.codes("time") if t_level != ALL else np.zeros(n, dtype=np.int64)
    g = (
        table.codes("geography")
        if g_level != ALL
        else np.zeros(n, dtype=np.int64)
    )
    profit = table.measure("profit")
    return {(t[i], g[i]): profit[i] for i in range(n)}


ALL_GRAINS = [
    (t, g)
    for t in ("day", "month", "year", ALL)
    for g in ("department", "region", "country", ALL)
]


class TestRollupCorrectness:
    @pytest.mark.parametrize("grain", ALL_GRAINS)
    def test_matches_brute_force(self, dataset, executor, grain):
        result = executor.materialize(grain)
        expected = brute_force_rollup(dataset, grain)
        actual = result_as_dict(result, grain)
        assert set(actual) == set(expected)
        for key, value in expected.items():
            assert actual[key] == pytest.approx(value)

    def test_total_profit_is_preserved(self, dataset, executor):
        total = dataset.fact.measure("profit").sum()
        for grain in [("year", "country"), ("month", ALL), (ALL, ALL)]:
            result = executor.materialize(grain)
            assert result.table.measure("profit").sum() == pytest.approx(total)

    def test_apex_is_one_row(self, executor):
        result = executor.materialize((ALL, ALL))
        assert result.table.n_rows == 1
        assert result.stats.groups_out == 1


class TestViewEquivalence:
    """Answering from a view must equal answering from the base."""

    @pytest.mark.parametrize(
        "view_grain,query_grain",
        [
            (("month", "country"), ("year", "country")),   # paper's V1/Q1
            (("month", "region"), ("year", "country")),
            (("day", "region"), ("month", ALL)),
            (("year", "department"), ("year", "country")),
        ],
    )
    def test_view_answers_match_base(self, dataset, executor, view_grain, query_grain):
        view = executor.materialize(view_grain).table
        query = AggregateQuery("q", dataset.schema.validate_grain(query_grain))
        from_base = result_as_dict(executor.answer(query), query_grain)
        from_view = result_as_dict(
            executor.answer(query, source=view), query_grain
        )
        assert set(from_base) == set(from_view)
        for key, value in from_base.items():
            assert from_view[key] == pytest.approx(value)

    def test_unanswerable_source_rejected(self, dataset, executor):
        view = executor.materialize(("year", "country")).table
        query = AggregateQuery("q", ("month", "country"))
        with pytest.raises(EngineError, match="cannot answer"):
            executor.answer(query, source=view)

    def test_view_scan_is_cheaper(self, executor):
        view = executor.materialize(("month", "region")).table
        query = AggregateQuery("q", ("year", "country"))
        from_base = executor.answer(query)
        from_view = executor.answer(query, source=view)
        assert from_view.stats.rows_scanned < from_base.stats.rows_scanned
        assert from_view.stats.groups_out == from_base.stats.groups_out


class TestWorkStats:
    def test_rows_scanned_is_source_size(self, dataset, executor):
        result = executor.materialize(("year", ALL))
        assert result.stats.rows_scanned == dataset.fact.n_rows

    def test_groups_out_is_result_size(self, executor):
        result = executor.materialize(("year", "country"))
        assert result.stats.groups_out == result.table.n_rows

    def test_empty_source(self, dataset):
        schema = dataset.schema
        empty = GrainTable(
            schema,
            schema.base_grain,
            dim_codes={
                "time": np.array([], dtype=np.int64),
                "geography": np.array([], dtype=np.int64),
            },
            measures={"profit": np.array([])},
        )
        result = Executor(dataset).aggregate(empty, ("year", ALL))
        assert result.table.n_rows == 0
        assert result.stats.groups_out == 0


class TestAgainstWorkload:
    def test_all_paper_queries_execute(self, dataset, executor):
        for query in paper_sales_workload(dataset.schema, 10):
            result = executor.answer(query)
            assert result.table.n_rows > 0


class TestPropertyRandomTables:
    @given(
        n=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_group_count_bounded(self, n, seed):
        schema = sales_schema(
            n_years=1, n_countries=2, regions_per_country=2,
            departments_per_region=2,
        )
        dataset = generate_sales(n_rows=n, seed=seed, schema=schema)
        executor = Executor(dataset)
        result = executor.materialize(("month", "region"))
        assert 1 <= result.table.n_rows <= min(n, 12 * 4)
