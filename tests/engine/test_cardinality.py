"""Cardinality estimation: Cardenas bounds and empirical comparison."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import generate_sales
from repro.engine import Executor, estimate_group_count, expected_distinct, grain_space
from repro.errors import EngineError
from repro.schema import ALL, sales_schema


class TestExpectedDistinct:
    def test_zero_draws(self):
        assert expected_distinct(0, 100) == 0.0

    def test_single_key_space(self):
        assert expected_distinct(50, 1) == 1.0

    def test_saturation(self):
        assert expected_distinct(1e9, 150) == pytest.approx(150.0)

    def test_huge_key_space_equals_draws(self):
        # With k >> n almost every draw is distinct.
        assert expected_distinct(1000, 1e15) == pytest.approx(1000.0, rel=1e-3)

    def test_invalid_inputs(self):
        with pytest.raises(EngineError):
            expected_distinct(-1, 10)
        with pytest.raises(EngineError):
            expected_distinct(10, 0)

    # Draw counts are row counts: zero or at least one.  Fractional
    # counts below 1 make the "distinct <= draws" bound meaningless
    # (D(2, 0.5) = 0.59 > 0.5 under the continuous formula).
    draws = st.one_of(
        st.just(0.0),
        st.floats(min_value=1, max_value=1e12, allow_nan=False),
    )
    spaces = st.floats(min_value=1, max_value=1e15, allow_nan=False)

    @given(n=draws, k=spaces)
    def test_bounded_by_draws_and_space(self, n, k):
        d = expected_distinct(n, k)
        assert 0.0 <= d <= min(n, k) + 1e-6 or d == pytest.approx(min(n, k))

    @given(n1=draws, n2=draws, k=spaces)
    def test_monotone_in_draws(self, n1, n2, k):
        lo, hi = sorted([n1, n2])
        assert expected_distinct(lo, k) <= expected_distinct(hi, k) + 1e-9

    @given(n=draws, k1=spaces, k2=spaces)
    def test_monotone_in_space(self, n, k1, k2):
        lo, hi = sorted([k1, k2])
        assert expected_distinct(n, lo) <= expected_distinct(n, hi) + 1e-6


class TestGrainSpace:
    def test_apex_space_is_one(self):
        assert grain_space(sales_schema(), (ALL, ALL)) == 1.0

    def test_product_of_cardinalities(self):
        schema = sales_schema()
        assert grain_space(schema, ("year", "country")) == 10 * 15

    def test_partial_all(self):
        schema = sales_schema()
        assert grain_space(schema, ("month", ALL)) == 120


class TestAgainstEmpirical:
    """Cardenas assumes uniformity; skewed data has fewer groups."""

    @pytest.mark.parametrize(
        "grain",
        [("year", "country"), ("month", "region"), ("month", "department")],
    )
    def test_estimate_upper_bounds_skewed_reality(self, grain):
        dataset = generate_sales(n_rows=30_000, seed=9)
        executor = Executor(dataset)
        actual = executor.materialize(grain).stats.groups_out
        estimate = estimate_group_count(dataset.schema, grain, 30_000)
        assert actual <= estimate * 1.02  # tiny float tolerance

    def test_estimate_is_tight_for_coarse_grains(self):
        # Coarse grains saturate: estimate and reality both hit the
        # full cross product.
        dataset = generate_sales(n_rows=50_000, seed=9)
        executor = Executor(dataset)
        actual = executor.materialize(("year", "country")).stats.groups_out
        estimate = estimate_group_count(dataset.schema, ("year", "country"), 50_000)
        assert actual == pytest.approx(estimate, rel=0.05)
