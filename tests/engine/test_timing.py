"""The cluster timing model: shape, monotonicity, calibration."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import ClusterTimingModel, paper_cluster
from repro.errors import EngineError


class TestShape:
    def test_overhead_floor(self):
        model = ClusterTimingModel(job_overhead_s=60.0)
        assert model.job_seconds(0.0, 0.0, 10) == 60.0

    def test_more_instances_never_slower(self):
        model = paper_cluster()
        t1 = model.job_hours(10.0, 1000, 1)
        t5 = model.job_hours(10.0, 1000, 5)
        t20 = model.job_hours(10.0, 1000, 20)
        assert t20 < t5 < t1

    def test_scale_out_is_sublinear(self):
        # Doubling instances less than halves the data-dependent part.
        model = ClusterTimingModel(job_overhead_s=0.0, parallel_efficiency=0.9)
        t1 = model.job_seconds(10.0, 0, 1)
        t2 = model.job_seconds(10.0, 0, 2)
        assert t2 > t1 / 2

    def test_perfect_efficiency_is_linear(self):
        model = ClusterTimingModel(job_overhead_s=0.0, parallel_efficiency=1.0)
        t1 = model.job_seconds(10.0, 0, 1)
        t4 = model.job_seconds(10.0, 0, 4)
        assert t4 == pytest.approx(t1 / 4)

    def test_compute_units_scale_up(self):
        model = ClusterTimingModel(job_overhead_s=0.0)
        small = model.job_seconds(10.0, 0, 1, compute_units=1.0)
        xlarge = model.job_seconds(10.0, 0, 1, compute_units=8.0)
        assert xlarge == pytest.approx(small / 8)

    def test_groups_add_reduce_time(self):
        model = paper_cluster()
        few = model.job_seconds(1.0, 10, 5)
        many = model.job_seconds(1.0, 10_000_000, 5)
        assert many > few


class TestCalibration:
    def test_ten_gb_scan_lands_near_paper_regime(self):
        # DESIGN.md section 6: ~0.19-0.20 h per 10 GB aggregate on the
        # paper's five instances.
        hours = paper_cluster().job_hours(10.0, 150, 5, 1.0)
        assert 0.17 <= hours <= 0.22

    def test_three_query_workload_near_mv2_limit(self):
        # The paper's m=3 time limit is 0.57 h.
        model = paper_cluster()
        total = 3 * model.job_hours(10.0, 1000, 5)
        assert 0.5 <= total <= 0.65


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(EngineError):
            ClusterTimingModel(scan_mb_per_s_per_cu=0)
        with pytest.raises(EngineError):
            ClusterTimingModel(job_overhead_s=-1)
        with pytest.raises(EngineError):
            ClusterTimingModel(parallel_efficiency=0)
        with pytest.raises(EngineError):
            ClusterTimingModel(parallel_efficiency=1.5)

    def test_bad_job_inputs_rejected(self):
        model = paper_cluster()
        with pytest.raises(EngineError):
            model.job_seconds(-1, 0, 1)
        with pytest.raises(EngineError):
            model.job_seconds(1, -1, 1)
        with pytest.raises(EngineError):
            model.job_seconds(1, 0, 0)
        with pytest.raises(EngineError):
            model.job_seconds(1, 0, 1, compute_units=0)


class TestProperties:
    sizes = st.floats(min_value=0, max_value=1e4, allow_nan=False)
    groups = st.floats(min_value=0, max_value=1e8, allow_nan=False)
    fleet = st.integers(min_value=1, max_value=100)

    @given(gb=sizes, g=groups, n=fleet)
    def test_time_at_least_overhead(self, gb, g, n):
        model = paper_cluster()
        assert model.job_seconds(gb, g, n) >= model.job_overhead_s

    @given(gb1=sizes, gb2=sizes, g=groups, n=fleet)
    def test_monotone_in_input_size(self, gb1, gb2, g, n):
        model = paper_cluster()
        lo, hi = sorted([gb1, gb2])
        assert model.job_seconds(lo, g, n) <= model.job_seconds(hi, g, n)
