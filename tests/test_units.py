"""Unit conversions and the round-up-hours billing rule."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConversions:
    def test_paper_uses_binary_terabytes(self):
        # Example 3 converts 0.5 TB to 512 GB.
        assert units.tb_to_gb(0.5) == 512.0

    def test_tb_gb_roundtrip(self):
        assert units.gb_to_tb(units.tb_to_gb(3.25)) == pytest.approx(3.25)

    def test_bytes_gb_roundtrip(self):
        assert units.bytes_to_gb(units.gb_to_bytes(1.5)) == pytest.approx(1.5)

    def test_seconds_hours_roundtrip(self):
        assert units.hours_to_seconds(units.seconds_to_hours(7200)) == 7200

    def test_hours_per_month_is_thirty_days(self):
        assert units.HOURS_PER_MONTH == 720.0


class TestRoundUpHours:
    def test_exact_hours_are_not_rounded(self):
        # Example 2: RoundUp(50) == 50.
        assert units.round_up_hours(50.0) == 50

    def test_every_started_hour_is_charged(self):
        assert units.round_up_hours(50.01) == 51

    def test_zero(self):
        assert units.round_up_hours(0.0) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            units.round_up_hours(-1.0)

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_roundup_bounds(self, hours):
        rounded = units.round_up_hours(hours)
        assert rounded >= hours
        # At most one whole extra hour is charged (exactly one in the
        # limit of an infinitesimal job, which bills a full hour).
        assert rounded - hours <= 1.0
