"""Money: exact arithmetic, rounding, and type discipline."""

from __future__ import annotations

from decimal import Decimal

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.money import ZERO, Money, cents, dollars

money_amounts = st.decimals(
    min_value=Decimal("-10000"),
    max_value=Decimal("10000"),
    places=4,
    allow_nan=False,
    allow_infinity=False,
)


class TestConstruction:
    def test_from_string_is_exact(self):
        assert Money("0.1").amount == Decimal("0.1")

    def test_from_float_uses_decimal_literal(self):
        # 0.1 as a float is not exactly representable; Money must treat
        # it as the written literal, not the binary expansion.
        assert Money(0.1).amount == Decimal("0.1")

    def test_from_int(self):
        assert Money(3).amount == Decimal(3)

    def test_dollars_and_cents_roundtrip(self):
        assert cents(dollars("1.23").to_cents()) == dollars("1.23")

    def test_zero_is_falsy(self):
        assert not ZERO
        assert Money("0.01")


class TestArithmetic:
    def test_addition(self):
        assert Money("1.10") + Money("2.05") == Money("3.15")

    def test_sum_builtin_starts_from_int_zero(self):
        assert sum([Money(1), Money(2)]) == Money(3)

    def test_subtraction_can_go_negative(self):
        assert Money(1) - Money(3) == Money(-2)

    def test_multiplication_by_scalar(self):
        assert Money("0.12") * 9 == Money("1.08")
        assert 9 * Money("0.12") == Money("1.08")

    def test_money_times_money_is_rejected(self):
        with pytest.raises(TypeError):
            Money(2) * Money(3)

    def test_division_by_scalar(self):
        assert Money("1.08") / 9 == Money("0.12")

    def test_division_by_money_is_rejected(self):
        with pytest.raises(TypeError):
            Money(4) / Money(2)

    def test_ratio_to(self):
        assert Money(3).ratio_to(Money(4)) == pytest.approx(0.75)

    def test_ratio_to_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Money(3).ratio_to(ZERO)

    def test_negation_and_abs(self):
        assert -Money(5) == Money(-5)
        assert abs(Money(-5)) == Money(5)


class TestRounding:
    def test_quantized_half_up(self):
        assert Money("1.005").quantized() == Money("1.01")
        assert Money("1.004").quantized() == Money("1.00")

    def test_to_cents_half_up(self):
        assert Money("1.005").to_cents() == 101

    def test_str_is_invoice_style(self):
        assert str(Money("9.6")) == "$9.60"

    def test_format_with_spec_uses_float(self):
        assert f"{Money('1.5'):.1f}" == "1.5"


class TestOrderingAndHashing:
    def test_total_ordering(self):
        assert Money(1) < Money(2) <= Money(2) < Money(3)

    def test_trailing_zeros_do_not_affect_equality_or_hash(self):
        assert Money("1.0") == Money("1.00")
        assert hash(Money("1.0")) == hash(Money("1.00"))

    def test_comparison_with_non_money_fails(self):
        with pytest.raises(TypeError):
            _ = Money(1) < 2  # noqa: B015 — the comparison is the test


class TestProperties:
    @given(a=money_amounts, b=money_amounts)
    def test_addition_commutes_exactly(self, a, b):
        assert Money(a) + Money(b) == Money(b) + Money(a)

    @given(a=money_amounts, b=money_amounts, c=money_amounts)
    def test_addition_associates_exactly(self, a, b, c):
        left = (Money(a) + Money(b)) + Money(c)
        right = Money(a) + (Money(b) + Money(c))
        assert left == right

    @given(a=money_amounts)
    def test_subtracting_self_is_zero(self, a):
        assert Money(a) - Money(a) == ZERO

    @given(a=money_amounts, k=st.integers(min_value=0, max_value=1000))
    def test_scalar_multiplication_matches_repeated_addition(self, a, k):
        total = ZERO
        for _ in range(min(k, 50)):  # keep the loop bounded
            total = total + Money(a)
        if k <= 50:
            assert Money(a) * k == total

    @given(a=money_amounts)
    def test_cents_roundtrip_within_half_cent(self, a):
        money = Money(a)
        back = cents(money.to_cents())
        assert abs(back - money) <= Money("0.005")
