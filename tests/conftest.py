"""Shared fixtures.

Datasets and experiment contexts are module-expensive to build, so the
commonly reused ones are session-scoped; tests must treat them as
read-only (they are, structurally: GrainTable and PlanningInputs expose
no mutators).
"""

from __future__ import annotations

import pytest

from repro.costmodel import DeploymentSpec, PlanningEstimator
from repro.cube import CuboidLattice, candidates_from_workload
from repro.data import generate_sales
from repro.experiments import ExperimentConfig, ExperimentContext
from repro.optimizer import SelectionProblem
from repro.schema import sales_schema
from repro.workload import paper_sales_workload


@pytest.fixture(scope="session")
def sales_dataset_unscaled():
    """A small sales dataset with a 1:1 size model (empirical-mode safe)."""
    return generate_sales(n_rows=20_000, seed=11)


@pytest.fixture(scope="session")
def sales_dataset_10gb():
    """The paper-scale dataset: 60k physical rows billing as 10 GB."""
    return generate_sales(n_rows=60_000, seed=42, target_gb=10.0)


@pytest.fixture(scope="session")
def sales_lattice():
    return CuboidLattice(sales_schema())


@pytest.fixture(scope="session")
def paper_problem(sales_dataset_10gb):
    """A 5-query selection problem in the paper's deployment."""
    deployment = DeploymentSpec.paper_deployment(n_instances=5)
    workload = paper_sales_workload(sales_dataset_10gb.schema, 5)
    lattice = CuboidLattice(sales_dataset_10gb.schema)
    candidates = candidates_from_workload(lattice, workload)
    inputs = PlanningEstimator(sales_dataset_10gb, deployment).build(
        workload, candidates
    )
    return SelectionProblem(inputs)


@pytest.fixture(scope="session")
def experiment_context():
    """A fast experiment context (fewer physical rows, same logical world)."""
    return ExperimentContext(ExperimentConfig(n_rows=30_000, seed=42))
