"""Shared fixtures.

Datasets and experiment contexts are module-expensive to build, so the
commonly reused ones are session-scoped; tests must treat them as
read-only (they are, structurally: GrainTable and PlanningInputs expose
no mutators).
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import pytest

from repro.costmodel import DeploymentSpec, PlanningEstimator
from repro.costmodel.estimator import PlanningInputs
from repro.cube import CuboidLattice, candidates_from_workload
from repro.cube.views import CandidateView
from repro.data import generate_sales
from repro.data.sizing import LogicalSizeModel
from repro.experiments import ExperimentConfig, ExperimentContext
from repro.optimizer import SelectionProblem
from repro.pricing.compute import BillingGranularity
from repro.pricing.providers import (
    archive_cloud,
    aws_2012,
    aws_2012_marginal,
    flat_cloud,
)
from repro.schema import sales_schema
from repro.schema.hierarchy import ALL, Dimension, Hierarchy
from repro.schema.star import Measure, StarSchema
from repro.workload import paper_sales_workload
from repro.workload.query import AggregateQuery, DimensionFilter
from repro.workload.workload import Workload


@pytest.fixture(scope="session")
def sales_dataset_unscaled():
    """A small sales dataset with a 1:1 size model (empirical-mode safe)."""
    return generate_sales(n_rows=20_000, seed=11)


@pytest.fixture(scope="session")
def sales_dataset_10gb():
    """The paper-scale dataset: 60k physical rows billing as 10 GB."""
    return generate_sales(n_rows=60_000, seed=42, target_gb=10.0)


@pytest.fixture(scope="session")
def sales_lattice():
    return CuboidLattice(sales_schema())


@pytest.fixture(scope="session")
def paper_problem(sales_dataset_10gb):
    """A 5-query selection problem in the paper's deployment."""
    deployment = DeploymentSpec.paper_deployment(n_instances=5)
    workload = paper_sales_workload(sales_dataset_10gb.schema, 5)
    lattice = CuboidLattice(sales_dataset_10gb.schema)
    candidates = candidates_from_workload(lattice, workload)
    inputs = PlanningEstimator(sales_dataset_10gb, deployment).build(
        workload, candidates
    )
    return SelectionProblem(inputs)


@pytest.fixture(scope="session")
def experiment_context():
    """A fast experiment context (fewer physical rows, same logical world)."""
    return ExperimentContext(ExperimentConfig(n_rows=30_000, seed=42))


# -- seeded generative worlds -----------------------------------------
#
# ``make_random_world(seed)`` is the generative factory behind the
# kernel-vs-oracle property suite: a random schema, a random filtered
# workload, a random deployment, and the PlanningInputs they induce —
# all derived from one ``random.Random(seed)`` stream, so every world
# is reproducible from its seed alone.  It is numpy-free on purpose
# (the analytic estimator only needs row counts and a size model), so
# the no-numpy CI job can run the same worlds through the kernel's
# pure-Python backend.


class _FactStub:
    """Just enough fact table for the analytic estimator: a row count."""

    def __init__(self, n_rows: int) -> None:
        self.n_rows = n_rows


class _DatasetStub:
    """Duck-typed stand-in for :class:`repro.data.Dataset` (analytic mode)."""

    def __init__(self, schema: StarSchema, n_rows: int, size_model: LogicalSizeModel) -> None:
        self.schema = schema
        self.fact = _FactStub(n_rows)
        self.size_model = size_model

    @property
    def logical_size_gb(self) -> float:
        return self.size_model.rows_to_gb(self.schema.base_grain, self.fact.n_rows)


@dataclass(frozen=True)
class RandomWorld:
    """One generated world: the triple plus its derived planning inputs."""

    seed: int
    schema: StarSchema
    workload: Workload
    candidates: Tuple[CandidateView, ...]
    deployment: DeploymentSpec
    inputs: PlanningInputs


def _random_schema(rng: random.Random) -> StarSchema:
    dims = []
    for d in range(rng.randint(2, 3)):
        n_levels = rng.randint(1, 3)
        levels = [f"d{d}l{i}" for i in range(n_levels)]
        cards = {}
        card = rng.choice([24, 60, 365, 1_000, 10_000])
        for level in levels:
            cards[level] = card
            card = max(1, card // rng.choice([2, 3, 5, 12]))
        dims.append(Dimension(f"dim{d}", Hierarchy(f"dim{d}", levels), cards))
    measures = [Measure(f"m{i}") for i in range(rng.randint(1, 2))]
    return StarSchema("world", dims, measures)


def _random_grain(rng: random.Random, schema: StarSchema) -> Tuple[str, ...]:
    return schema.validate_grain(
        tuple(
            rng.choice(list(dim.hierarchy.levels_with_all))
            for dim in schema.dimensions
        )
    )


def _random_queries(rng: random.Random, schema: StarSchema) -> List[AggregateQuery]:
    queries = []
    for i in range(rng.randint(2, 8)):
        grain = _random_grain(rng, schema)
        filters = []
        if rng.random() < 0.4:
            dim = rng.choice(schema.dimensions)
            level = rng.choice(list(dim.hierarchy.levels))
            card = dim.cardinality(level)
            n_members = rng.randint(1, min(4, card))
            members = frozenset(rng.sample(range(card), n_members))
            filters.append(DimensionFilter(dim.name, level, members))
        # Frequencies span adversarial magnitudes: fractional runs,
        # paper-typical counts, and hot queries at four orders up.
        frequency = rng.choice([0.25, 1.0, 1.0, 2.0, 30.0, 1e4])
        queries.append(
            AggregateQuery(f"Q{i + 1}", grain, frequency, tuple(filters))
        )
    return queries


def _random_candidates(
    rng: random.Random, schema: StarSchema, workload: Workload
) -> Tuple[CandidateView, ...]:
    base = schema.base_grain
    grains: List[Tuple[str, ...]] = []
    for query in workload:
        if query.grain != base and query.grain not in grains:
            grains.append(query.grain)
    for _ in range(rng.randint(0, 3)):
        grain = _random_grain(rng, schema)
        if grain != base and grain not in grains:
            grains.append(grain)
    return tuple(
        CandidateView(f"V{i + 1}", grain) for i, grain in enumerate(grains)
    )


def _random_deployment(rng: random.Random) -> DeploymentSpec:
    provider = rng.choice(
        [
            aws_2012(),
            aws_2012(BillingGranularity.PER_SECOND),
            aws_2012_marginal(BillingGranularity.PER_MINUTE),
            flat_cloud(),
            archive_cloud(),
        ]
    )
    instance_type = rng.choice(sorted(provider.compute.instance_types))
    return DeploymentSpec(
        provider=provider,
        instance_type=instance_type,
        n_instances=rng.randint(1, 8),
        storage_months=rng.choice([0.5, 1.0, 3.0, 12.0]),
        # 0 cycles is the zero-maintenance edge case.
        maintenance_cycles=rng.choice([0, 1, 30]),
        update_fraction_per_cycle=rng.choice([0.0, 0.002, 0.05]),
        runs_per_period=rng.choice([0.5, 1.0, 7.0, 30.0]),
        materialization_write_factor=rng.choice([1.0, 1.5, 3.0]),
        # None = uncapped; 1.0 = views never beat the base scan.
        view_speedup_cap=rng.choice([None, None, 1.0, 2.0, 8.0]),
    )


def make_random_world(seed: int) -> RandomWorld:
    """A reproducible random schema/workload/deployment world.

    The distributions cover the regimes the pricing path branches on:
    filtered queries (answerability + selectivity), speedup caps
    (clamped t_iV), zero-maintenance deployments, per-second vs
    round-up billing, slab vs marginal tiers, and dataset sizes from
    half a GB to adversarially large (tier boundaries, bill magnitudes
    near rounding edges).
    """
    rng = random.Random(seed)
    schema = _random_schema(rng)
    workload = Workload(schema, _random_queries(rng, schema))
    candidates = _random_candidates(rng, schema, workload)
    deployment = _random_deployment(rng)
    n_rows = rng.choice([10_000, 50_000, 200_000])
    target_gb = rng.choice([0.5, 10.0, 100.0, 5_000.0])
    size_model = LogicalSizeModel.for_target_size(schema, n_rows, target_gb)
    dataset = _DatasetStub(schema, n_rows, size_model)
    estimator = PlanningEstimator(dataset, deployment, mode="analytic")
    inputs = estimator.build(workload, candidates)
    return RandomWorld(
        seed=seed,
        schema=schema,
        workload=workload,
        candidates=candidates,
        deployment=deployment,
        inputs=inputs,
    )


@pytest.fixture(scope="session")
def random_world_factory():
    """The seeded generative world factory, as a fixture for suites."""
    return make_random_world


# -- seeded generative fleets ------------------------------------------
#
# ``make_random_fleet(seed)`` is the elastic-fleet counterpart of
# ``make_random_world``: a random tenant population — counts, workload
# prefixes (overlapping, since every tenant draws from the same paper
# pool), intensities, drift, arrival/departure schedules, attribution
# mode — derived from one ``random.Random(seed)`` stream over one
# cached tiny dataset, so fleet property suites are reproducible from
# their seeds alone.


@functools.lru_cache(maxsize=1)
def _fleet_dataset():
    """One tiny shared sales dataset for every generated fleet."""
    return generate_sales(n_rows=2_000, seed=13, target_gb=0.5)


@dataclass(frozen=True)
class RandomFleet:
    """One generated fleet: the population plus its run parameters.

    ``shiftable`` names a delayed-arrival, never-departing, drift-free
    tenant whose ``arrival_epoch`` can always be moved one epoch later
    without leaving the horizon — the handle the churn-causality
    property shifts.
    """

    seed: int
    n_epochs: int
    tenants: Tuple["Tenant", ...]
    attribution: str
    shiftable: str

    def simulator(
        self,
        tenants: Optional[Tuple["Tenant", ...]] = None,
        cache=None,
    ) -> "MultiTenantSimulator":
        """A simulator over these tenants (or a modified population)."""
        from repro.simulate.clock import SimulationClock
        from repro.simulate.presets import sales_deployment
        from repro.simulate.tenants import MultiTenantSimulator, TenantFleet

        fleet = TenantFleet(
            tenants if tenants is not None else self.tenants,
            dataset=_fleet_dataset(),
            deployment=sales_deployment(),
        )
        return MultiTenantSimulator(
            fleet,
            clock=SimulationClock(self.n_epochs),
            attribution=self.attribution,
            cache=cache,
        )


def make_random_fleet(seed: int) -> RandomFleet:
    """A reproducible random elastic fleet.

    Tenant ``a0`` anchors the fleet (founder, never departs), so every
    epoch keeps at least one active tenant whatever the rest of the
    schedule samples.  The other tenants draw overlapping paper-pool
    prefixes at varied intensities, may arrive late and/or depart
    early, and may drift (a dashboard arrival, a reweight, a drop)
    inside their active window.  One delayed-arrival tenant is kept
    drift-free with slack at the horizon so causality tests can shift
    its arrival (see :class:`RandomFleet`).
    """
    from repro.simulate.attribution import ATTRIBUTION_MODES
    from repro.simulate.events import (
        AddQueries as _Add,
        DropQueries as _Drop,
        ReweightQueries as _Reweight,
    )
    from repro.simulate.tenants import Tenant

    rng = random.Random(seed)
    schema = _fleet_dataset().schema
    n_epochs = rng.randint(6, 10)
    n_tenants = rng.randint(2, 6)

    def tenant_workload() -> Workload:
        prefix = rng.randint(1, 5)
        intensity = rng.choice([0.5, 1.0, 2.0])
        base = paper_sales_workload(schema, prefix)
        return base.reweighted(
            {q.name: q.frequency * intensity for q in base}
        )

    def drift(arrival: int, departure: Optional[int], size: int):
        window_end = departure if departure is not None else n_epochs
        epochs = list(range(arrival + 1, window_end))
        events = []
        if epochs and rng.random() < 0.5:
            events.append(
                _Add(
                    epoch=rng.choice(epochs),
                    queries=(
                        AggregateQuery.per(
                            schema,
                            "D1",
                            {"time": "day", "geography": "country"},
                            frequency=rng.choice([1.0, 3.0]),
                        ),
                    ),
                )
            )
        if epochs and rng.random() < 0.4:
            events.append(
                _Reweight(
                    epoch=rng.choice(epochs),
                    frequencies=(("Q1", rng.choice([0.25, 4.0])),),
                )
            )
        if epochs and size >= 2 and rng.random() < 0.3:
            events.append(
                _Drop(epoch=rng.choice(epochs), names=(f"Q{size}",))
            )
        return tuple(sorted(events, key=lambda e: e.epoch))

    tenants = [Tenant(name="a0", workload=tenant_workload())]
    # The guaranteed shiftable tenant: late arrival with room to move
    # one epoch later (arrival + 1 <= n_epochs - 2 keeps a >= 2-epoch
    # window), no departure, no drift.
    shift_arrival = rng.randint(1, n_epochs - 3)
    tenants.append(
        Tenant(
            name="shift",
            workload=tenant_workload(),
            arrival_epoch=shift_arrival,
        )
    )
    for i in range(n_tenants - 2):
        arrival = 0
        departure: Optional[int] = None
        roll = rng.random()
        if roll < 0.4:
            arrival = rng.randint(1, n_epochs - 3)
            if rng.random() < 0.5:
                departure = rng.randint(arrival + 2, n_epochs - 1)
        elif roll < 0.7:
            departure = rng.randint(2, n_epochs - 1)
        workload = tenant_workload()
        tenants.append(
            Tenant(
                name=f"t{i}",
                workload=workload,
                events=drift(arrival, departure, len(workload)),
                arrival_epoch=arrival,
                departure_epoch=departure,
            )
        )
    return RandomFleet(
        seed=seed,
        n_epochs=n_epochs,
        tenants=tuple(tenants),
        attribution=rng.choice(ATTRIBUTION_MODES),
        shiftable="shift",
    )


@pytest.fixture(scope="session")
def random_fleet_factory():
    """The seeded generative fleet factory, as a fixture for suites."""
    return make_random_fleet
