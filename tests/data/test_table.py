"""GrainTable invariants and hierarchy code maps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.table import GrainTable, HierarchyIndex
from repro.errors import EngineError, SchemaError
from repro.schema import ALL, sales_schema


@pytest.fixture(scope="module")
def schema():
    return sales_schema(n_years=2, n_countries=3, regions_per_country=2,
                        departments_per_region=2)


def small_table(schema, n=10):
    rng = np.random.default_rng(0)
    return GrainTable(
        schema,
        schema.base_grain,
        dim_codes={
            "time": rng.integers(0, 730, n),
            "geography": rng.integers(0, 12, n),
        },
        measures={"profit": rng.random(n)},
    )


class TestGrainTableValidation:
    def test_happy_path(self, schema):
        table = small_table(schema)
        assert table.n_rows == 10
        assert table.grain == ("day", "department")

    def test_missing_code_column_rejected(self, schema):
        with pytest.raises(EngineError, match="geography"):
            GrainTable(
                schema,
                schema.base_grain,
                dim_codes={"time": np.zeros(3, dtype=np.int64)},
                measures={"profit": np.zeros(3)},
            )

    def test_extra_code_column_rejected(self, schema):
        with pytest.raises(EngineError):
            GrainTable(
                schema,
                ("year", ALL),
                dim_codes={
                    "time": np.zeros(3, dtype=np.int64),
                    "geography": np.zeros(3, dtype=np.int64),
                },
                measures={"profit": np.zeros(3)},
            )

    def test_missing_measure_rejected(self, schema):
        with pytest.raises(EngineError, match="profit"):
            GrainTable(
                schema,
                ("year", ALL),
                dim_codes={"time": np.zeros(3, dtype=np.int64)},
                measures={},
            )

    def test_ragged_columns_rejected(self, schema):
        with pytest.raises(EngineError, match="ragged"):
            GrainTable(
                schema,
                ("year", ALL),
                dim_codes={"time": np.zeros(3, dtype=np.int64)},
                measures={"profit": np.zeros(4)},
            )

    def test_out_of_range_codes_rejected(self, schema):
        with pytest.raises(EngineError, match="outside"):
            GrainTable(
                schema,
                ("year", ALL),
                dim_codes={"time": np.array([99], dtype=np.int64)},
                measures={"profit": np.array([1.0])},
            )

    def test_codes_for_aggregated_dimension_raise(self, schema):
        table = GrainTable(
            schema,
            ("year", ALL),
            dim_codes={"time": np.array([0], dtype=np.int64)},
            measures={"profit": np.array([1.0])},
        )
        with pytest.raises(EngineError, match="aggregated away"):
            table.codes("geography")

    def test_unknown_measure_raises(self, schema):
        table = small_table(schema)
        with pytest.raises(EngineError):
            table.measure("revenue")

    def test_row_logical_bytes_matches_schema(self, schema):
        table = small_table(schema)
        assert table.row_logical_bytes == schema.fact_row_bytes


class TestHierarchyIndex:
    def test_evenly_nested_is_consistent(self, schema):
        geo = schema.dimension("geography")
        index = HierarchyIndex.evenly_nested(geo)
        departments = np.arange(geo.cardinality("department"))
        regions = index.map_codes(departments, "department", "region")
        countries = index.map_codes(departments, "department", "country")
        # Composing department->region->country equals department->country.
        via_region = index.map_codes(regions, "region", "country")
        assert np.array_equal(countries, via_region)

    def test_evenly_nested_covers_every_parent(self, schema):
        geo = schema.dimension("geography")
        index = HierarchyIndex.evenly_nested(geo)
        departments = np.arange(geo.cardinality("department"))
        regions = index.map_codes(departments, "department", "region")
        assert set(regions) == set(range(geo.cardinality("region")))

    def test_map_to_all_is_zero(self, schema):
        geo = schema.dimension("geography")
        index = HierarchyIndex.evenly_nested(geo)
        out = index.map_codes(np.array([0, 5, 11]), "department", ALL)
        assert np.array_equal(out, np.zeros(3))

    def test_downward_mapping_rejected(self, schema):
        geo = schema.dimension("geography")
        index = HierarchyIndex.evenly_nested(geo)
        with pytest.raises(EngineError, match="downward"):
            index.map_codes(np.array([0]), "country", "department")

    def test_wrong_map_count_rejected(self, schema):
        geo = schema.dimension("geography")
        with pytest.raises(SchemaError, match="needs 2 parent maps"):
            HierarchyIndex(geo, [np.zeros(12, dtype=np.int64)])

    def test_wrong_map_length_rejected(self, schema):
        geo = schema.dimension("geography")
        with pytest.raises(SchemaError, match="entries"):
            HierarchyIndex(
                geo,
                [
                    np.zeros(5, dtype=np.int64),
                    np.zeros(6, dtype=np.int64),
                ],
            )

    def test_out_of_range_parents_rejected(self, schema):
        geo = schema.dimension("geography")
        bad_map = np.full(12, 99, dtype=np.int64)
        with pytest.raises(SchemaError, match="outside"):
            HierarchyIndex(geo, [bad_map, np.zeros(6, dtype=np.int64)])

    @given(codes=st.lists(st.integers(min_value=0, max_value=11), max_size=50))
    def test_mapping_preserves_length_and_range(self, schema, codes):
        geo = schema.dimension("geography")
        index = HierarchyIndex.evenly_nested(geo)
        out = index.map_codes(np.array(codes, dtype=np.int64), "department", "region")
        assert len(out) == len(codes)
        if codes:
            assert out.min() >= 0
            assert out.max() < geo.cardinality("region")
