"""Dataset generators: determinism, calendars, size models, skew."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    LogicalSizeModel,
    generate_sales,
    generate_ssb,
    seasonal_day_codes,
    skewed_codes,
)
from repro.data.sales_generator import calendar_time_index
from repro.errors import DataGenerationError
from repro.schema import sales_schema


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        a = generate_sales(n_rows=1000, seed=5)
        b = generate_sales(n_rows=1000, seed=5)
        assert np.array_equal(a.fact.codes("time"), b.fact.codes("time"))
        assert np.array_equal(a.fact.measure("profit"), b.fact.measure("profit"))

    def test_different_seed_differs(self):
        a = generate_sales(n_rows=1000, seed=5)
        b = generate_sales(n_rows=1000, seed=6)
        assert not np.array_equal(a.fact.codes("time"), b.fact.codes("time"))

    def test_ssb_deterministic(self):
        a = generate_ssb(n_rows=500, seed=3)
        b = generate_ssb(n_rows=500, seed=3)
        assert np.array_equal(a.fact.codes("part"), b.fact.codes("part"))


class TestCalendar:
    def test_day_to_month_boundaries(self):
        index = calendar_time_index(sales_schema().dimension("time"))
        days = np.array([0, 30, 31, 58, 59, 364, 365])
        months = index.map_codes(days, "day", "month")
        # Jan has 31 days; Feb 28; year 2 starts at day 365.
        assert list(months) == [0, 0, 1, 1, 2, 11, 12]

    def test_day_to_year(self):
        index = calendar_time_index(sales_schema().dimension("time"))
        days = np.array([0, 364, 365, 3649])
        years = index.map_codes(days, "day", "year")
        assert list(years) == [0, 0, 1, 9]

    def test_calendar_needs_matching_cardinalities(self):
        from repro.schema.hierarchy import Dimension, Hierarchy

        bad = Dimension(
            "time",
            Hierarchy("time", ["day", "month", "year"]),
            {"day": 100, "month": 10, "year": 1},
        )
        with pytest.raises(DataGenerationError):
            calendar_time_index(bad)


class TestSizeModel:
    def test_target_gb_is_hit_exactly(self):
        dataset = generate_sales(n_rows=10_000, target_gb=10.0)
        assert dataset.logical_size_gb == pytest.approx(10.0)

    def test_unscaled_dataset_bills_physical_size(self):
        dataset = generate_sales(n_rows=10_000)
        expected = 10_000 * dataset.schema.fact_row_bytes / 1024**3
        assert dataset.logical_size_gb == pytest.approx(expected)

    def test_coarser_grain_rows_are_narrower(self):
        dataset = generate_sales(n_rows=1000, target_gb=1.0)
        model = dataset.size_model
        fine = model.rows_to_gb(("day", "department"), 100)
        coarse = model.rows_to_gb(("year", "country"), 100)
        assert coarse < fine

    def test_invalid_parameters_rejected(self):
        schema = sales_schema()
        with pytest.raises(DataGenerationError):
            LogicalSizeModel(schema, row_scale=0)
        with pytest.raises(DataGenerationError):
            LogicalSizeModel.for_target_size(schema, 0, 10)
        with pytest.raises(DataGenerationError):
            LogicalSizeModel.for_target_size(schema, 100, -1)
        with pytest.raises(DataGenerationError):
            LogicalSizeModel(schema).rows_to_gb(("day", "department"), -1)

    @given(
        rows=st.integers(min_value=1, max_value=10**7),
        target=st.floats(min_value=0.01, max_value=1000, allow_nan=False),
    )
    @settings(max_examples=30)
    def test_for_target_size_roundtrips(self, rows, target):
        schema = sales_schema()
        model = LogicalSizeModel.for_target_size(schema, rows, target)
        assert model.rows_to_gb(schema.base_grain, rows) == pytest.approx(target)


class TestDistributions:
    def test_skewed_codes_in_range(self):
        rng = np.random.default_rng(0)
        codes = skewed_codes(rng, 10_000, 50, skew=1.2)
        assert codes.min() >= 0
        assert codes.max() < 50

    def test_skew_concentrates_mass_on_low_codes(self):
        rng = np.random.default_rng(0)
        skewed = skewed_codes(rng, 50_000, 100, skew=1.5)
        uniform = skewed_codes(np.random.default_rng(0), 50_000, 100, skew=0.0)
        assert (skewed < 10).mean() > (uniform < 10).mean() * 2

    def test_zero_skew_is_roughly_uniform(self):
        rng = np.random.default_rng(0)
        codes = skewed_codes(rng, 100_000, 10, skew=0.0)
        counts = np.bincount(codes, minlength=10)
        assert counts.min() > 0.8 * counts.mean()

    def test_seasonal_day_codes_in_range(self):
        rng = np.random.default_rng(0)
        codes = seasonal_day_codes(rng, 10_000, 3650, amplitude=0.5)
        assert codes.min() >= 0
        assert codes.max() < 3650

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DataGenerationError):
            skewed_codes(rng, -1, 10)
        with pytest.raises(DataGenerationError):
            skewed_codes(rng, 10, 0)
        with pytest.raises(DataGenerationError):
            skewed_codes(rng, 10, 10, skew=-1)
        with pytest.raises(DataGenerationError):
            seasonal_day_codes(rng, 10, 100, amplitude=1.5)


class TestDatasetBundle:
    def test_fact_lives_at_base_grain(self, sales_dataset_unscaled):
        dataset = sales_dataset_unscaled
        assert dataset.fact.grain == dataset.schema.base_grain

    def test_hierarchy_indexes_cover_all_dimensions(self, sales_dataset_unscaled):
        dataset = sales_dataset_unscaled
        for name in dataset.schema.dimension_names:
            assert dataset.hierarchy_index(name) is not None

    def test_profit_is_positive(self, sales_dataset_unscaled):
        assert sales_dataset_unscaled.fact.measure("profit").min() > 0

    def test_nonpositive_rows_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_sales(n_rows=0)
        with pytest.raises(DataGenerationError):
            generate_ssb(n_rows=-5)
