"""The command-line interface."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import EXPERIMENTS


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert sorted(out) == sorted(EXPERIMENTS)


class TestRun:
    def test_running_example_prints_tables(self, capsys):
        assert main(["run", "running-example"]) == 0
        out = capsys.readouterr().out
        assert "Running example" in out
        assert "$12.00" in out

    def test_csv_dir_writes_files(self, tmp_path, capsys):
        code = main(
            ["run", "ablation-tiers", "--csv-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "ablation-tiers.csv").exists()

    def test_small_rows_run_fast(self, capsys):
        # A tiny dataset still regenerates table6 end to end.
        assert main(["run", "table6", "--rows", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Table 6" in out


class TestSimulate:
    def test_python_dash_m_repro_simulate_help(self):
        """``python -m repro simulate --help`` exits 0 and shows options."""
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else str(src)
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "simulate", "--help"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "--policy" in result.stdout
        assert "--epochs" in result.stdout

    def test_help_via_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["simulate", "--help"])
        assert excinfo.value.code == 0
        assert "lifecycle" in capsys.readouterr().out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "sometimes"])

    def test_small_simulation_end_to_end(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--epochs", "20",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for policy in ("never", "periodic", "regret"):
            assert policy in out
        assert "subset evaluations" in out

    def test_multi_tenant_simulation_end_to_end(self, capsys):
        code = main(
            [
                "simulate",
                "--tenants", "3",
                "--rows", "5000",
                "--epochs", "20",
                "--policy", "regret",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 tenants" in out
        for tenant in ("t1", "t2", "t3"):
            assert tenant in out
        assert "proportional" in out

    def test_attribution_mode_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--tenants", "2",
                "--attribution", "even",
                "--rows", "5000",
                "--epochs", "20",
                "--policy", "never",
                "--quiet",
            ]
        )
        assert code == 0
        assert "even" in capsys.readouterr().out

    def test_unknown_attribution_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--tenants", "2", "--attribution", "karma"]
            )

    def test_fair_slack_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--tenants", "2",
                "--fair-slack", "0.5",
                "--rows", "5000",
                "--epochs", "20",
                "--policy", "periodic",
                "--quiet",
            ]
        )
        assert code == 0
        assert "t1" in capsys.readouterr().out

    def test_tenant_flags_without_tenants_error_cleanly(self, capsys):
        """--fair-slack / --attribution without --tenants must be loud,
        not silently ignored."""
        code = main(
            ["simulate", "--fair-slack", "0.5", "--rows", "5000", "--quiet"]
        )
        assert code == 1
        assert "--tenants" in capsys.readouterr().err
        code = main(
            ["simulate", "--attribution", "even", "--rows", "5000", "--quiet"]
        )
        assert code == 1
        assert "--tenants" in capsys.readouterr().err
        # The explicit default must be caught too, not just non-defaults.
        code = main(
            [
                "simulate",
                "--attribution", "proportional",
                "--rows", "5000",
                "--quiet",
            ]
        )
        assert code == 1
        assert "--tenants" in capsys.readouterr().err

    def test_too_many_tenants_for_horizon_errors_cleanly(self, capsys):
        code = main(
            [
                "simulate",
                "--tenants", "30",
                "--rows", "5000",
                "--epochs", "20",
                "--quiet",
            ]
        )
        assert code == 1
        assert "n_epochs" in capsys.readouterr().err
