"""The command-line interface."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import EXPERIMENTS


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert sorted(out) == sorted(EXPERIMENTS)


class TestRun:
    def test_running_example_prints_tables(self, capsys):
        assert main(["run", "running-example"]) == 0
        out = capsys.readouterr().out
        assert "Running example" in out
        assert "$12.00" in out

    def test_csv_dir_writes_files(self, tmp_path, capsys):
        code = main(
            ["run", "ablation-tiers", "--csv-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "ablation-tiers.csv").exists()

    def test_small_rows_run_fast(self, capsys):
        # A tiny dataset still regenerates table6 end to end.
        assert main(["run", "table6", "--rows", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Table 6" in out


class TestSimulate:
    def test_python_dash_m_repro_simulate_help(self):
        """``python -m repro simulate --help`` exits 0 and shows options."""
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else str(src)
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "simulate", "--help"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "--policy" in result.stdout
        assert "--epochs" in result.stdout

    def test_help_via_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["simulate", "--help"])
        assert excinfo.value.code == 0
        assert "lifecycle" in capsys.readouterr().out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "sometimes"])

    def test_small_simulation_end_to_end(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--epochs", "20",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for policy in ("never", "periodic", "regret"):
            assert policy in out
        assert "subset evaluations" in out

    def test_multi_tenant_simulation_end_to_end(self, capsys):
        code = main(
            [
                "simulate",
                "--tenants", "3",
                "--rows", "5000",
                "--epochs", "20",
                "--policy", "regret",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 tenants" in out
        for tenant in ("t1", "t2", "t3"):
            assert tenant in out
        assert "proportional" in out

    def test_attribution_mode_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--tenants", "2",
                "--attribution", "even",
                "--rows", "5000",
                "--epochs", "20",
                "--policy", "never",
                "--quiet",
            ]
        )
        assert code == 0
        assert "even" in capsys.readouterr().out

    def test_unknown_attribution_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--tenants", "2", "--attribution", "karma"]
            )

    def test_fair_slack_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--tenants", "2",
                "--fair-slack", "0.5",
                "--rows", "5000",
                "--epochs", "20",
                "--policy", "periodic",
                "--quiet",
            ]
        )
        assert code == 0
        assert "t1" in capsys.readouterr().out

    def test_tenant_flags_without_tenants_error_cleanly(self, capsys):
        """--fair-slack / --attribution without --tenants must be loud,
        not silently ignored."""
        code = main(
            ["simulate", "--fair-slack", "0.5", "--rows", "5000", "--quiet"]
        )
        assert code == 1
        assert "--tenants" in capsys.readouterr().err
        code = main(
            ["simulate", "--attribution", "even", "--rows", "5000", "--quiet"]
        )
        assert code == 1
        assert "--tenants" in capsys.readouterr().err
        # The explicit default must be caught too, not just non-defaults.
        code = main(
            [
                "simulate",
                "--attribution", "proportional",
                "--rows", "5000",
                "--quiet",
            ]
        )
        assert code == 1
        assert "--tenants" in capsys.readouterr().err

    def test_stochastic_generator_single_run(self, capsys):
        code = main(
            [
                "simulate",
                "--generator", "spot",
                "--rows", "4000",
                "--epochs", "6",
                "--policy", "regret",
                "--quiet",
            ]
        )
        assert code == 0
        assert "regret" in capsys.readouterr().out

    def test_unknown_generator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--generator", "chaos"])

    def test_monte_carlo_summary_and_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "summary.csv"
        argv = [
            "simulate",
            "--trials", "2",
            "--rows", "4000",
            "--epochs", "6",
            "--seed", "7",
            "--quiet",
            "--summary-csv", str(csv_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 trials" in out
        assert "clairvoyant" in out
        first = csv_path.read_bytes()
        assert first.startswith(b"policy,metric,n,mean")
        # Re-running with the same seed must reproduce the CSV bytes.
        assert main(argv) == 0
        assert csv_path.read_bytes() == first

    def test_monte_carlo_multi_tenant(self, capsys):
        code = main(
            [
                "simulate",
                "--trials", "2",
                "--tenants", "2",
                "--rows", "4000",
                "--epochs", "6",
                "--policy", "never",
                "--quiet",
            ]
        )
        assert code == 0
        assert "tenants=2" in capsys.readouterr().out

    def test_monte_carlo_flags_without_trials_error_cleanly(self, capsys):
        code = main(["simulate", "--jobs", "4", "--rows", "4000", "--quiet"])
        assert code == 1
        assert "--trials" in capsys.readouterr().err
        code = main(
            [
                "simulate",
                "--summary-csv", "out.csv",
                "--rows", "4000",
                "--quiet",
            ]
        )
        assert code == 1
        assert "--trials" in capsys.readouterr().err

    def test_monte_carlo_attribution_without_tenants_errors(self, capsys):
        """--attribution must not be silently swallowed by a
        single-warehouse Monte Carlo run."""
        code = main(
            [
                "simulate",
                "--trials", "2",
                "--attribution", "even",
                "--rows", "4000",
                "--quiet",
            ]
        )
        assert code == 1
        assert "--tenants" in capsys.readouterr().err

    def test_monte_carlo_rejects_fair_slack(self, capsys):
        code = main(
            [
                "simulate",
                "--trials", "2",
                "--tenants", "2",
                "--fair-slack", "0.5",
                "--rows", "4000",
                "--quiet",
            ]
        )
        assert code == 1
        assert "--fair-slack" in capsys.readouterr().err

    def test_hysteresis_flag_reaches_the_policy(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "4000",
                "--epochs", "20",
                "--policy", "regret",
                "--hysteresis", "3",
                "--quiet",
            ]
        )
        assert code == 0
        assert "hold 3" in capsys.readouterr().out

    def test_too_many_tenants_for_horizon_errors_cleanly(self, capsys):
        code = main(
            [
                "simulate",
                "--tenants", "30",
                "--rows", "5000",
                "--epochs", "20",
                "--quiet",
            ]
        )
        assert code == 1
        assert "n_epochs" in capsys.readouterr().err


class TestNoKernelFlag:
    def test_every_command_with_args_accepts_it(self):
        parser = build_parser()
        for argv in (
            ["run", "running-example", "--no-kernel"],
            ["all", "--no-kernel"],
            ["simulate", "--no-kernel"],
        ):
            assert parser.parse_args(argv).no_kernel is True

    def test_exports_the_env_var_for_the_run_only(self, capsys, monkeypatch):
        """Workers inherit REPRO_NO_KERNEL; the caller's env is restored."""
        from repro.cli import _kernel_opt_out
        from repro.kernel import NO_KERNEL_ENV

        monkeypatch.delenv(NO_KERNEL_ENV, raising=False)
        args = build_parser().parse_args(["simulate", "--no-kernel"])
        with _kernel_opt_out(args):
            assert os.environ[NO_KERNEL_ENV] == "1"
        assert NO_KERNEL_ENV not in os.environ

        monkeypatch.setenv(NO_KERNEL_ENV, "0")
        with _kernel_opt_out(args):
            assert os.environ[NO_KERNEL_ENV] == "1"
        assert os.environ[NO_KERNEL_ENV] == "0"

    def test_simulate_accepts_the_opt_out_end_to_end(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--epochs", "20",
                "--policy", "regret",
                "--quiet",
                "--no-kernel",
            ]
        )
        assert code == 0
        assert "regret" in capsys.readouterr().out


class TestSimulateBuildFlags:
    def test_async_single_run_end_to_end(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--epochs", "19",
                "--policy", "regret",
                "--build-slots", "2",
                "--build-discipline", "shortest",
                "--quiet",
            ]
        )
        assert code == 0
        assert "regret" in capsys.readouterr().out

    def test_sync_flag_is_the_default_and_runs(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--epochs", "19",
                "--policy", "never",
                "--sync",
                "--quiet",
            ]
        )
        assert code == 0
        assert "never" in capsys.readouterr().out

    def test_sync_contradicts_build_knobs(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--sync",
                "--build-slots", "2",
                "--quiet",
            ]
        )
        assert code == 1
        assert "--sync contradicts" in capsys.readouterr().err
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--sync",
                "--build-discipline", "fifo",
                "--quiet",
            ]
        )
        assert code == 1
        assert "--sync contradicts" in capsys.readouterr().err

    def test_async_monte_carlo_summary_is_deterministic(
        self, tmp_path, capsys
    ):
        args = [
            "simulate",
            "--trials", "3",
            "--epochs", "8",
            "--rows", "5000",
            "--seed", "7",
            "--policy", "regret",
            "--build-slots", "1",
            "--quiet",
        ]
        first = tmp_path / "first.csv"
        second = tmp_path / "second.csv"
        assert main(args + ["--jobs", "1", "--summary-csv", str(first)]) == 0
        assert main(args + ["--jobs", "2", "--summary-csv", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
        assert b"build_latency_months" in first.read_bytes()

    def test_help_groups_the_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--help"])
        out = capsys.readouterr().out
        for group in (
            "lifecycle:",
            "tenants:",
            "stochastic:",
            "arbitrage:",
            "builds:",
            "telemetry:",
        ):
            assert group in out


class TestTelemetryFlags:
    def test_single_run_prints_cache_hit_line(self, capsys):
        assert main(["simulate", "--rows", "5000", "--epochs", "20"]) == 0
        out = capsys.readouterr().out
        assert "cache hits/priced per epoch:" in out
        assert "hit rate" in out

    def test_metrics_out_writes_a_prometheus_dump(self, tmp_path, capsys):
        dump = tmp_path / "metrics.prom"
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--epochs", "20",
                "--policy", "regret",
                "--quiet",
                "--metrics-out", str(dump),
            ]
        )
        assert code == 0
        assert "metrics dump written to" in capsys.readouterr().out
        text = dump.read_text()
        assert "repro_simulator_epochs_total 20" in text
        assert "repro_cache_hits_total" in text
        # Wall-clock span seconds never reach the deterministic dump.
        assert "seconds" not in text

    def test_trace_out_writes_json_lines(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--epochs", "20",
                "--policy", "regret",
                "--quiet",
                "--trace-out", str(trace),
            ]
        )
        assert code == 0
        assert "trace spans written to" in capsys.readouterr().out
        events = [
            json.loads(line)
            for line in trace.read_text().splitlines()
        ]
        assert events
        assert {"epoch.decide", "optimizer.solve"} <= {
            e["name"] for e in events
        }

    def test_telemetry_summary_prints_the_table(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--epochs", "20",
                "--policy", "regret",
                "--quiet",
                "--telemetry-summary",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "epoch.decide" in out

    def test_monte_carlo_metrics_dump_is_jobs_invariant(
        self, tmp_path, capsys
    ):
        args = [
            "simulate",
            "--trials", "3",
            "--epochs", "8",
            "--rows", "5000",
            "--seed", "7",
            "--policy", "regret",
            "--quiet",
        ]
        first = tmp_path / "jobs1.prom"
        second = tmp_path / "jobs2.prom"
        assert main(args + ["--jobs", "1", "--metrics-out", str(first)]) == 0
        assert main(args + ["--jobs", "2", "--metrics-out", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
        assert b"repro_montecarlo_trials_total 3" in first.read_bytes()

    def test_no_flags_means_no_telemetry_output(self, capsys):
        assert main(
            ["simulate", "--rows", "5000", "--epochs", "20", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "telemetry" not in out
        assert "metrics dump" not in out


class TestSearchFlags:
    def test_algorithm_choices_come_from_registry(self):
        from repro.optimizer import registered_algorithms

        parser = build_parser()
        for name in registered_algorithms():
            args = parser.parse_args(["simulate", "--algorithm", name])
            assert args.algorithm == name

    def test_unregistered_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--algorithm", "quantum"])

    def test_search_knobs_build_a_tuned_spec(self):
        from repro.cli import _optimizer_spec

        args = build_parser().parse_args(
            [
                "simulate",
                "--algorithm", "beam",
                "--search-budget", "64",
                "--search-seed", "5",
            ]
        )
        spec = _optimizer_spec(args)
        assert spec.name == "beam"
        assert spec.budget == 64
        assert spec.seed == 5

    def test_search_knobs_without_search_algorithm_error(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--epochs", "20",
                "--search-budget", "64",
                "--quiet",
            ]
        )
        assert code != 0
        assert "--algorithm beam" in capsys.readouterr().err

    def test_beam_simulation_end_to_end(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--epochs", "20",
                "--algorithm", "beam",
                "--search-budget", "32",
                "--policy", "periodic",
                "--quiet",
            ]
        )
        assert code == 0
        assert "periodic" in capsys.readouterr().out
