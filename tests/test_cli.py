"""The command-line interface."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import EXPERIMENTS


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert sorted(out) == sorted(EXPERIMENTS)


class TestRun:
    def test_running_example_prints_tables(self, capsys):
        assert main(["run", "running-example"]) == 0
        out = capsys.readouterr().out
        assert "Running example" in out
        assert "$12.00" in out

    def test_csv_dir_writes_files(self, tmp_path, capsys):
        code = main(
            ["run", "ablation-tiers", "--csv-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "ablation-tiers.csv").exists()

    def test_small_rows_run_fast(self, capsys):
        # A tiny dataset still regenerates table6 end to end.
        assert main(["run", "table6", "--rows", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Table 6" in out


class TestSimulate:
    def test_python_dash_m_repro_simulate_help(self):
        """``python -m repro simulate --help`` exits 0 and shows options."""
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else str(src)
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "simulate", "--help"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "--policy" in result.stdout
        assert "--epochs" in result.stdout

    def test_help_via_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["simulate", "--help"])
        assert excinfo.value.code == 0
        assert "lifecycle" in capsys.readouterr().out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "sometimes"])

    def test_small_simulation_end_to_end(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5000",
                "--epochs", "20",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for policy in ("never", "periodic", "regret"):
            assert policy in out
        assert "subset evaluations" in out
