"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import EXPERIMENTS


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert sorted(out) == sorted(EXPERIMENTS)


class TestRun:
    def test_running_example_prints_tables(self, capsys):
        assert main(["run", "running-example"]) == 0
        out = capsys.readouterr().out
        assert "Running example" in out
        assert "$12.00" in out

    def test_csv_dir_writes_files(self, tmp_path, capsys):
        code = main(
            ["run", "ablation-tiers", "--csv-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "ablation-tiers.csv").exists()

    def test_small_rows_run_fast(self, capsys):
        # A tiny dataset still regenerates table6 end to end.
        assert main(["run", "table6", "--rows", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Table 6" in out
