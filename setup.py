"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so PEP 517
editable installs (``pip install -e .``) cannot build; ``python
setup.py develop --no-deps`` installs the package from pyproject.toml
metadata without needing wheels or network access.
"""

from setuptools import setup

setup()
