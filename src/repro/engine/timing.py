"""The cluster timing model: data volumes to wall-clock hours.

The paper measures processing times on a 5-VM Hadoop 0.20.2 + Pig 0.7
cluster and feeds those times into the cost models.  We replace the
cluster with a calibrated analytic model of a MapReduce aggregation
job:

    t = overhead + input_bytes / (throughput x cluster_power)
                 + groups x per_group / cluster_power

* ``overhead`` — fixed per-job cost (JVM spin-up, scheduling, shuffle
  setup); dominant for small inputs, famously ~tens of seconds on
  Hadoop of that era.
* ``throughput`` — per-compute-unit scan rate.  Multiplying by the
  instance's compute units is how *scale-up* enters the model;
  multiplying by effective parallelism is *scale-out*.
* ``per_group`` — reduce-side cost per output group.
* effective parallelism is ``1 + (n-1) x efficiency``: adding nodes
  helps sublinearly (stragglers, shuffle skew).

:func:`paper_cluster` is calibrated so a 10 GB scan-aggregate on five
single-ECU instances lands at ~0.19 h — the per-query regime implied by
the paper's MV2 time limits (0.57 h for 3 queries).  DESIGN.md section
6 records the calibration arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EngineError
from ..units import SECONDS_PER_HOUR, gb_to_bytes

__all__ = ["ClusterTimingModel", "paper_cluster"]


@dataclass(frozen=True)
class ClusterTimingModel:
    """Analytic job-time model for an aggregation cluster.

    All rates are per EC2 Compute Unit (ECU) so the same model prices
    micro through xlarge instances.
    """

    scan_mb_per_s_per_cu: float = 3.6
    job_overhead_s: float = 60.0
    per_group_us: float = 25.0
    parallel_efficiency: float = 0.9

    def __post_init__(self) -> None:
        if self.scan_mb_per_s_per_cu <= 0:
            raise EngineError("scan throughput must be positive")
        if self.job_overhead_s < 0 or self.per_group_us < 0:
            raise EngineError("overheads cannot be negative")
        if not 0 < self.parallel_efficiency <= 1:
            raise EngineError("parallel efficiency must be in (0, 1]")

    def effective_parallelism(self, n_instances: int) -> float:
        """Usable parallelism of ``n_instances`` nodes (sublinear)."""
        if n_instances < 1:
            raise EngineError(f"need at least one instance, got {n_instances}")
        return 1.0 + (n_instances - 1) * self.parallel_efficiency

    def cluster_power(self, n_instances: int, compute_units: float = 1.0) -> float:
        """Total compute units the job can draw on."""
        if compute_units <= 0:
            raise EngineError("compute units must be positive")
        return self.effective_parallelism(n_instances) * compute_units

    def job_seconds(
        self,
        input_gb: float,
        groups_out: float,
        n_instances: int = 1,
        compute_units: float = 1.0,
    ) -> float:
        """Wall-clock seconds of one aggregation job."""
        if input_gb < 0 or groups_out < 0:
            raise EngineError("input size and group count cannot be negative")
        power = self.cluster_power(n_instances, compute_units)
        scan_s = gb_to_bytes(input_gb) / 1e6 / self.scan_mb_per_s_per_cu / power
        reduce_s = groups_out * self.per_group_us / 1e6 / power
        return self.job_overhead_s + scan_s + reduce_s

    def job_hours(
        self,
        input_gb: float,
        groups_out: float,
        n_instances: int = 1,
        compute_units: float = 1.0,
    ) -> float:
        """Wall-clock hours of one aggregation job (billing unit)."""
        return (
            self.job_seconds(input_gb, groups_out, n_instances, compute_units)
            / SECONDS_PER_HOUR
        )


def paper_cluster() -> ClusterTimingModel:
    """Timing model calibrated to the paper's 5-VM Hadoop/Pig cluster.

    With five 1-ECU instances (effective parallelism 4.6):
    10 GB scan + 60 s overhead -> ~0.19 h, matching the ~0.19-0.22 h
    per-query regime of the paper's Section 6 time limits.
    """
    return ClusterTimingModel(
        scan_mb_per_s_per_cu=3.6,
        job_overhead_s=60.0,
        per_group_us=25.0,
        parallel_efficiency=0.9,
    )
