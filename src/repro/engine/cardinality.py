"""Group-count estimation.

View sizes at paper scale cannot be measured by running the physical
table (a (year, country) view has 150 rows at *any* scale, but a
(day, department) view's row count saturates with the logical row
count).  The standard estimator is Cardenas' formula: drawing ``n``
rows uniformly over ``k`` possible group keys yields

    D(k, n) = k * (1 - (1 - 1/k)^n)

expected distinct keys.  Computed in log-space so it is stable for the
``k`` in the billions that SSB's fine cuboids produce.

Skewed data has *fewer* distinct groups than Cardenas predicts, so the
estimate is a (tight, well-understood) upper bound for our generators —
asserted as a property test and accounted for in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import EngineError
from ..schema.hierarchy import ALL
from ..schema.star import StarSchema

__all__ = ["expected_distinct", "grain_space", "estimate_group_count"]


def expected_distinct(n_draws: float, n_possible: float) -> float:
    """Cardenas' estimate of distinct keys after uniform draws.

    >>> expected_distinct(0, 100)
    0.0
    >>> round(expected_distinct(1_000_000, 150), 1)
    150.0
    """
    if n_possible < 1:
        raise EngineError(f"key space must have >=1 key, got {n_possible}")
    if n_draws < 0:
        raise EngineError(f"draw count cannot be negative: {n_draws}")
    if n_draws == 0:
        return 0.0
    if n_possible == 1:
        return 1.0
    # k * (1 - exp(n * log(1 - 1/k))), with log1p for precision.
    log_miss = n_draws * math.log1p(-1.0 / n_possible)
    if log_miss < -700:  # exp underflow: every key is surely hit
        return float(n_possible)
    return float(n_possible * -math.expm1(log_miss))


def grain_space(schema: StarSchema, grain: Sequence[str]) -> float:
    """Size of the group-key space at ``grain``.

    The product of level cardinalities (ALL contributes 1).  Returned
    as a float because SSB's fine cuboids overflow int ranges.
    """
    grain = schema.validate_grain(grain)
    space = 1.0
    for dim, level in zip(schema.dimensions, grain):
        if level != ALL:
            space *= dim.cardinality(level)
    return space


def estimate_group_count(
    schema: StarSchema,
    grain: Sequence[str],
    n_rows: float,
) -> float:
    """Expected result rows of a roll-up to ``grain`` over ``n_rows`` facts."""
    space = grain_space(schema, grain)
    return expected_distinct(n_rows, space)
