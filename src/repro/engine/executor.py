"""Query execution: SUM roll-ups over grain tables.

This is the computational substrate standing in for the paper's
Hadoop/Pig cluster.  It executes any aggregate query against the base
fact table *or* against a materialized view (any grain table whose
grain answers the query's grain), returning both the exact result and
work statistics (rows scanned, groups emitted) for the timing model.

The implementation is the columnar textbook plan: roll member codes up
to the target levels, combine them into one composite key, and reduce
with ``bincount`` over the factorized key — the moral equivalent of a
MapReduce job's map (key construction) and reduce (sum per key).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..compat import np, require_numpy
from ..data.generator import Dataset
from ..data.table import GrainTable
from ..errors import EngineError
from ..schema.hierarchy import ALL
from ..schema.star import Grain
from ..workload.query import AggregateQuery

__all__ = ["WorkStats", "QueryResult", "Executor"]


@dataclass(frozen=True)
class WorkStats:
    """Physical work performed by one aggregation job."""

    rows_scanned: int
    groups_out: int
    source_grain: Grain
    target_grain: Grain


@dataclass(frozen=True)
class QueryResult:
    """An exact aggregation result plus the work that produced it."""

    table: GrainTable
    stats: WorkStats


class Executor:
    """Executes roll-up aggregations over a dataset's tables."""

    def __init__(self, dataset: Dataset) -> None:
        require_numpy("columnar query execution")
        self._dataset = dataset
        self._schema = dataset.schema

    @property
    def dataset(self) -> Dataset:
        """The dataset this executor reads."""
        return self._dataset

    # -- public API ---------------------------------------------------

    def aggregate(self, source: GrainTable, target_grain: Sequence[str]) -> QueryResult:
        """Roll ``source`` up to ``target_grain``.

        Raises ``EngineError`` if the source grain cannot answer the
        target (the lattice's partial order).
        """
        target = self._schema.validate_grain(target_grain)
        if not self._schema.grain_answers(source.grain, target):
            raise EngineError(
                f"grain {source.grain} cannot answer grain {target}"
            )
        return self._rollup(source, target)

    def answer(
        self,
        query: AggregateQuery,
        source: Optional[GrainTable] = None,
    ) -> QueryResult:
        """Answer ``query`` from ``source`` (default: the base fact table).

        Filtered queries additionally require the source to keep every
        filtered dimension at a level fine enough to evaluate the
        predicate (see :meth:`AggregateQuery.answerable_from`).
        """
        table = source if source is not None else self._dataset.fact
        if not query.answerable_from(self._schema, table.grain):
            raise EngineError(
                f"grain {table.grain} cannot answer query {query.name!r} "
                f"(grain {query.grain}, {len(query.filters)} filters)"
            )
        if query.filters:
            table = self._apply_filters(table, query.filters)
        return self._rollup(table, self._schema.validate_grain(query.grain))

    def _apply_filters(self, table: GrainTable, filters) -> GrainTable:
        """Row-subset ``table`` to the rows every filter keeps."""
        mask = np.ones(table.n_rows, dtype=bool)
        for filt in filters:
            filt.validate_against(self._schema)
            index = self._dataset.hierarchy_index(filt.dimension)
            codes = index.map_codes(
                table.codes(filt.dimension),
                table.level_of(filt.dimension),
                filt.level,
            )
            members = np.fromiter(filt.members, dtype=np.int64)
            mask &= np.isin(codes, members)
        dim_codes = {
            dim.name: table.codes(dim.name)[mask]
            for dim, level in zip(self._schema.dimensions, table.grain)
            if level != ALL
        }
        measures = {
            m.name: table.measure(m.name)[mask]
            for m in self._schema.measures
        }
        return GrainTable(self._schema, table.grain, dim_codes, measures)

    def materialize(self, grain: Sequence[str]) -> QueryResult:
        """Compute the materialized view at ``grain`` from the fact table."""
        return self.aggregate(self._dataset.fact, grain)

    # -- internals ----------------------------------------------------

    def _rollup(self, source: GrainTable, target: Grain) -> QueryResult:
        n = source.n_rows
        if n == 0:
            return self._empty_result(source, target)

        grouped_dims = [
            (dim, src_level, tgt_level)
            for dim, src_level, tgt_level in zip(
                self._schema.dimensions, source.grain, target
            )
            if tgt_level != ALL
        ]

        if not grouped_dims:
            # Apex: one global group.
            measures = {
                m.name: np.array([source.measure(m.name).sum()])
                for m in self._schema.measures
            }
            table = GrainTable(self._schema, target, {}, measures)
            stats = WorkStats(n, 1, source.grain, target)
            return QueryResult(table, stats)

        # Map codes up to target levels and build one composite key.
        target_codes = []
        cards = []
        for dim, src_level, tgt_level in grouped_dims:
            index = self._dataset.hierarchy_index(dim.name)
            codes = index.map_codes(source.codes(dim.name), src_level, tgt_level)
            target_codes.append(codes)
            cards.append(dim.cardinality(tgt_level))

        key = target_codes[0].astype(np.int64, copy=True)
        for codes, card in zip(target_codes[1:], cards[1:]):
            key *= card
            key += codes

        unique_keys, inverse = np.unique(key, return_inverse=True)
        n_groups = len(unique_keys)

        measures: Dict[str, np.ndarray] = {}
        for m in self._schema.measures:
            measures[m.name] = np.bincount(
                inverse, weights=source.measure(m.name), minlength=n_groups
            )

        # Decompose composite keys back into per-dimension codes.
        dim_codes: Dict[str, np.ndarray] = {}
        remaining = unique_keys.copy()
        for (dim, _, _), card in zip(reversed(grouped_dims), reversed(cards)):
            dim_codes[dim.name] = remaining % card
            remaining //= card

        table = GrainTable(self._schema, target, dim_codes, measures)
        stats = WorkStats(n, n_groups, source.grain, target)
        return QueryResult(table, stats)

    def _empty_result(self, source: GrainTable, target: Grain) -> QueryResult:
        dim_codes = {
            dim.name: np.array([], dtype=np.int64)
            for dim, level in zip(self._schema.dimensions, target)
            if level != ALL
        }
        measures = {m.name: np.array([]) for m in self._schema.measures}
        table = GrainTable(self._schema, target, dim_codes, measures)
        return QueryResult(table, WorkStats(0, 0, source.grain, target))
