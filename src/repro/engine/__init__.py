"""Execution engine: exact roll-ups, cardinality estimates, job timing."""

from .cardinality import estimate_group_count, expected_distinct, grain_space
from .executor import Executor, QueryResult, WorkStats
from .timing import ClusterTimingModel, paper_cluster

__all__ = [
    "ClusterTimingModel",
    "Executor",
    "QueryResult",
    "WorkStats",
    "estimate_group_count",
    "expected_distinct",
    "grain_space",
    "paper_cluster",
]
