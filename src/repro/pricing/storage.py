"""Storage pricing (the paper's Table 4, S3-like).

Storage is billed per GB-month under a tiered schedule.  The paper's
Formula 5 splits the storage period into intervals of constant volume
(volume changes when data is inserted) and sums
``cs(DS) x (t_end - t_start) x s(DS)`` per interval; the interval
mechanics themselves live in :mod:`repro.costmodel.storage` — this
module only answers "what does *v* GB cost for *m* months".
"""

from __future__ import annotations

from .tiers import TierSchedule
from ..errors import PricingError
from ..money import Money

__all__ = ["StoragePricing"]


class StoragePricing:
    """A provider's per-GB-month storage schedule.

    Examples
    --------
    The paper's Example 9 — 550 GB stored for 12 months at the
    first-TB rate:

    >>> from repro.pricing.providers import aws_2012
    >>> aws_2012().storage.cost(volume_gb=550, months=12)
    Money('924.00')
    """

    def __init__(self, schedule: TierSchedule) -> None:
        self._schedule = schedule

    @property
    def schedule(self) -> TierSchedule:
        """The underlying tier schedule (rates are per GB-month)."""
        return self._schedule

    def fingerprint(self) -> tuple:
        """Hashable value identity: equal fingerprints bill identically."""
        return self._schedule.fingerprint()

    def monthly_cost(self, volume_gb: float) -> Money:
        """Cost of holding ``volume_gb`` for one month."""
        return self._schedule.cost(volume_gb)

    def cost(self, volume_gb: float, months: float) -> Money:
        """Cost of holding a constant ``volume_gb`` for ``months`` months.

        Fractional months are allowed (storage is metered continuously);
        negative durations are a caller bug.
        """
        if months < 0:
            raise PricingError(f"storage duration cannot be negative: {months}")
        return self.monthly_cost(volume_gb) * months
