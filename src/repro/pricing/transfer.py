"""Bandwidth pricing (the paper's Table 3).

The 2012 AWS model the paper adopts: all inbound transfer is free;
outbound transfer is tiered with the first GB free.  Formula 2 of the
paper includes inbound terms (queries, the initial dataset, inserted
data) which vanish under this model, collapsing to Formula 3 — both
formulas are implemented so the simplification is testable rather than
assumed.
"""

from __future__ import annotations

from typing import Optional

from .tiers import TierSchedule
from ..errors import PricingError
from ..money import Money, ZERO

__all__ = ["TransferPricing"]


class TransferPricing:
    """A provider's data-transfer schedule, split by direction.

    Parameters
    ----------
    outbound:
        Tier schedule for data leaving the cloud (query results).
    inbound:
        Tier schedule for data entering the cloud, or ``None`` when
        inbound transfer is free (the AWS model of the paper).
    """

    def __init__(
        self,
        outbound: TierSchedule,
        inbound: Optional[TierSchedule] = None,
    ) -> None:
        self._outbound = outbound
        self._inbound = inbound

    @property
    def outbound_schedule(self) -> TierSchedule:
        """The outbound (egress) tier schedule."""
        return self._outbound

    @property
    def inbound_schedule(self) -> Optional[TierSchedule]:
        """The inbound schedule, or ``None`` if ingress is free."""
        return self._inbound

    @property
    def inbound_is_free(self) -> bool:
        """Whether this provider charges nothing for ingress."""
        return self._inbound is None

    def fingerprint(self) -> tuple:
        """Hashable value identity: equal fingerprints bill identically.

        Returns
        -------
        tuple
            The outbound schedule's fingerprint plus the inbound's
            (``None`` when ingress is free), usable as a cache key.
        """
        return (
            self._outbound.fingerprint(),
            self._inbound.fingerprint() if self._inbound else None,
        )

    def outbound_cost(self, volume_gb: float) -> Money:
        """Cost of sending ``volume_gb`` out of the cloud.

        Prices query results, view decommission exports and the
        egress leg of a provider migration
        (:mod:`repro.pricing.migration`).

        Parameters
        ----------
        volume_gb:
            Gigabytes leaving the cloud; must be non-negative.

        Returns
        -------
        Money
            The tiered egress charge.

        Examples
        --------
        The paper's Example 1 — a 10 GB query result:

        >>> from repro.pricing.providers import aws_2012
        >>> aws_2012().transfer.outbound_cost(10.0)
        Money('1.08')
        """
        if volume_gb < 0:
            raise PricingError(f"volume cannot be negative: {volume_gb}")
        return self._outbound.cost(volume_gb)

    def inbound_cost(self, volume_gb: float) -> Money:
        """Cost of sending ``volume_gb`` into the cloud (often zero).

        Parameters
        ----------
        volume_gb:
            Gigabytes entering the cloud; must be non-negative.

        Returns
        -------
        Money
            The tiered ingress charge — exactly zero when the
            provider's inbound schedule is ``None`` (the AWS model of
            the paper).
        """
        if volume_gb < 0:
            raise PricingError(f"volume cannot be negative: {volume_gb}")
        if self._inbound is None:
            return ZERO
        return self._inbound.cost(volume_gb)
