"""Cloud pricing substrate: tiered rates, instance catalogues, providers.

This package is the monetary half of the paper's inputs: the cost
models in :mod:`repro.costmodel` multiply *times and sizes* produced by
the engine with *rates* produced here.
"""

from .compute import BillingGranularity, ComputePricing, InstanceType
from .migration import (
    MigrationEstimate,
    migration_transfer_cost,
    migration_volume_gb,
)
from .providers import (
    Provider,
    all_providers,
    archive_cloud,
    aws_2012,
    aws_2012_marginal,
    flat_cloud,
)
from .storage import StoragePricing
from .tiers import Tier, TierMode, TierSchedule
from .transfer import TransferPricing

__all__ = [
    "BillingGranularity",
    "ComputePricing",
    "InstanceType",
    "MigrationEstimate",
    "Provider",
    "StoragePricing",
    "Tier",
    "TierMode",
    "TierSchedule",
    "TransferPricing",
    "all_providers",
    "archive_cloud",
    "aws_2012",
    "aws_2012_marginal",
    "flat_cloud",
    "migration_transfer_cost",
    "migration_volume_gb",
]
