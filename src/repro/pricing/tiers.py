"""Tiered (volume-banded) price schedules.

Cloud providers price storage and bandwidth in volume bands: the paper's
Table 3 (bandwidth: first GB free, $0.12/GB up to 10 TB, $0.09 for the
next 40 TB, ...) and Table 4 (storage: $0.14/GB-month for the first TB,
$0.125 for the next 49 TB, ...).

Two *semantics* exist for such bands and the paper uses both:

* **marginal** (progressive, how AWS actually bills): each unit is
  charged at the rate of the band it falls into.  The paper's Example 1
  prices 10 GB of egress as ``(10 - 1) x 0.12`` — the first free GB is a
  marginal band.
* **slab**: the whole volume is charged at the rate of the band the
  *total* falls into.  The paper's Example 3 prices 2 560 GB of storage
  at a flat 0.125/GB because the total crossed the first-TB boundary.

:class:`TierSchedule` implements both so the library can be
paper-faithful where the paper is slab-shaped and AWS-faithful
everywhere else.  Slab pricing is famously non-monotonic at band edges
(1 025 GB can cost less than 1 024 GB); that is a property of the
semantics, preserved and covered by tests, not a bug.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import PricingError
from ..money import Money, ZERO

__all__ = ["Tier", "TierMode", "TierSchedule"]


class TierMode(enum.Enum):
    """How a :class:`TierSchedule` interprets its bands."""

    #: Progressive: each unit billed at its own band's rate (AWS-style).
    MARGINAL = "marginal"
    #: Whole volume billed at the rate of the band containing the total
    #: (the simplification the paper's Example 3 uses).
    SLAB = "slab"


@dataclass(frozen=True)
class Tier:
    """One price band.

    Parameters
    ----------
    upper_gb:
        Exclusive upper bound of the band in GB, measured from zero
        (i.e. cumulative volume), or ``None`` for an unbounded final
        band.
    rate:
        Price per GB (for transfer) or per GB-month (for storage)
        within this band.
    """

    upper_gb: Optional[float]
    rate: Money

    def __post_init__(self) -> None:
        if self.upper_gb is not None and self.upper_gb <= 0:
            raise PricingError(
                f"tier upper bound must be positive, got {self.upper_gb}"
            )
        if self.rate < ZERO:
            raise PricingError(f"tier rate cannot be negative: {self.rate}")


class TierSchedule:
    """An ordered sequence of price bands with a billing semantics.

    Bands are given in increasing order of cumulative volume; the final
    band must be unbounded so that any volume is priceable.

    Examples
    --------
    The paper's Table 3 outbound-bandwidth schedule:

    >>> from repro.money import dollars
    >>> schedule = TierSchedule([
    ...     Tier(1.0, dollars(0)),                 # first GB free
    ...     Tier(10 * 1024.0, dollars("0.12")),    # up to 10 TB
    ...     Tier(50 * 1024.0, dollars("0.09")),    # next 40 TB
    ...     Tier(150 * 1024.0, dollars("0.07")),   # next 100 TB
    ...     Tier(None, dollars("0.05")),
    ... ])
    >>> schedule.cost(10.0)            # Example 1 of the paper
    Money('1.08')
    """

    def __init__(
        self,
        tiers: Iterable[Tier],
        mode: TierMode = TierMode.MARGINAL,
    ) -> None:
        self._tiers: Tuple[Tier, ...] = tuple(tiers)
        self._mode = mode
        self._validate()

    def _validate(self) -> None:
        if not self._tiers:
            raise PricingError("a tier schedule needs at least one tier")
        previous_bound = 0.0
        for tier in self._tiers[:-1]:
            if tier.upper_gb is None:
                raise PricingError(
                    "only the final tier may be unbounded (upper_gb=None)"
                )
            if tier.upper_gb <= previous_bound:
                raise PricingError(
                    "tier bounds must be strictly increasing: "
                    f"{tier.upper_gb} after {previous_bound}"
                )
            previous_bound = tier.upper_gb
        if self._tiers[-1].upper_gb is not None:
            raise PricingError("the final tier must be unbounded (upper_gb=None)")

    # -- introspection ------------------------------------------------

    @property
    def tiers(self) -> Sequence[Tier]:
        """The bands, in increasing volume order."""
        return self._tiers

    @property
    def mode(self) -> TierMode:
        """The billing semantics of this schedule."""
        return self._mode

    def fingerprint(self) -> tuple:
        """Hashable value identity: equal fingerprints bill identically."""
        return (self._mode.value, self._tiers)

    def with_mode(self, mode: TierMode) -> "TierSchedule":
        """A copy of this schedule under a different semantics."""
        return TierSchedule(self._tiers, mode)

    # -- pricing ------------------------------------------------------

    def marginal_rate(self, volume_gb: float) -> Money:
        """The per-GB rate charged for the *next* unit after ``volume_gb``."""
        if volume_gb < 0:
            raise PricingError(f"volume cannot be negative: {volume_gb}")
        for tier in self._tiers:
            if tier.upper_gb is None or volume_gb < tier.upper_gb:
                return tier.rate
        raise AssertionError("unreachable: final tier is unbounded")

    def cost(self, volume_gb: float) -> Money:
        """Price ``volume_gb`` under this schedule's semantics."""
        if volume_gb < 0:
            raise PricingError(f"volume cannot be negative: {volume_gb}")
        if volume_gb == 0:
            return ZERO
        if self._mode is TierMode.SLAB:
            return self.marginal_rate(volume_gb) * volume_gb
        return self._marginal_cost(volume_gb)

    def _marginal_cost(self, volume_gb: float) -> Money:
        total = ZERO
        lower = 0.0
        for tier in self._tiers:
            upper = tier.upper_gb if tier.upper_gb is not None else volume_gb
            band_volume = min(volume_gb, upper) - lower
            if band_volume <= 0:
                break
            total = total + tier.rate * band_volume
            lower = upper
            if volume_gb <= upper:
                break
        return total

    def average_rate(self, volume_gb: float) -> Money:
        """Effective per-GB rate at ``volume_gb`` (cost / volume)."""
        if volume_gb <= 0:
            raise PricingError("average rate needs a positive volume")
        return self.cost(volume_gb) / volume_gb

    # -- convenience constructors -------------------------------------

    @classmethod
    def flat(cls, rate: Money) -> "TierSchedule":
        """A single-band schedule: every GB at ``rate``."""
        return cls([Tier(None, rate)], TierMode.MARGINAL)

    @classmethod
    def from_band_widths(
        cls,
        bands: Sequence[Tuple[Optional[float], Money]],
        mode: TierMode = TierMode.MARGINAL,
    ) -> "TierSchedule":
        """Build from (band width, rate) pairs, the way price sheets read.

        The paper's Table 4 reads "first 1 TB / next 49 TB / next
        450 TB"; widths are cumulative-ized here so callers can
        transcribe the sheet directly.
        """
        tiers: List[Tier] = []
        cumulative = 0.0
        for width_gb, rate in bands:
            if width_gb is None:
                tiers.append(Tier(None, rate))
            else:
                cumulative += width_gb
                tiers.append(Tier(cumulative, rate))
        return cls(tiers, mode)

    def __repr__(self) -> str:
        bands = ", ".join(
            f"<= {tier.upper_gb} GB @ {tier.rate}"
            if tier.upper_gb is not None
            else f"rest @ {tier.rate}"
            for tier in self._tiers
        )
        return f"TierSchedule({self._mode.value}: {bands})"
