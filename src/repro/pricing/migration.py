"""Provider-migration costing: what switching price books actually costs.

The paper prices a warehouse against one provider; its first
future-work item is comparing "pricing models from several CSPs".
Once several books are on the table, *moving* between them is itself
a priced operation, and this module is its cost model:

* **egress** — the dataset and every materialized view leave the
  source provider through its outbound transfer schedule (the same
  Table 3 machinery that prices query results);
* **ingress** — the same volume enters the target provider through
  its inbound schedule (free on the AWS-style books, priced on
  symmetric-transfer books);
* **rebuild** — materialized views are not portable between engines,
  so every kept view is re-materialized on the target and billed at
  the *target's* compute rates.

The split matters because each term lives on a different book: egress
on the source, ingress and rebuild on the target.  An arbitrage
policy (:mod:`repro.simulate.arbitrage`) weighs the total against the
per-epoch savings of the cheaper book over a forecast horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from .providers import Provider
from ..errors import PricingError
from ..money import Money, ZERO

__all__ = [
    "MigrationEstimate",
    "migration_transfer_cost",
    "migration_volume_gb",
]


def migration_volume_gb(
    dataset_gb: float, view_sizes_gb: Mapping[str, float]
) -> float:
    """Gigabytes a migration ships: the dataset plus every listed view.

    Parameters
    ----------
    dataset_gb:
        Logical size of the base dataset.
    view_sizes_gb:
        Size of each materialized view travelling with it, by name
        (typically the views held when the migration fires).

    Returns
    -------
    float
        Total outbound volume in GB.
    """
    if dataset_gb < 0:
        raise PricingError(f"dataset size cannot be negative: {dataset_gb}")
    for name, size in view_sizes_gb.items():
        if size < 0:
            raise PricingError(
                f"view {name!r} has negative size: {size}"
            )
    return dataset_gb + sum(view_sizes_gb.values())


def migration_transfer_cost(
    source: Provider, target: Provider, volume_gb: float
) -> Tuple[Money, Money]:
    """The transfer legs of moving ``volume_gb`` between providers.

    Parameters
    ----------
    source:
        The provider being left; bills the outbound (egress) leg.
    target:
        The provider being joined; bills the inbound (ingress) leg —
        zero on books where ingress is free.
    volume_gb:
        Gigabytes shipped (see :func:`migration_volume_gb`).

    Returns
    -------
    tuple of (Money, Money)
        ``(egress_cost, ingress_cost)``.

    Examples
    --------
    Leaving the paper's AWS book with 10 GB (Example 1's tiering —
    first GB free, then $0.12/GB) into a free-ingress book:

    >>> from repro.pricing.providers import aws_2012, flat_cloud
    >>> egress, ingress = migration_transfer_cost(
    ...     aws_2012(), flat_cloud(), 10.0
    ... )
    >>> egress
    Money('1.08')
    >>> ingress
    Money('0')
    """
    if volume_gb < 0:
        raise PricingError(f"volume cannot be negative: {volume_gb}")
    return (
        source.transfer.outbound_cost(volume_gb),
        target.transfer.inbound_cost(volume_gb),
    )


@dataclass(frozen=True)
class MigrationEstimate:
    """One candidate migration's full price tag.

    Produced by the arbitrage policy when it weighs a candidate book
    (see :meth:`repro.simulate.arbitrage.ArbitrageAware`); also usable
    standalone for what-if analysis.

    Attributes
    ----------
    source:
        Name of the book being left.
    target:
        Name of the book being joined.
    volume_gb:
        Gigabytes shipped (dataset + views).
    egress_cost:
        Outbound transfer on the source's schedule.
    ingress_cost:
        Inbound transfer on the target's schedule.
    rebuild_cost:
        Re-materializing every kept view at the target's compute
        rates.
    """

    source: str
    target: str
    volume_gb: float
    egress_cost: Money
    ingress_cost: Money
    rebuild_cost: Money = ZERO

    def __post_init__(self) -> None:
        if self.volume_gb < 0:
            raise PricingError(
                f"migration volume cannot be negative: {self.volume_gb}"
            )

    @property
    def transfer_cost(self) -> Money:
        """Both transfer legs: egress + ingress."""
        return self.egress_cost + self.ingress_cost

    @property
    def total(self) -> Money:
        """Everything the switch costs: transfer legs + view rebuilds."""
        return self.transfer_cost + self.rebuild_cost

    @classmethod
    def between(
        cls,
        source: Provider,
        target: Provider,
        dataset_gb: float,
        view_sizes_gb: Mapping[str, float],
        rebuild_cost: Money = ZERO,
    ) -> "MigrationEstimate":
        """Price a migration between two live provider objects.

        Parameters
        ----------
        source, target:
            The books being left and joined.
        dataset_gb:
            Logical dataset size.
        view_sizes_gb:
            Sizes of the views travelling along, by name.
        rebuild_cost:
            Re-materialization compute on the target (the caller
            prices it — view build hours depend on the deployment,
            which this module deliberately knows nothing about).

        Examples
        --------
        >>> from repro.pricing.providers import aws_2012, flat_cloud
        >>> estimate = MigrationEstimate.between(
        ...     aws_2012(), flat_cloud(), 10.0, {"v_day_country": 2.0}
        ... )
        >>> estimate.volume_gb
        12.0
        >>> estimate.total == estimate.egress_cost + estimate.ingress_cost
        True
        """
        volume = migration_volume_gb(dataset_gb, view_sizes_gb)
        egress, ingress = migration_transfer_cost(source, target, volume)
        return cls(
            source=source.name,
            target=target.name,
            volume_gb=volume,
            egress_cost=egress,
            ingress_cost=ingress,
            rebuild_cost=rebuild_cost,
        )

    def describe(self) -> str:
        """One line: route, volume and the cost split."""
        return (
            f"{self.source} -> {self.target}: {self.volume_gb:.1f} GB, "
            f"egress {self.egress_cost}, ingress {self.ingress_cost}, "
            f"rebuild {self.rebuild_cost} (total {self.total})"
        )
