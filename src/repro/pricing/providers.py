"""Cloud service provider presets.

:func:`aws_2012` transcribes the paper's Tables 2-4 (the early-2012 AWS
price sheet the paper simplifies).  Its tier *semantics* follow the
paper's own worked examples: bandwidth is marginal with a free first GB
(Example 1 prices 10 GB as ``(10-1) x 0.12``) while storage is slab —
the whole volume billed at the band of the total (Example 3 prices
2 560 GB at a flat 0.125).  :func:`aws_2012_marginal` gives the same
sheet under fully-progressive tiers, i.e. how AWS actually metered, for
the tier-semantics ablation.

The paper's first future-work item is "include pricing models from
several CSPs but Amazon"; :func:`flat_cloud` and :func:`archive_cloud`
are two deliberately different price structures (flat per-second
compute / cheap cold storage with expensive egress) used by the
provider-comparison example and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from .compute import BillingGranularity, ComputePricing, InstanceType
from .storage import StoragePricing
from .tiers import TierMode, TierSchedule
from .transfer import TransferPricing
from ..money import dollars
from ..units import GB_PER_TB

__all__ = [
    "Provider",
    "aws_2012",
    "aws_2012_marginal",
    "flat_cloud",
    "archive_cloud",
    "all_providers",
]


@dataclass(frozen=True)
class Provider:
    """A complete price book: compute + storage + transfer.

    Parameters
    ----------
    name:
        Display identifier used in ledgers and deployment summaries.
        Spot-repriced variants append ``~x{multiplier}`` to the base
        name; everything before that suffix is the provider *family*
        (see :func:`repro.simulate.state.provider_family`).
    compute:
        Instance catalogue and billing granularity (the paper's
        Table 2).
    storage:
        Tiered GB-month schedule (Table 4).
    transfer:
        Tiered in/out bandwidth schedules (Table 3).
    """

    name: str
    compute: ComputePricing
    storage: StoragePricing
    transfer: TransferPricing

    def fingerprint(self) -> tuple:
        """Hashable *value* identity of the whole price book.

        Two providers fingerprint equal exactly when every rate, tier
        and billing rule agrees — the name alone is not trusted, so
        ``aws_2012(PER_HOUR)`` and ``aws_2012(PER_SECOND)`` (same name,
        different compute billing) never share cached pricings.

        Returns
        -------
        tuple
            ``(name, compute, storage, transfer)`` fingerprints,
            usable as a cache key.
        """
        return (
            self.name,
            self.compute.fingerprint(),
            self.storage.fingerprint(),
            self.transfer.fingerprint(),
        )


def _aws_compute(granularity: BillingGranularity) -> ComputePricing:
    """The paper's Table 2 (EC2 on-demand, early 2012).

    RAM / ECU / local storage figures are the 2012 catalogue values for
    the named sizes (the paper quotes the small instance's 1.7 GB RAM,
    1 ECU, 160 GB disk in Section 2.2).
    """
    return ComputePricing(
        [
            InstanceType(
                "micro",
                hourly_rate=dollars("0.03"),
                compute_units=0.5,
                memory_gb=0.613,
                local_storage_gb=0,
            ),
            InstanceType(
                "small",
                hourly_rate=dollars("0.12"),
                compute_units=1.0,
                memory_gb=1.7,
                local_storage_gb=160,
            ),
            InstanceType(
                "large",
                hourly_rate=dollars("0.48"),
                compute_units=4.0,
                memory_gb=7.5,
                local_storage_gb=850,
            ),
            InstanceType(
                "xlarge",
                hourly_rate=dollars("0.96"),
                compute_units=8.0,
                memory_gb=15.0,
                local_storage_gb=1690,
            ),
        ],
        granularity,
    )


def _aws_transfer_schedule() -> TierSchedule:
    """The paper's Table 3 (outbound; inbound is free)."""
    return TierSchedule.from_band_widths(
        [
            (1.0, dollars(0)),                    # first 1 GB free
            (10 * GB_PER_TB - 1.0, dollars("0.12")),  # up to 10 TB
            (40 * GB_PER_TB, dollars("0.09")),    # next 40 TB
            (100 * GB_PER_TB, dollars("0.07")),   # next 100 TB
            (None, dollars("0.05")),              # the sheet's trailing "..."
        ],
        TierMode.MARGINAL,
    )


def _aws_storage_schedule(mode: TierMode) -> TierSchedule:
    """The paper's Table 4 (S3 standard, per GB-month)."""
    return TierSchedule.from_band_widths(
        [
            (1 * GB_PER_TB, dollars("0.14")),     # first 1 TB
            (49 * GB_PER_TB, dollars("0.125")),   # next 49 TB
            (450 * GB_PER_TB, dollars("0.11")),   # next 450 TB
            (None, dollars("0.095")),             # the sheet's trailing "..."
        ],
        mode,
    )


def aws_2012(
    granularity: BillingGranularity = BillingGranularity.PER_HOUR,
) -> Provider:
    """The paper's pricing model, with the paper's tier semantics.

    Hourly round-up compute (Example 2), marginal bandwidth with free
    first GB (Example 1), slab storage (Example 3).

    Parameters
    ----------
    granularity:
        Compute billing rounding; the paper's examples round up to
        the hour, the lifecycle simulations bill per second.

    Returns
    -------
    Provider
        The ``aws-2012`` price book (Tables 2–4).
    """
    return Provider(
        name="aws-2012",
        compute=_aws_compute(granularity),
        storage=StoragePricing(_aws_storage_schedule(TierMode.SLAB)),
        transfer=TransferPricing(_aws_transfer_schedule()),
    )


def aws_2012_marginal(
    granularity: BillingGranularity = BillingGranularity.PER_HOUR,
) -> Provider:
    """The same price sheet under fully marginal (progressive) tiers.

    This is how AWS actually metered; the difference against
    :func:`aws_2012` is the subject of the tier-semantics ablation.

    Parameters
    ----------
    granularity:
        Compute billing rounding, as in :func:`aws_2012`.

    Returns
    -------
    Provider
        The ``aws-2012-marginal`` price book.
    """
    return Provider(
        name="aws-2012-marginal",
        compute=_aws_compute(granularity),
        storage=StoragePricing(_aws_storage_schedule(TierMode.MARGINAL)),
        transfer=TransferPricing(_aws_transfer_schedule()),
    )


def flat_cloud() -> Provider:
    """A flat-rate, per-second-billing provider.

    No tiers, no free bands, no round-up: the simplest counterpoint to
    the AWS structure.  Compute is slightly cheaper per ECU, storage
    slightly more expensive per GB-month, so the view-selection
    tradeoff lands differently than on :func:`aws_2012`.

    Returns
    -------
    Provider
        The ``flat-cloud`` price book.
    """
    return Provider(
        name="flat-cloud",
        compute=ComputePricing(
            [
                InstanceType("small", dollars("0.10"), 1.0, 2.0, 100),
                InstanceType("large", dollars("0.40"), 4.0, 8.0, 400),
            ],
            BillingGranularity.PER_SECOND,
        ),
        storage=StoragePricing(TierSchedule.flat(dollars("0.15"))),
        transfer=TransferPricing(TierSchedule.flat(dollars("0.10"))),
    )


def archive_cloud() -> Provider:
    """A cold-storage-flavoured provider: cheap GB-months, dear egress.

    Storage this cheap makes materializing *every* candidate view
    attractive; egress this dear makes large query results dominate the
    bill.  Exercises the opposite corner of the cost space from
    :func:`flat_cloud` — and, for migration policies, the corner where
    *leaving* is expensive: a warehouse that moves in pays the dear
    egress on the way out.

    Returns
    -------
    Provider
        The ``archive-cloud`` price book.
    """
    return Provider(
        name="archive-cloud",
        compute=ComputePricing(
            [
                InstanceType("small", dollars("0.14"), 1.0, 1.7, 160),
                InstanceType("large", dollars("0.56"), 4.0, 7.5, 850),
            ],
            BillingGranularity.PER_MINUTE,
        ),
        storage=StoragePricing(
            TierSchedule.from_band_widths(
                [
                    (10 * GB_PER_TB, dollars("0.04")),
                    (None, dollars("0.03")),
                ],
                TierMode.MARGINAL,
            )
        ),
        transfer=TransferPricing(
            TierSchedule.from_band_widths(
                [
                    (1.0, dollars(0)),
                    (None, dollars("0.25")),
                ],
                TierMode.MARGINAL,
            )
        ),
    )


def all_providers() -> "list[Provider]":
    """Every built-in provider preset (for comparison sweeps).

    Returns
    -------
    list of Provider
        ``aws-2012``, ``aws-2012-marginal``, ``flat-cloud`` and
        ``archive-cloud``, in that order.
    """
    return [aws_2012(), aws_2012_marginal(), flat_cloud(), archive_cloud()]
