"""Compute-instance pricing (the paper's Table 2, EC2-like).

The paper charges computing per instance-hour, with "every started hour
... charged" (Example 2's ``RoundUp``).  Real providers later moved to
per-minute and per-second billing; the granularity is modelled
explicitly because the experiments include an ablation on it — hourly
round-up makes small workloads look artificially expensive and changes
which views are worth materializing.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from ..errors import PricingError
from ..money import Money, ZERO

__all__ = ["InstanceType", "BillingGranularity", "ComputePricing"]


@dataclass(frozen=True)
class InstanceType:
    """One rentable instance configuration.

    ``compute_units`` is the relative CPU power (EC2 Compute Units in
    the 2012 AWS catalogue); the engine's timing model scales scan
    throughput by it, which is how "scale-up" enters the
    scalability-vs-views tradeoff the paper's introduction poses.
    """

    name: str
    hourly_rate: Money
    compute_units: float
    memory_gb: float
    local_storage_gb: float

    def __post_init__(self) -> None:
        if self.hourly_rate < ZERO:
            raise PricingError(
                f"instance {self.name!r}: hourly rate cannot be negative"
            )
        if self.compute_units <= 0:
            raise PricingError(
                f"instance {self.name!r}: compute units must be positive"
            )
        if self.memory_gb <= 0 or self.local_storage_gb < 0:
            raise PricingError(
                f"instance {self.name!r}: invalid memory/storage sizes"
            )


class BillingGranularity(enum.Enum):
    """How partial usage is rounded before billing."""

    #: Every started hour is charged (the paper's Example 2).
    PER_HOUR = "per-hour"
    #: Every started minute is charged.
    PER_MINUTE = "per-minute"
    #: Usage billed exactly (the limit of per-second billing).
    PER_SECOND = "per-second"

    def billable_hours(self, hours: float) -> float:
        """Round ``hours`` of usage up to this granularity."""
        if hours < 0:
            raise PricingError(f"usage cannot be negative: {hours}")
        if hours == 0:
            return 0.0
        if self is BillingGranularity.PER_HOUR:
            return float(math.ceil(hours))
        if self is BillingGranularity.PER_MINUTE:
            return math.ceil(hours * 60.0) / 60.0
        return hours


class ComputePricing:
    """A provider's compute price list plus billing rules.

    Examples
    --------
    The paper's Example 2 — 50 hours on two small instances:

    >>> from repro.pricing.providers import aws_2012
    >>> pricing = aws_2012().compute
    >>> pricing.cost("small", hours=50, n_instances=2)
    Money('12.00')
    """

    def __init__(
        self,
        instance_types: Iterable[InstanceType],
        granularity: BillingGranularity = BillingGranularity.PER_HOUR,
    ) -> None:
        self._types: Dict[str, InstanceType] = {}
        for itype in instance_types:
            if itype.name in self._types:
                raise PricingError(f"duplicate instance type {itype.name!r}")
            self._types[itype.name] = itype
        if not self._types:
            raise PricingError("a compute price list needs at least one type")
        self._granularity = granularity

    @property
    def granularity(self) -> BillingGranularity:
        """The rounding rule applied to usage durations."""
        return self._granularity

    @property
    def instance_types(self) -> Mapping[str, InstanceType]:
        """All known instance types, by name."""
        return dict(self._types)

    def with_granularity(self, granularity: BillingGranularity) -> "ComputePricing":
        """A copy of this price list under a different billing rule."""
        return ComputePricing(self._types.values(), granularity)

    def fingerprint(self) -> tuple:
        """Hashable value identity: equal fingerprints bill identically."""
        return (
            self._granularity.value,
            tuple(self._types[name] for name in sorted(self._types)),
        )

    def instance(self, name: str) -> InstanceType:
        """Look up an instance type, raising ``PricingError`` if unknown."""
        try:
            return self._types[name]
        except KeyError:
            known = ", ".join(sorted(self._types))
            raise PricingError(
                f"unknown instance type {name!r}; known types: {known}"
            ) from None

    def billable_hours(self, hours: float) -> float:
        """Usage duration after granularity round-up."""
        return self._granularity.billable_hours(hours)

    def cost(
        self,
        instance: str,
        hours: float,
        n_instances: int = 1,
        granularity: Optional[BillingGranularity] = None,
    ) -> Money:
        """Cost of running ``n_instances`` of ``instance`` for ``hours``.

        Each instance's usage is rounded up independently, matching
        how per-instance metering works: Formula 4's
        ``t_ij x c(IC_j)`` with the paper's ``RoundUp`` applied per
        instance.
        """
        if n_instances < 0:
            raise PricingError(f"instance count cannot be negative: {n_instances}")
        itype = self.instance(instance)
        rounding = granularity if granularity is not None else self._granularity
        return itype.hourly_rate * rounding.billable_hours(hours) * n_instances
