"""``python -m repro`` — the command-line entry point.

Delegates to :func:`repro.cli.main`, so ``python -m repro simulate``
and the installed ``repro-experiments`` script behave identically.
"""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
