"""repro — Cost Models for View Materialization in the Cloud.

A from-scratch reproduction of Nguyen, D'Orazio, Bimonte & Darmont,
"Cost Models for View Materialization in the Cloud" (EDBT/ICDT DanaC
workshop, 2012): monetary cost models for cloud data management
(transfer + computing + storage), their extension to materialized
views, and the three view-selection scenarios MV1 (budget limit),
MV2 (response-time limit) and MV3 (time/cost tradeoff) solved as 0/1
knapsack problems.

Quick tour (see ``examples/quickstart.py`` for the runnable version)::

    from repro import (
        ExperimentContext, mv1, select_views,
    )

    context = ExperimentContext()          # the paper's Section 6 world
    problem = context.problem(10)          # 10-query workload
    result = select_views(problem, mv1(context.paper_budget(10)))
    print(result.describe())

Package map:

* :mod:`repro.pricing` — tiered cloud price books (the paper's Tables 2-4)
* :mod:`repro.schema` / :mod:`repro.data` — star schemas + synthetic data
* :mod:`repro.engine` — roll-up execution and the cluster timing model
* :mod:`repro.cube` — the cuboid lattice, candidates, HRU baseline
* :mod:`repro.costmodel` — Formulas 1-12
* :mod:`repro.optimizer` — MV1/MV2/MV3, knapsack/greedy/exhaustive
* :mod:`repro.experiments` — Figure 5, Tables 6-8, ablations, SSB
* :mod:`repro.simulate` — warehouse lifecycle simulation: epochs,
  drift events, incremental re-selection policies, cost ledgers;
  multi-tenant fleets with shared-cost attribution and fairness-aware
  selection; stochastic drift generators and Monte Carlo policy
  evaluation over sampled futures

``docs/ARCHITECTURE.md`` maps the packages to the paper's sections;
``docs/SIMULATE.md`` documents the lifecycle and multi-tenant layers.
"""

from .costmodel import (
    CloudCostModel,
    CostBreakdown,
    DeploymentSpec,
    MaintenancePolicy,
    PlanningEstimator,
    PlanningInputs,
    StorageTimeline,
    WorkloadPlan,
)
from .cube import (
    BuildPlan,
    CandidateView,
    CuboidLattice,
    ViewStats,
    candidates_from_workload,
    enumerate_candidates,
    hru_select,
    plan_builds,
)
from .data import Dataset, GrainTable, generate_sales, generate_ssb
from .engine import ClusterTimingModel, Executor, paper_cluster
from .errors import (
    CostModelError,
    InfeasibleProblemError,
    OptimizationError,
    PricingError,
    ReproError,
    SchemaError,
)
from .experiments import ExperimentConfig, ExperimentContext
from .money import Money, dollars
from .optimizer import (
    BudgetLimit,
    ElasticChoice,
    EvaluationStats,
    SelectionProblem,
    SelectionResult,
    SubsetEvaluationCache,
    TimeLimit,
    Tradeoff,
    elastic_select,
    frontier_outcomes,
    mv1,
    mv2,
    mv3,
    scale_out_only,
    select_views,
)
from .pricing import (
    BillingGranularity,
    Provider,
    TierMode,
    TierSchedule,
    aws_2012,
    aws_2012_marginal,
    flat_cloud,
)
from .schema import ALL, StarSchema, sales_schema, ssb_schema
from .simulate import (
    EventTimeline,
    LifecycleSimulator,
    MonteCarloConfig,
    PolicySpec,
    SimulationClock,
    SimulationLedger,
    WarehouseState,
    drifting_sales_simulator,
    make_policy,
    run_monte_carlo,
    stochastic_sales_simulator,
)
from .workload import AggregateQuery, DimensionFilter, Workload, paper_sales_workload

__version__ = "1.0.0"

__all__ = [
    "ALL",
    "AggregateQuery",
    "BillingGranularity",
    "BudgetLimit",
    "BuildPlan",
    "CandidateView",
    "ElasticChoice",
    "MaintenancePolicy",
    "elastic_select",
    "plan_builds",
    "scale_out_only",
    "CloudCostModel",
    "ClusterTimingModel",
    "CostBreakdown",
    "CostModelError",
    "CuboidLattice",
    "Dataset",
    "DeploymentSpec",
    "DimensionFilter",
    "EvaluationStats",
    "EventTimeline",
    "ExperimentConfig",
    "ExperimentContext",
    "Executor",
    "GrainTable",
    "InfeasibleProblemError",
    "LifecycleSimulator",
    "MonteCarloConfig",
    "Money",
    "OptimizationError",
    "PlanningEstimator",
    "PlanningInputs",
    "PricingError",
    "Provider",
    "ReproError",
    "SchemaError",
    "SelectionProblem",
    "SelectionResult",
    "PolicySpec",
    "SimulationClock",
    "SimulationLedger",
    "StarSchema",
    "StorageTimeline",
    "SubsetEvaluationCache",
    "TierMode",
    "TierSchedule",
    "TimeLimit",
    "Tradeoff",
    "ViewStats",
    "WarehouseState",
    "Workload",
    "WorkloadPlan",
    "aws_2012",
    "aws_2012_marginal",
    "candidates_from_workload",
    "dollars",
    "drifting_sales_simulator",
    "stochastic_sales_simulator",
    "enumerate_candidates",
    "flat_cloud",
    "frontier_outcomes",
    "generate_sales",
    "generate_ssb",
    "hru_select",
    "make_policy",
    "run_monte_carlo",
    "mv1",
    "mv2",
    "mv3",
    "paper_cluster",
    "paper_sales_workload",
    "sales_schema",
    "select_views",
    "ssb_schema",
    "__version__",
]
