"""The cuboid lattice: every grain of a star schema, partially ordered.

Harinarayan, Rajaraman and Ullman's data-cube lattice is the standard
search space for view selection: nodes are grains (one level or ALL per
dimension), and grain ``u`` precedes grain ``v`` when ``u`` can answer
``v`` (finer-or-equal on every dimension).  The paper takes its
candidate views from "an existing materialized view selection method";
this lattice is the generator of those candidates and the answerability
oracle the optimizer consults.

The DAG is held in :mod:`networkx` with *immediate* edges only (one
dimension, one level step), so transitive answerability is reachability
— and is also answerable in O(dims) directly from level indexes, which
is what :meth:`CuboidLattice.answers` does.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import networkx as nx

from ..errors import SchemaError
from ..schema.hierarchy import ALL
from ..schema.star import Grain, StarSchema

__all__ = ["CuboidLattice"]


class CuboidLattice:
    """All grains of a schema with the answerability partial order."""

    def __init__(self, schema: StarSchema) -> None:
        self._schema = schema
        self._cuboids: Tuple[Grain, ...] = tuple(self._enumerate_grains())
        self._graph = self._build_graph()

    def _enumerate_grains(self) -> Iterator[Grain]:
        grains: List[Tuple[str, ...]] = [()]
        for dim in self._schema.dimensions:
            grains = [
                g + (level,)
                for g in grains
                for level in dim.hierarchy.levels_with_all
            ]
        return iter(tuple(g) for g in grains)

    def _build_graph(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        graph.add_nodes_from(self._cuboids)
        for grain in self._cuboids:
            for child in self._immediate_children(grain):
                graph.add_edge(grain, child)
        return graph

    def _immediate_children(self, grain: Grain) -> Iterator[Grain]:
        """Grains one roll-up step coarser (per dimension)."""
        for i, (dim, level) in enumerate(zip(self._schema.dimensions, grain)):
            if level == ALL:
                continue
            levels = dim.hierarchy.levels_with_all
            coarser = levels[dim.hierarchy.index_of(level) + 1]
            yield grain[:i] + (coarser,) + grain[i + 1 :]

    # -- structure ----------------------------------------------------

    @property
    def schema(self) -> StarSchema:
        """The schema this lattice spans."""
        return self._schema

    @property
    def cuboids(self) -> Sequence[Grain]:
        """Every grain, in deterministic enumeration order."""
        return self._cuboids

    @property
    def graph(self) -> "nx.DiGraph":
        """The immediate roll-up DAG (finer -> coarser edges)."""
        return self._graph

    @property
    def base(self) -> Grain:
        """The finest grain (the fact table itself)."""
        return self._schema.base_grain

    @property
    def apex(self) -> Grain:
        """The coarsest grain (the single global total)."""
        return self._schema.apex_grain

    def __len__(self) -> int:
        return len(self._cuboids)

    def __contains__(self, grain: object) -> bool:
        return grain in self._graph

    # -- the partial order --------------------------------------------

    def answers(self, source: Sequence[str], target: Sequence[str]) -> bool:
        """True iff a view at ``source`` can compute ``target``."""
        return self._schema.grain_answers(source, target)

    def answerable_by(self, source: Sequence[str]) -> List[Grain]:
        """Every grain a view at ``source`` can answer (including itself)."""
        source = self._schema.validate_grain(source)
        return [g for g in self._cuboids if self.answers(source, g)]

    def answer_sources(self, target: Sequence[str]) -> List[Grain]:
        """Every grain that can answer ``target`` (including itself)."""
        target = self._schema.validate_grain(target)
        return [g for g in self._cuboids if self.answers(g, target)]

    def roll_up_path_exists(self, source: Sequence[str], target: Sequence[str]) -> bool:
        """Graph-reachability check; must agree with :meth:`answers`.

        Kept public because tests use it to cross-validate the direct
        level-index comparison against the DAG.
        """
        source = self._schema.validate_grain(source)
        target = self._schema.validate_grain(target)
        if source == target:
            return True
        return nx.has_path(self._graph, source, target)

    def topological_order(self) -> List[Grain]:
        """Grains finest-first (a linear extension of the order)."""
        return list(nx.topological_sort(self._graph))

    def describe(self, grain: Sequence[str]) -> str:
        """Short display form: '(month, country)' / '(month, *)'."""
        grain = self._schema.validate_grain(grain)
        parts = [lv if lv != ALL else "*" for lv in grain]
        return "(" + ", ".join(parts) + ")"

    def grain_by_name(self, text: str) -> Grain:
        """Parse the :meth:`describe` form back into a grain."""
        body = text.strip()
        if not (body.startswith("(") and body.endswith(")")):
            raise SchemaError(f"not a grain literal: {text!r}")
        parts = [p.strip() for p in body[1:-1].split(",")]
        grain = tuple(ALL if p == "*" else p for p in parts)
        return self._schema.validate_grain(grain)
