"""Generated lattices far beyond paper scale (ROADMAP 2).

The paper's experiments select from a handful of cuboids over a 10 GB
sales dataset.  The search optimizers in
:mod:`repro.optimizer.search` exist for the regime the classic trio
cannot reach: *thousands* of candidate views over a wider schema.
This module manufactures that regime deterministically —
:func:`generate_lattice_inputs` builds a star schema whose dimension
hierarchies multiply out to at least ``n_views`` distinct grains,
enumerates candidate views over them, draws a seeded workload whose
queries are answerable by those views, and prices everything through
the analytic :class:`~repro.costmodel.PlanningEstimator` (no physical
rows are generated; a :class:`~repro.data.sizing.LogicalSizeModel`
scale factor stands in for the billable gigabytes, exactly as the
paper-scale experiments do).

Both ``tests/optimizer/test_search.py`` and
``benchmarks/bench_search.py`` build their worlds here, so the
acceptance lattice the tests assert on is byte-identical to the one
the benchmarks time.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

from ..data.sizing import LogicalSizeModel
from ..errors import DataGenerationError
from ..pricing.providers import aws_2012
from ..schema.hierarchy import Dimension, Hierarchy
from ..schema.star import Measure, StarSchema
from ..workload.query import AggregateQuery
from ..workload.workload import Workload
from .views import CandidateView

if TYPE_CHECKING:  # costmodel imports cube; break the cycle at runtime
    from ..costmodel import DeploymentSpec
    from ..costmodel.estimator import PlanningInputs

__all__ = ["GeneratedLattice", "generate_lattice_inputs"]


class _FactStub:
    """Just enough fact table for the analytic estimator: a row count."""

    def __init__(self, n_rows: int) -> None:
        self.n_rows = n_rows


class _DatasetStub:
    """Duck-typed stand-in for :class:`repro.data.Dataset` (analytic mode)."""

    def __init__(
        self, schema: StarSchema, n_rows: int, size_model: LogicalSizeModel
    ) -> None:
        self.schema = schema
        self.fact = _FactStub(n_rows)
        self.size_model = size_model

    @property
    def logical_size_gb(self) -> float:
        return self.size_model.rows_to_gb(self.schema.base_grain, self.fact.n_rows)


@dataclass(frozen=True)
class GeneratedLattice:
    """One generated lattice world and its derived planning inputs."""

    seed: int
    schema: StarSchema
    workload: Workload
    candidates: Tuple[CandidateView, ...]
    deployment: "DeploymentSpec"
    inputs: "PlanningInputs"


def _wide_schema(rng: random.Random, n_views: int) -> StarSchema:
    """A star schema whose grain lattice holds > ``n_views`` cuboids.

    Dimensions are appended (three levels each, so four grain choices
    counting ``ALL``) until the product of per-dimension choices
    clears ``n_views`` plus the base grain.
    """
    dims = []
    choices = 1
    d = 0
    while choices <= n_views:
        n_levels = 3
        levels = [f"d{d}l{i}" for i in range(n_levels)]
        cards = {}
        card = rng.choice([365, 1_000, 10_000, 50_000])
        for level in levels:
            cards[level] = card
            card = max(1, card // rng.choice([4, 10, 25]))
        dims.append(Dimension(f"dim{d}", Hierarchy(f"dim{d}", levels), cards))
        choices *= n_levels + 1
        d += 1
    measures = [Measure("m0"), Measure("m1")]
    return StarSchema("lattice", dims, measures)


def _all_grains(schema: StarSchema) -> List[Tuple[str, ...]]:
    """Every cuboid grain in the lattice, base grain excluded."""
    per_dim = [list(dim.hierarchy.levels_with_all) for dim in schema.dimensions]
    base = schema.base_grain
    return [
        schema.validate_grain(grain)
        for grain in itertools.product(*per_dim)
        if tuple(grain) != tuple(base)
    ]


def generate_lattice_inputs(
    n_views: int = 1_000,
    n_queries: int = 24,
    seed: int = 0,
    target_gb: float = 100.0,
    n_instances: int = 5,
) -> GeneratedLattice:
    """A seeded planning problem with ``n_views`` candidate views.

    Parameters
    ----------
    n_views:
        Candidate views to enumerate (each a distinct cuboid grain).
    n_queries:
        Workload queries, drawn over the candidate grains so every
        query can be answered by at least one materialized view.
    seed:
        Drives every random draw; the same seed reproduces the same
        world byte for byte.
    target_gb:
        Logical dataset size the scale model bills.  The paper runs
        at 10 GB; the default is 10x that, and benchmarks push 100x.
    n_instances:
        Cluster width for the deployment (the paper's experiments use
        five instances).
    """
    from ..costmodel import DeploymentSpec, PlanningEstimator

    if n_views < 1:
        raise DataGenerationError(f"n_views must be >= 1, got {n_views}")
    if n_queries < 1:
        raise DataGenerationError(f"n_queries must be >= 1, got {n_queries}")
    rng = random.Random(seed)
    schema = _wide_schema(rng, n_views)
    grains = _all_grains(schema)
    rng.shuffle(grains)
    grains = grains[:n_views]
    candidates = tuple(
        CandidateView(f"V{i + 1}", grain) for i, grain in enumerate(grains)
    )
    queries = []
    for i in range(n_queries):
        grain = rng.choice(grains)
        # Frequencies span the magnitudes the pricing path branches
        # on: occasional reports up to hot dashboard queries.
        frequency = rng.choice([0.5, 1.0, 2.0, 8.0, 30.0, 120.0])
        queries.append(AggregateQuery(f"Q{i + 1}", grain, frequency, ()))
    workload = Workload(schema, queries)
    deployment = DeploymentSpec(
        provider=aws_2012(),
        instance_type="xlarge",
        n_instances=n_instances,
        storage_months=1.0,
        maintenance_cycles=30,
        update_fraction_per_cycle=0.002,
        runs_per_period=30.0,
    )
    n_rows = 200_000
    size_model = LogicalSizeModel.for_target_size(schema, n_rows, target_gb)
    dataset = _DatasetStub(schema, n_rows, size_model)
    estimator = PlanningEstimator(dataset, deployment, mode="analytic")
    inputs = estimator.build(workload, candidates)
    return GeneratedLattice(
        seed=seed,
        schema=schema,
        workload=workload,
        candidates=candidates,
        deployment=deployment,
        inputs=inputs,
    )
