"""Candidate views and their planning statistics.

A :class:`CandidateView` is a grain proposed for materialization; a
:class:`ViewStats` carries everything the cost models need to price it:
logical size (drives Formula 5's storage term), materialization time
(Formulas 7-8), and per-cycle maintenance time (Formulas 11-12).
Statistics are *estimates produced by the planning estimator*, kept
separate from the view identity so the same candidate can be priced
under different deployments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CostModelError
from ..schema.star import Grain

__all__ = ["CandidateView", "ViewStats"]


@dataclass(frozen=True)
class CandidateView:
    """A view proposed for materialization, identified by its grain."""

    name: str
    grain: Grain

    def __post_init__(self) -> None:
        if not self.name:
            raise CostModelError("a candidate view needs a non-empty name")


@dataclass(frozen=True)
class ViewStats:
    """Planning statistics for one candidate view.

    ``maintenance_hours_per_cycle`` is the paper's
    ``t_maintenance(V_k)`` for one refresh; the deployment spec says
    how many cycles a billing period contains (the running example's
    5 h is a month of cycles, not a single refresh).
    """

    view: CandidateView
    rows: float
    size_gb: float
    materialization_hours: float
    maintenance_hours_per_cycle: float

    def __post_init__(self) -> None:
        if self.rows < 0 or self.size_gb < 0:
            raise CostModelError(
                f"view {self.view.name!r}: size cannot be negative"
            )
        if self.materialization_hours < 0 or self.maintenance_hours_per_cycle < 0:
            raise CostModelError(
                f"view {self.view.name!r}: times cannot be negative"
            )
