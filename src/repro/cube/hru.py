"""The HRU greedy view-selection baseline.

Harinarayan, Rajaraman & Ullman's greedy algorithm ("Implementing data
cubes efficiently", SIGMOD 1996) is the classical, *price-blind*
selector the paper's cloud-aware optimizer should be compared against:
it maximizes query-cost benefit under the linear cost model (answering
a query costs the row count of the smallest materialized view that
answers it) subject to a count or space budget — monetary cost never
appears.

The ablation experiment runs HRU and the paper's knapsack on the same
inputs and prices both outcomes, showing where ignoring the bill hurts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .lattice import CuboidLattice
from .views import CandidateView
from ..errors import OptimizationError
from ..workload.workload import Workload

__all__ = ["HruSelection", "hru_select"]


@dataclass(frozen=True)
class HruSelection:
    """Result of the HRU greedy run."""

    selected: Tuple[CandidateView, ...]
    #: Sum over queries of the rows scanned to answer them, after selection.
    final_query_cost: float
    #: Benefit of each pick at the time it was made (diagnostic).
    pick_benefits: Tuple[float, ...]


def _query_costs(
    lattice: CuboidLattice,
    workload: Workload,
    base_rows: float,
    view_rows: Mapping[str, float],
    selected: Sequence[CandidateView],
) -> Dict[str, float]:
    """Per-query linear cost: rows of the cheapest answering source."""
    costs: Dict[str, float] = {}
    for query in workload:
        best = base_rows
        for view in selected:
            if lattice.answers(view.grain, query.grain):
                best = min(best, view_rows[view.name])
        costs[query.name] = best
    return costs


def hru_select(
    lattice: CuboidLattice,
    workload: Workload,
    candidates: Sequence[CandidateView],
    view_rows: Mapping[str, float],
    base_rows: float,
    k: Optional[int] = None,
    space_budget_rows: Optional[float] = None,
) -> HruSelection:
    """Greedy benefit-maximizing selection under the linear cost model.

    Parameters
    ----------
    view_rows:
        Estimated row count of each candidate, by name.
    base_rows:
        Row count of the fact table (the fallback answer source).
    k:
        Maximum number of views to pick (HRU's original budget).
    space_budget_rows:
        Alternative budget: total selected rows must stay under this.

    At least one budget must be given; both may be.
    """
    if k is None and space_budget_rows is None:
        raise OptimizationError("hru_select needs k and/or space_budget_rows")
    if k is not None and k < 0:
        raise OptimizationError(f"k cannot be negative: {k}")
    missing = [v.name for v in candidates if v.name not in view_rows]
    if missing:
        raise OptimizationError(f"missing row estimates for: {missing}")

    selected: List[CandidateView] = []
    benefits: List[float] = []
    used_rows = 0.0
    remaining = list(candidates)

    while remaining and (k is None or len(selected) < k):
        current = _query_costs(lattice, workload, base_rows, view_rows, selected)
        best_view = None
        best_benefit = 0.0
        for view in remaining:
            if (
                space_budget_rows is not None
                and used_rows + view_rows[view.name] > space_budget_rows
            ):
                continue
            benefit = sum(
                max(0.0, current[q.name] - view_rows[view.name])
                for q in workload
                if lattice.answers(view.grain, q.grain)
            )
            if benefit > best_benefit:
                best_benefit = benefit
                best_view = view
        if best_view is None:
            break
        selected.append(best_view)
        benefits.append(best_benefit)
        used_rows += view_rows[best_view.name]
        remaining.remove(best_view)

    final = _query_costs(lattice, workload, base_rows, view_rows, selected)
    return HruSelection(
        selected=tuple(selected),
        final_query_cost=sum(final.values()),
        pick_benefits=tuple(benefits),
    )
