"""Data-cube lattice, candidate views, and the HRU baseline selector."""

from .build_plan import BuildPlan, BuildStep, plan_builds
from .candidates import (
    candidates_from_grains,
    candidates_from_workload,
    enumerate_candidates,
)
from .generate import GeneratedLattice, generate_lattice_inputs
from .hru import HruSelection, hru_select
from .lattice import CuboidLattice
from .views import CandidateView, ViewStats

__all__ = [
    "BuildPlan",
    "BuildStep",
    "CandidateView",
    "CuboidLattice",
    "GeneratedLattice",
    "HruSelection",
    "ViewStats",
    "plan_builds",
    "candidates_from_grains",
    "candidates_from_workload",
    "enumerate_candidates",
    "generate_lattice_inputs",
    "hru_select",
]
