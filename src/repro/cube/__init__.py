"""Data-cube lattice, candidate views, and the HRU baseline selector."""

from .build_plan import BuildPlan, BuildStep, plan_builds
from .candidates import (
    candidates_from_grains,
    candidates_from_workload,
    enumerate_candidates,
)
from .hru import HruSelection, hru_select
from .lattice import CuboidLattice
from .views import CandidateView, ViewStats

__all__ = [
    "BuildPlan",
    "BuildStep",
    "CandidateView",
    "CuboidLattice",
    "HruSelection",
    "ViewStats",
    "plan_builds",
    "candidates_from_grains",
    "candidates_from_workload",
    "enumerate_candidates",
    "hru_select",
]
