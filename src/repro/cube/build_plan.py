"""Cascaded materialization plans.

The paper charges every selected view a full scan of the base dataset
(its Formula 7 sums independent materialization times).  Real
warehouses pipeline the build instead: compute the finest selected
view from the base table, then derive each coarser view from the
smallest already-built view that answers it — the classic trick from
Harinarayan et al.'s cube construction.  On a lattice where selected
views nest, this collapses k base scans into one base scan plus k-1
small scans.

:func:`plan_builds` computes that schedule for any selected subset;
the planning estimator uses it when the deployment sets
``cascade_materialization=True``, making materialization cost
subset-dependent (and strictly no worse than the paper's independent
charging — asserted by a property test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from .views import ViewStats
from ..errors import CostModelError
from ..schema.star import StarSchema

__all__ = ["BuildStep", "BuildPlan", "plan_builds"]

#: Signature of the deployment's job-time oracle: (input_gb, groups_out) -> hours.
JobHours = Callable[[float, float], float]


@dataclass(frozen=True)
class BuildStep:
    """One view build: where it reads from and what it costs."""

    view_name: str
    #: Name of the source view, or ``None`` when built from the base table.
    source_name: Optional[str]
    input_gb: float
    hours: float


@dataclass(frozen=True)
class BuildPlan:
    """An ordered, dependency-respecting materialization schedule."""

    steps: Tuple[BuildStep, ...]

    @property
    def total_hours(self) -> float:
        """Total materialization time (the cascaded Formula 7)."""
        return sum(step.hours for step in self.steps)

    def hours_for(self, view_name: str) -> float:
        """The build time charged to one view."""
        for step in self.steps:
            if step.view_name == view_name:
                return step.hours
        raise CostModelError(f"no build step for view {view_name!r}")

    @property
    def base_scans(self) -> int:
        """How many steps read the base table (1 is the ideal)."""
        return sum(1 for step in self.steps if step.source_name is None)


def plan_builds(
    schema: StarSchema,
    stats: Sequence[ViewStats],
    dataset_gb: float,
    job_hours: JobHours,
    write_factor: float = 1.0,
) -> BuildPlan:
    """Schedule the views in ``stats``, cascading where possible.

    Views are built finest-first (descending row count is a linear
    extension of the lattice order restricted to the subset: an
    answering ancestor never has fewer rows).  Each view reads from the
    smallest already-built ancestor, falling back to the base table.
    """
    if dataset_gb < 0:
        raise CostModelError("dataset size cannot be negative")
    if write_factor < 1.0:
        raise CostModelError("write factor cannot be below 1")

    ordered = sorted(stats, key=lambda s: (-s.rows, s.view.name))
    built: list = []  # ViewStats already scheduled
    steps = []
    for view_stats in ordered:
        source: Optional[ViewStats] = None
        for candidate in built:
            if not schema.grain_answers(
                candidate.view.grain, view_stats.view.grain
            ):
                continue
            if source is None or candidate.size_gb < source.size_gb:
                source = candidate
        input_gb = source.size_gb if source is not None else dataset_gb
        hours = job_hours(input_gb, view_stats.rows) * write_factor
        steps.append(
            BuildStep(
                view_name=view_stats.view.name,
                source_name=source.view.name if source is not None else None,
                input_gb=input_gb,
                hours=hours,
            )
        )
        built.append(view_stats)
    return BuildPlan(steps=tuple(steps))
