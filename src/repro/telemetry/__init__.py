"""``repro.telemetry`` — zero-dependency in-process observability.

Metrics (counters / high-water gauges / Decimal-exact histograms),
lightweight span tracing, and deterministic cross-process merging, all
behind an ambient handle that defaults to a no-op singleton.  See
``docs/TELEMETRY.md`` for the metric catalog and quickstart, and the
submodule docstrings for the determinism contracts.
"""

from .core import NULL, NullTelemetry, Telemetry, activate, current, install
from .exporters import prometheus_text, summary_table, trace_lines, write_trace
from .registry import HistogramStats, MetricsRegistry, SpanStats, TelemetryError

__all__ = [
    "NULL",
    "NullTelemetry",
    "Telemetry",
    "activate",
    "current",
    "install",
    "prometheus_text",
    "summary_table",
    "trace_lines",
    "write_trace",
    "HistogramStats",
    "MetricsRegistry",
    "SpanStats",
    "TelemetryError",
]
