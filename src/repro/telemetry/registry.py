"""The metrics registry: counters, gauges, histograms, span statistics.

A :class:`MetricsRegistry` is a plain in-process store with four metric
families, chosen so that everything the lifecycle stack emits can be
merged across worker processes *deterministically*:

* **counters** — monotone sums (``inc``).  Merging adds.
* **gauges** — high-water marks (``gauge_max``).  A gauge records the
  largest value ever set (queue depth, fleet size); merging takes the
  max.  Last-write-wins gauges are deliberately absent: the last
  writer depends on scheduling, and this registry must merge to the
  same bytes whatever the worker count.
* **histograms** — ``count`` / ``sum`` / ``min`` / ``max`` summaries
  whose running sum is an exact :class:`decimal.Decimal`.
  :class:`~repro.money.Money` observations enter at their full decimal
  amount, so a histogram of epoch costs sums to the ledger total to
  the last digit (the "Decimal-safe sums" the tests pin down); floats
  are converted via ``repr`` so the decimal the caller printed is the
  decimal that is summed.
* **span statistics** — per-span-name call counts and total wall-clock
  seconds, fed by :meth:`~repro.telemetry.core.Telemetry.span`.  The
  *count* is deterministic (the code path either ran or did not); the
  *seconds* are wall clock and therefore excluded from the
  deterministic exporter (:func:`~repro.telemetry.exporters.
  prometheus_text`) — they surface in the human summary table and the
  trace file instead.

Metric names are dotted (``cache.hits``, ``builds.latency_months``);
the leading segment names the subsystem, which is how the coverage
tests count subsystems.  Labels are passed as keyword arguments and
stored sorted, so ``inc("x", a="1", b="2")`` and ``inc("x", b="2",
a="1")`` hit the same series.

:meth:`MetricsRegistry.snapshot` returns a plain picklable dict and
:meth:`MetricsRegistry.merge` folds one in; merging the same snapshots
in the same order produces byte-identical exports, which is the
property the Monte Carlo harness's ``--jobs`` invariance rests on.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Dict, Tuple, Union

from ..errors import ReproError
from ..money import Money

__all__ = ["HistogramStats", "MetricKey", "MetricsRegistry", "SpanStats"]

#: One metric series: the dotted name plus its sorted label pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

_Observable = Union[int, float, Decimal, Money]


class TelemetryError(ReproError):
    """Raised on telemetry misuse (bad names, unmergeable snapshots)."""


def _key(name: str, labels: Dict[str, str]) -> MetricKey:
    if not name:
        raise TelemetryError("a metric needs a non-empty name")
    if not labels:
        return (name, ())
    return (
        name,
        tuple(sorted((k, str(v)) for k, v in labels.items())),
    )


def _to_decimal(value: _Observable) -> Decimal:
    """The exact decimal an observation contributes to a histogram sum."""
    if isinstance(value, Money):
        return value.amount
    if isinstance(value, Decimal):
        return value
    if isinstance(value, float):
        # repr is the shortest round-trip form: the decimal the caller
        # would print is the decimal that is summed.
        return Decimal(repr(value))
    return Decimal(value)


class HistogramStats:
    """Running count / exact-decimal sum / min / max of one series."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = Decimal(0)
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: _Observable) -> None:
        """Fold one observation in."""
        self.count += 1
        self.total += _to_decimal(value)
        as_float = value.to_float() if isinstance(value, Money) else float(value)
        if as_float < self.minimum:
            self.minimum = as_float
        if as_float > self.maximum:
            self.maximum = as_float

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return float(self.total) / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Picklable snapshot form (``total`` serialized as ``str``)."""
        return {
            "count": self.count,
            "total": str(self.total),
            "min": self.minimum,
            "max": self.maximum,
        }


class SpanStats:
    """Call count, total, and min/max wall-clock seconds of one span name."""

    __slots__ = ("count", "seconds", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.seconds = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def record(self, seconds: float) -> None:
        """Fold one completed span in.

        Args:
            seconds: The span's wall-clock duration.
        """
        self.count += 1
        self.seconds += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds


class MetricsRegistry:
    """In-process metric store with deterministic cross-process merging."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Union[int, float]] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, HistogramStats] = {}
        self._spans: Dict[str, SpanStats] = {}

    # -- recording ------------------------------------------------------

    def inc(
        self, name: str, value: Union[int, float] = 1, **labels: str
    ) -> None:
        """Add ``value`` to the counter ``name`` (with ``labels``)."""
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge_max(self, name: str, value: float, **labels: str) -> None:
        """Raise the high-water gauge ``name`` to at least ``value``."""
        key = _key(name, labels)
        current = self._gauges.get(key)
        if current is None or value > current:
            self._gauges[key] = value

    def observe(self, name: str, value: _Observable, **labels: str) -> None:
        """Fold ``value`` into the histogram ``name``."""
        key = _key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = HistogramStats()
        hist.observe(value)

    def record_span(self, name: str, seconds: float) -> None:
        """Fold one completed span into the per-name statistics."""
        stats = self._spans.get(name)
        if stats is None:
            stats = self._spans[name] = SpanStats()
        stats.record(seconds)

    # -- reading --------------------------------------------------------

    @property
    def counters(self) -> Dict[MetricKey, Union[int, float]]:
        """Every counter series (a copy; sort on export, not storage)."""
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[MetricKey, float]:
        """Every high-water gauge series (a copy)."""
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[MetricKey, HistogramStats]:
        """Every histogram series (live objects; treat as read-only)."""
        return dict(self._histograms)

    @property
    def spans(self) -> Dict[str, SpanStats]:
        """Per-span-name call counts and wall-clock totals."""
        return dict(self._spans)

    def counter(self, name: str, **labels: str) -> Union[int, float]:
        """One counter's value (0 when never incremented)."""
        return self._counters.get(_key(name, labels), 0)

    def gauge(self, name: str, **labels: str) -> float:
        """One gauge's high-water value (0.0 when never set)."""
        return self._gauges.get(_key(name, labels), 0.0)

    def histogram(self, name: str, **labels: str) -> HistogramStats:
        """One histogram's stats (empty stats when never observed)."""
        return self._histograms.get(_key(name, labels), HistogramStats())

    def subsystems(self) -> Tuple[str, ...]:
        """Sorted leading name segments with at least one series.

        ``cache.hits`` and ``cache.misses`` both belong to subsystem
        ``cache`` — the granularity the coverage acceptance counts.
        """
        seen = set()
        for name, _ in (
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
        ):
            seen.add(name.split(".", 1)[0])
        return tuple(sorted(seen))

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
            + len(self._spans)
        )

    # -- cross-process merging -----------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain picklable dict of everything recorded so far.

        The wire format worker processes ship back to the Monte Carlo
        parent: no live objects, Decimals as strings.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                key: hist.as_dict()
                for key, hist in self._histograms.items()
            },
            "spans": {
                name: (
                    stats.count,
                    stats.seconds,
                    stats.minimum,
                    stats.maximum,
                )
                for name, stats in self._spans.items()
            },
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold one :meth:`snapshot` in (counters add, gauges max,
        histograms combine, spans add).

        Merging the same snapshots in the same order always produces
        the same registry — the ``--jobs`` determinism property.
        """
        try:
            counters = snapshot["counters"]
            gauges = snapshot["gauges"]
            histograms = snapshot["histograms"]
            spans = snapshot["spans"]
        except (TypeError, KeyError) as error:
            raise TelemetryError(
                f"not a registry snapshot: missing {error}"
            ) from None
        for key, value in counters.items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in gauges.items():
            current = self._gauges.get(key)
            if current is None or value > current:
                self._gauges[key] = value
        for key, entry in histograms.items():
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = HistogramStats()
            hist.count += entry["count"]
            hist.total += Decimal(entry["total"])
            if entry["min"] < hist.minimum:
                hist.minimum = entry["min"]
            if entry["max"] > hist.maximum:
                hist.maximum = entry["max"]
        for name, (count, seconds, *extremes) in spans.items():
            stats = self._spans.get(name)
            if stats is None:
                stats = self._spans[name] = SpanStats()
            stats.count += count
            stats.seconds += seconds
            # Snapshots from before min/max tracking are 2-tuples;
            # their extremes stay whatever this side already holds.
            if extremes:
                minimum, maximum = extremes
                if minimum < stats.minimum:
                    stats.minimum = minimum
                if maximum > stats.maximum:
                    stats.maximum = maximum
