"""The telemetry front end: ambient ``Telemetry`` objects and spans.

Everything in the lifecycle stack reports through one of two objects:

* :data:`NULL` — the no-op singleton that is active by default.  Every
  method is a ``pass``; ``span()`` returns a shared reusable context
  manager.  With it installed, instrumented code takes one attribute
  load and one no-op call per site, and — the property the parity
  tests pin — produces byte-identical ledgers and summaries to code
  with no instrumentation at all.
* :class:`Telemetry` — a live collector wrapping a
  :class:`~repro.telemetry.registry.MetricsRegistry` and, optionally,
  an in-memory trace buffer of completed spans for the ``--trace-out``
  JSON-lines exporter.

The active object is ambient: :func:`current` reads it,
:func:`install` replaces it, and :func:`activate` is the scoped form::

    from repro import telemetry

    with telemetry.activate(telemetry.Telemetry()) as t:
        simulator.run(policy)
        print(t.registry.counter("epochs.total"))

Instrumented classes capture :func:`current` **at construction** and
use that captured handle for their lifetime.  That keeps the hot path
free of global lookups and gives multiprocessing a clean story: a
worker process installs a fresh ``Telemetry`` before building its
simulator, runs, and ships ``registry.snapshot()`` back to the parent
for deterministic merging.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from .registry import MetricsRegistry, _Observable

__all__ = [
    "NULL",
    "NullTelemetry",
    "Telemetry",
    "activate",
    "current",
    "install",
]


class _NullSpan:
    """The reusable context manager ``NullTelemetry.span`` hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Telemetry that records nothing — the default ambient object.

    It deliberately has no registry: code that wants to *read* metrics
    must check :attr:`enabled` (or use :func:`current` under an
    :func:`activate` block), so a disabled run can never accidentally
    grow state.
    """

    enabled = False

    def inc(
        self, name: str, value: Union[int, float] = 1, **labels: str
    ) -> None:
        """No-op."""

    def gauge_max(self, name: str, value: float, **labels: str) -> None:
        """No-op."""

    def observe(self, name: str, value: _Observable, **labels: str) -> None:
        """No-op."""

    def span(self, name: str, **attrs: object) -> _NullSpan:
        """A shared do-nothing context manager.

        Args:
            name: Ignored.
            **attrs: Ignored.

        Returns:
            The shared :class:`_NullSpan` singleton.
        """
        return _NULL_SPAN


class _Span:
    """One live span: times itself and reports on exit."""

    __slots__ = ("_telemetry", "name", "attrs", "_started")

    def __init__(
        self, telemetry: "Telemetry", name: str, attrs: Dict[str, object]
    ) -> None:
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._started
        self._telemetry._finish_span(self, elapsed)


class Telemetry:
    """A live collector: registry plus optional span trace buffer.

    ``trace=True`` keeps every completed span as a dict in
    :attr:`trace_events` (chronological by completion), which is what
    :func:`~repro.telemetry.exporters.write_trace` serializes.  The
    registry's span *statistics* are always kept — tracing only
    controls whether individual span records survive.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        trace: bool = False,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace_events: List[Dict[str, object]] = []
        self._trace = trace
        self._origin = time.perf_counter()

    def inc(
        self, name: str, value: Union[int, float] = 1, **labels: str
    ) -> None:
        """Add ``value`` to counter ``name``.

        Args:
            name: The dotted metric name.
            value: The amount to add (default 1).
            **labels: Label pairs selecting the series.
        """
        self.registry.inc(name, value, **labels)

    def gauge_max(self, name: str, value: float, **labels: str) -> None:
        """Raise high-water gauge ``name`` to at least ``value``.

        Args:
            name: The dotted metric name.
            value: The candidate high-water mark.
            **labels: Label pairs selecting the series.
        """
        self.registry.gauge_max(name, value, **labels)

    def observe(self, name: str, value: _Observable, **labels: str) -> None:
        """Fold ``value`` into histogram ``name``.

        Args:
            name: The dotted metric name.
            value: The observation; :class:`~repro.money.Money` and
                :class:`decimal.Decimal` enter the sum exactly.
            **labels: Label pairs selecting the series.
        """
        self.registry.observe(name, value, **labels)

    def span(self, name: str, **attrs: object) -> _Span:
        """A context manager timing one named unit of work.

        Args:
            name: The span name statistics aggregate under.
            **attrs: Free-form span attributes (epoch index, policy
                name, …) carried into the trace record; they do not
                create metric label series.

        Returns:
            An unentered context manager; timing starts on ``with``.
        """
        return _Span(self, name, attrs)

    def _finish_span(self, span: _Span, elapsed: float) -> None:
        self.registry.record_span(span.name, elapsed)
        if self._trace:
            record: Dict[str, object] = {
                "name": span.name,
                "start": round(span._started - self._origin, 9),
                "seconds": round(elapsed, 9),
            }
            if span.attrs:
                record.update(span.attrs)
            self.trace_events.append(record)


#: The process-wide no-op singleton.
NULL = NullTelemetry()

_ACTIVE: Union[Telemetry, NullTelemetry] = NULL


def current() -> Union[Telemetry, NullTelemetry]:
    """The ambient telemetry object.

    Returns:
        The installed collector, or :data:`NULL` when none is.
    """
    return _ACTIVE


def install(
    telemetry: Optional[Union[Telemetry, NullTelemetry]],
) -> Union[Telemetry, NullTelemetry]:
    """Replace the ambient telemetry object.

    Prefer :func:`activate` in tests — it restores the previous object
    on exit.

    Args:
        telemetry: The collector to install; ``None`` restores
            :data:`NULL`.

    Returns:
        The previously ambient object, for later reinstallation.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else NULL
    return previous


@contextmanager
def activate(
    telemetry: Optional[Union[Telemetry, NullTelemetry]] = None,
) -> Iterator[Union[Telemetry, NullTelemetry]]:
    """Scoped :func:`install`: ambient inside the block, restored after.

    Args:
        telemetry: The collector to activate; ``None`` activates a
            fresh :class:`Telemetry`.

    Yields:
        The activated object (handy for reading metrics afterwards).
    """
    active = telemetry if telemetry is not None else Telemetry()
    previous = install(active)
    try:
        yield active
    finally:
        install(previous)
