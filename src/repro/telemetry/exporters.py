"""Exporters: Prometheus text format, trace JSON-lines, summary table.

Three sinks for one registry, with different determinism contracts:

* :func:`prometheus_text` — the ``--metrics-out`` dump.  **Strictly
  deterministic**: only counters, high-water gauges, histograms, and
  span *call counts* appear, all sorted; wall-clock span seconds are
  excluded.  Two runs with the same seed — or the same run at
  ``--jobs 1`` and ``--jobs 4`` — must produce byte-identical dumps,
  which is what the CI determinism job ``cmp``\\ s.
* :func:`trace_lines` / :func:`write_trace` — the ``--trace-out``
  JSON-lines file: one completed span per line with start offset,
  duration, and attributes.  Wall clock by design; never compared.
* :func:`summary_table` — the ``--telemetry-summary`` human table:
  spans with timings first (that is what a human is usually after),
  then counters, gauges, and histograms.
"""

from __future__ import annotations

import json
from decimal import Decimal
from typing import IO, Iterator, List, Union

from .core import Telemetry
from .registry import MetricKey, MetricsRegistry

__all__ = [
    "prometheus_text",
    "summary_table",
    "trace_lines",
    "write_trace",
]

#: Every exported series name is prefixed so dumps can be scraped next
#: to other exporters without collisions.
_PREFIX = "repro_"


def _metric_name(name: str) -> str:
    return _PREFIX + name.replace(".", "_").replace("-", "_")


def _escape_label_value(value: str) -> str:
    """A label value escaped per the Prometheus exposition format.

    Backslash, double quote, and newline are the three characters the
    text format requires escaping inside quoted label values.

    Args:
        value: The raw label value.

    Returns:
        The value with ``\\``, ``"`` and newlines escaped.
    """
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: MetricKey) -> str:
    """Label pairs rendered as a ``{key="value",...}`` block.

    Args:
        labels: The sorted label pairs of one metric series.

    Returns:
        The rendered block, or ``""`` for an unlabelled series.
    """
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + body + "}"


def _value_text(value: Union[int, float, Decimal]) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit anyway
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, Decimal):
        return format(value, "f")
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (sorted).

    Counters are exported as ``<name>_total``, histograms as
    ``_count`` / ``_sum`` / ``_min`` / ``_max`` series, and span call
    counts as ``repro_span_calls_total{span="..."}``.  Span seconds
    are deliberately absent — see the module docstring.  Label values
    are escaped per the exposition format.

    Args:
        registry: The registry to export.

    Returns:
        The sorted, newline-terminated text dump (``""`` when the
        registry is empty).
    """
    lines: List[str] = []

    counters = registry.counters
    for key in sorted(counters):
        name, labels = key
        metric = _metric_name(name) + "_total"
        lines.append(
            f"{metric}{_labels_text(labels)} {_value_text(counters[key])}"
        )

    gauges = registry.gauges
    for key in sorted(gauges):
        name, labels = key
        lines.append(
            f"{_metric_name(name)}{_labels_text(labels)}"
            f" {_value_text(gauges[key])}"
        )

    histograms = registry.histograms
    for key in sorted(histograms):
        name, labels = key
        hist = histograms[key]
        metric = _metric_name(name)
        suffix = _labels_text(labels)
        lines.append(f"{metric}_count{suffix} {hist.count}")
        lines.append(f"{metric}_sum{suffix} {_value_text(hist.total)}")
        if hist.count:
            lines.append(f"{metric}_min{suffix} {_value_text(hist.minimum)}")
            lines.append(f"{metric}_max{suffix} {_value_text(hist.maximum)}")

    spans = registry.spans
    for name in sorted(spans):
        lines.append(
            f'{_PREFIX}span_calls_total'
            f'{{span="{_escape_label_value(name)}"}} {spans[name].count}'
        )

    return "\n".join(lines) + ("\n" if lines else "")


def trace_lines(telemetry: Telemetry) -> Iterator[str]:
    """The collector's completed spans as JSON lines (chronological).

    Args:
        telemetry: The live collector whose trace buffer to render.

    Yields:
        One sorted-key JSON object per completed span.
    """
    for event in telemetry.trace_events:
        yield json.dumps(event, sort_keys=True, default=str)


def write_trace(telemetry: Telemetry, stream: IO[str]) -> int:
    """Write the JSON-lines trace to ``stream``.

    Args:
        telemetry: The live collector whose trace buffer to write.
        stream: An open text stream.

    Returns:
        The number of lines written.
    """
    count = 0
    for line in trace_lines(telemetry):
        stream.write(line + "\n")
        count += 1
    return count


def summary_table(registry: MetricsRegistry) -> str:
    """A human-readable rollup of everything the registry holds.

    Spans come first with call counts and total/mean/min/max timings,
    then counters, high-water gauges, and histograms.

    Args:
        registry: The registry to summarize.

    Returns:
        The rendered multi-line table.
    """
    lines: List[str] = ["telemetry summary"]

    spans = registry.spans
    if spans:
        lines.append("  spans:")
        width = max(len(name) for name in spans)
        for name in sorted(spans):
            stats = spans[name]
            mean_ms = 1000.0 * stats.seconds / stats.count
            extremes = ""
            if stats.maximum >= stats.minimum:
                extremes = (
                    f"  min={1000.0 * stats.minimum:.3f}ms"
                    f"  max={1000.0 * stats.maximum:.3f}ms"
                )
            lines.append(
                f"    {name:<{width}}  calls={stats.count}"
                f"  total={stats.seconds:.3f}s  mean={mean_ms:.3f}ms"
                + extremes
            )

    counters = registry.counters
    if counters:
        lines.append("  counters:")
        for key in sorted(counters):
            name, labels = key
            lines.append(
                f"    {name}{_labels_text(labels)} ="
                f" {_value_text(counters[key])}"
            )

    gauges = registry.gauges
    if gauges:
        lines.append("  gauges (high water):")
        for key in sorted(gauges):
            name, labels = key
            lines.append(
                f"    {name}{_labels_text(labels)} ="
                f" {_value_text(gauges[key])}"
            )

    histograms = registry.histograms
    if histograms:
        lines.append("  histograms:")
        for key in sorted(histograms):
            name, labels = key
            hist = histograms[key]
            lines.append(
                f"    {name}{_labels_text(labels)}: n={hist.count}"
                f" sum={_value_text(hist.total)}"
                + (
                    f" min={_value_text(hist.minimum)}"
                    f" max={_value_text(hist.maximum)}"
                    if hist.count
                    else ""
                )
            )

    if len(lines) == 1:
        lines.append("  (no telemetry recorded)")
    return "\n".join(lines)
