"""Command-line interface: regenerate the paper's artifacts.

Usage::

    repro-experiments list
    repro-experiments run figure5a [--csv-dir out/]
    repro-experiments all [--csv-dir out/]
    repro-experiments simulate --epochs 24 --policy all

(or ``python -m repro ...`` / ``python -m repro.cli ...``).

``simulate`` steps the drifting-warehouse lifecycle scenario
(:func:`repro.simulate.drifting_sales_simulator`) under one or all
re-selection policies and prints each policy's cost ledger.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .errors import ReproError
from .experiments.context import ExperimentConfig, ExperimentContext
from .experiments.runner import EXPERIMENTS, run_all, run_experiment
from .simulate.policy import POLICY_NAMES, make_policy
from .simulate.presets import DRIFT_MIN_EPOCHS, drifting_sales_simulator

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Cost Models for View "
            "Materialization in the Cloud' (Nguyen et al., DanaC 2012)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_common(run)

    everything = sub.add_parser("all", help="run every experiment")
    _add_common(everything)

    simulate = sub.add_parser(
        "simulate",
        help="run the drifting-warehouse lifecycle simulation",
        description=(
            "Step the Section 6 warehouse through a drifting lifecycle "
            "(queries arriving/leaving, data growth, a provider price "
            "change, a node loss) and compare re-selection policies."
        ),
    )
    simulate.add_argument(
        "--epochs",
        type=int,
        default=24,
        help=(
            "billing periods to simulate; the drifting scenario needs "
            f">= {DRIFT_MIN_EPOCHS} (default %(default)s)"
        ),
    )
    simulate.add_argument(
        "--policy",
        choices=(*POLICY_NAMES, "all"),
        default="all",
        help="re-selection policy to run (default %(default)s)",
    )
    simulate.add_argument(
        "--period",
        type=int,
        default=4,
        help="epochs between periodic re-selections (default %(default)s)",
    )
    simulate.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative regret that triggers re-selection (default %(default)s)",
    )
    simulate.add_argument(
        "--algorithm",
        choices=("knapsack", "greedy", "exhaustive"),
        default="greedy",
        help="selection algorithm used by every policy (default %(default)s)",
    )
    simulate.add_argument(
        "--rows",
        type=int,
        default=60_000,
        help="physical fact rows to generate (default %(default)s)",
    )
    simulate.add_argument(
        "--seed",
        type=int,
        default=42,
        help="dataset RNG seed (default %(default)s)",
    )
    simulate.add_argument(
        "--quiet",
        action="store_true",
        help="print only the per-policy summary lines",
    )

    return parser


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--csv-dir", default=None, help="also write each table as CSV here"
    )
    sub.add_argument(
        "--rows",
        type=int,
        default=ExperimentConfig().n_rows,
        help="physical fact rows to generate (default %(default)s)",
    )
    sub.add_argument(
        "--seed",
        type=int,
        default=ExperimentConfig().seed,
        help="dataset RNG seed (default %(default)s)",
    )


def _context(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        ExperimentConfig(n_rows=args.rows, seed=args.seed)
    )


def _run_simulate(args: argparse.Namespace) -> int:
    simulator = drifting_sales_simulator(
        n_epochs=args.epochs, n_rows=args.rows, seed=args.seed
    )
    names = POLICY_NAMES if args.policy == "all" else (args.policy,)
    policies = [
        make_policy(
            name,
            algorithm=args.algorithm,
            period=args.period,
            threshold=args.threshold,
        )
        for name in names
    ]
    ledgers = simulator.compare(policies)
    for ledger in ledgers.values():
        if args.quiet:
            print(ledger.summary())
        else:
            print(ledger.render())
            print()
    stats = simulator.builder.evaluation_stats()
    print(
        f"subset evaluations: {stats.calls} requested, "
        f"{stats.priced} priced, {stats.hits} served from cache; "
        f"{simulator.builder.queries_priced} queries priced across "
        f"{simulator.builder.problems_cached} epoch problems"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "simulate":
            return _run_simulate(args)
        if args.command == "list":
            for experiment_id in sorted(EXPERIMENTS):
                print(experiment_id)
            return 0
        if args.command == "run":
            tables = run_experiment(
                args.experiment, _context(args), csv_dir=args.csv_dir
            )
            for table in tables:
                print(table.render())
                print()
            return 0
        # args.command == "all"
        for experiment_id, tables in run_all(
            _context(args), csv_dir=args.csv_dir
        ).items():
            print(f"### {experiment_id}")
            for table in tables:
                print(table.render())
                print()
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
