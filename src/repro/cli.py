"""Command-line interface: regenerate the paper's artifacts.

Usage::

    repro-experiments list
    repro-experiments run figure5a [--csv-dir out/]
    repro-experiments all [--csv-dir out/]

(or ``python -m repro.cli ...``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .errors import ReproError
from .experiments.context import ExperimentConfig, ExperimentContext
from .experiments.runner import EXPERIMENTS, run_all, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Cost Models for View "
            "Materialization in the Cloud' (Nguyen et al., DanaC 2012)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_common(run)

    everything = sub.add_parser("all", help="run every experiment")
    _add_common(everything)

    return parser


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--csv-dir", default=None, help="also write each table as CSV here"
    )
    sub.add_argument(
        "--rows",
        type=int,
        default=ExperimentConfig().n_rows,
        help="physical fact rows to generate (default %(default)s)",
    )
    sub.add_argument(
        "--seed",
        type=int,
        default=ExperimentConfig().seed,
        help="dataset RNG seed (default %(default)s)",
    )


def _context(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        ExperimentConfig(n_rows=args.rows, seed=args.seed)
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for experiment_id in sorted(EXPERIMENTS):
                print(experiment_id)
            return 0
        if args.command == "run":
            tables = run_experiment(
                args.experiment, _context(args), csv_dir=args.csv_dir
            )
            for table in tables:
                print(table.render())
                print()
            return 0
        # args.command == "all"
        for experiment_id, tables in run_all(
            _context(args), csv_dir=args.csv_dir
        ).items():
            print(f"### {experiment_id}")
            for table in tables:
                print(table.render())
                print()
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
