"""Command-line interface: regenerate the paper's artifacts.

Usage::

    repro-experiments list
    repro-experiments run figure5a [--csv-dir out/]
    repro-experiments all [--csv-dir out/]
    repro-experiments simulate --epochs 24 --policy all
    repro-experiments simulate --tenants 3 [--attribution even]
    repro-experiments simulate --tenants 3 --tenant-churn 0.5
    repro-experiments simulate --tenants 100 --shards 8 --jobs 4
    repro-experiments simulate --generator spot
    repro-experiments simulate --arbitrage --generator spot
    repro-experiments simulate --trials 32 --seed 7 --jobs 4

(or ``python -m repro ...`` / ``python -m repro.cli ...``).

``simulate`` steps the drifting-warehouse lifecycle scenario
(:func:`repro.simulate.drifting_sales_simulator`) under one or all
re-selection policies and prints each policy's cost ledger.  With
``--tenants N`` it runs the multi-tenant scenario
(:func:`repro.simulate.multi_tenant_sales_simulator`) instead: N
workloads share the warehouse, each epoch's bill is attributed into
per-tenant ledgers, and ``--fair-slack`` adds a soft fairness
preference to the selection itself (``--slo-hours`` composes a
per-tenant latency ceiling with it).  ``--tenant-churn`` makes the
fleet *elastic* — sampled tenants arrive and depart mid-lifecycle,
billed through onboarding/offboarding events — and ``--shards K``
switches to the population-scale path: each epoch's attribution is
partitioned across K tenant shards (``--jobs`` worker processes) and
streamed into per-tenant lifetime totals (``--tenant-csv``), byte-
identical for any K.

``--arbitrage`` quotes a multi-provider market and wraps every policy
in the migration layer (:mod:`repro.simulate.arbitrage`): each epoch
the holdings are priced on every quoted book, and the warehouse
migrates — paying dataset + view egress and re-materialization — when
the amortized savings over ``--migration-horizon`` epochs beat the
switch cost for ``--migration-hold`` consecutive epochs.

``--build-slots`` / ``--build-discipline`` turn on asynchronous
builds (:mod:`repro.simulate.builds`): decided views enter a build
queue, land only after their materialization hours have elapsed on
the wall clock, and are billed by partial-period proration from the
landing instant; ``--sync`` names today's default instant-build
regime explicitly.

``--generator NAME`` swaps the hand-written drift for sampled drift
(:mod:`repro.simulate.stochastic`), and ``--trials N`` evaluates the
policies over *N* sampled futures at once — the Monte Carlo harness
(:mod:`repro.simulate.montecarlo`), parallel across ``--jobs``
processes, printing distribution summaries and optionally writing
them as CSV (``--summary-csv``).  Identical ``--seed`` means
identical output, whatever ``--jobs`` is.

``--metrics-out`` / ``--trace-out`` / ``--telemetry-summary`` turn on
the observability layer (:mod:`repro.telemetry`) for any simulate
run: counters, gauges and histograms from every subsystem land in a
deterministic Prometheus text dump, completed spans in a JSON-lines
trace, and a human rollup on stdout — with zero effect on the
ledgers and summaries themselves (telemetry is strictly passive).

``--explain-out PATH`` records decision provenance for any simulate
run (:mod:`repro.explain`): every policy trigger, optimizer solve,
arbitrage assessment and build outcome, plus an exact epoch-over-epoch
cost decomposition whose terms sum byte-exactly to each delta — as a
deterministic JSON-lines export, byte-identical for identical
``--seed`` whatever ``--jobs``/``--shards`` are.  The ``explain``
subcommand answers queries over such an export: ``why-bill`` (exact
cost lineage for one epoch, fleet-wide or per tenant),
``why-reselect`` (triggers and solves), ``why-view`` (one view's
history) and ``diff`` (cause-level change between two epochs).  Like
telemetry, the recorder is strictly passive: with the flag absent the
ledgers, summaries and CSVs are byte-identical to a run without it.

``--no-kernel`` (any command) prices subsets through the exact
Decimal oracle instead of the vectorized kernel
(:mod:`repro.kernel`).  Output is byte-identical either way — the
kernel is a pure accelerator — so the flag exists for debugging and
for proving exactly that (see ``tests/simulate/
test_kernel_ledger_identity.py``).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from contextlib import ExitStack, contextmanager
from typing import Iterator, List, Optional

from .errors import ReproError, SimulationError
from .kernel import NO_KERNEL_ENV
from .experiments.context import ExperimentConfig, ExperimentContext
from .experiments.runner import EXPERIMENTS, run_all, run_experiment
from .explain import (
    ExplainLog,
    activate as activate_explain,
    diff_epochs,
    load_explain,
    why_bill,
    why_reselect,
    why_view,
    write_explain,
)
from .telemetry import (
    Telemetry,
    activate,
    prometheus_text,
    summary_table,
    write_trace,
)
from .optimizer.registry import registered_algorithms, resolve as resolve_optimizer
from .simulate.arbitrage import ArbitrageAware
from .simulate.attribution import ATTRIBUTION_MODES
from .simulate.montecarlo import (
    MonteCarloConfig,
    PolicySpec,
    run_monte_carlo,
)
from .simulate.builds import BUILD_DISCIPLINES, BuildConfig
from .simulate.policy import POLICY_NAMES, make_policy
from .simulate.presets import (
    DRIFT_MIN_EPOCHS,
    default_market,
    drifting_sales_simulator,
    elastic_multi_tenant_simulator,
    multi_tenant_sales_simulator,
    stochastic_multi_tenant_simulator,
    stochastic_sales_simulator,
)
from .simulate.stochastic import GENERATOR_PRESETS, FleetChurn

__all__ = ["main", "build_parser"]

#: CLI defaults for the arbitrage knobs; the flags use a ``None``
#: sentinel so "typed the default value" and "never typed the flag"
#: stay distinguishable (a typed knob without --arbitrage is an
#: error, whatever its value).
MIGRATION_HORIZON_DEFAULT = 6
MIGRATION_HOLD_DEFAULT = 2

#: CLI defaults for the build-queue knobs (same ``None``-sentinel
#: convention: typing a knob alongside --sync is an error).
BUILD_SLOTS_DEFAULT = 1
BUILD_DISCIPLINE_DEFAULT = "fifo"

#: CLI default for --tenant-stay (same ``None``-sentinel convention:
#: typing it without --tenant-churn is an error).
TENANT_STAY_DEFAULT = 8.0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Cost Models for View "
            "Materialization in the Cloud' (Nguyen et al., DanaC 2012)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_common(run)

    everything = sub.add_parser("all", help="run every experiment")
    _add_common(everything)

    simulate = sub.add_parser(
        "simulate",
        help="run the drifting-warehouse lifecycle simulation",
        description=(
            "Step the Section 6 warehouse through a drifting lifecycle "
            "(queries arriving/leaving, data growth, a provider price "
            "change, a node loss) and compare re-selection policies. "
            "With --tenants N, N workloads share the warehouse and every "
            "epoch's bill is attributed across per-tenant ledgers."
        ),
    )
    lifecycle = simulate.add_argument_group(
        "lifecycle", "the epoch grid, the world, and the policies"
    )
    lifecycle.add_argument(
        "--epochs",
        type=int,
        default=24,
        help=(
            "billing periods to simulate; the drifting scenario needs "
            f">= {DRIFT_MIN_EPOCHS} (default %(default)s)"
        ),
    )
    lifecycle.add_argument(
        "--policy",
        choices=(*POLICY_NAMES, "all"),
        default="all",
        help="re-selection policy to run (default %(default)s)",
    )
    lifecycle.add_argument(
        "--period",
        type=int,
        default=4,
        help="epochs between periodic re-selections (default %(default)s)",
    )
    lifecycle.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative regret that triggers re-selection (default %(default)s)",
    )
    lifecycle.add_argument(
        "--hysteresis",
        type=int,
        default=1,
        metavar="N",
        help=(
            "epochs the regret must stay above the threshold before "
            "the regret policy churns (default %(default)s)"
        ),
    )
    lifecycle.add_argument(
        "--algorithm",
        choices=registered_algorithms(),
        default="greedy",
        help="selection algorithm used by every policy (default %(default)s)",
    )
    lifecycle.add_argument(
        "--search-budget",
        type=int,
        default=None,
        metavar="N",
        help=(
            "exact subset evaluations an anytime search may spend per "
            "solve (needs --algorithm beam or local)"
        ),
    )
    lifecycle.add_argument(
        "--search-seed",
        type=int,
        default=None,
        metavar="S",
        help=(
            "seed for the search's move sampling (needs --algorithm "
            "beam or local; default 0)"
        ),
    )
    lifecycle.add_argument(
        "--rows",
        type=int,
        default=60_000,
        help="physical fact rows to generate (default %(default)s)",
    )
    lifecycle.add_argument(
        "--seed",
        type=int,
        default=42,
        help="dataset RNG seed (default %(default)s)",
    )
    lifecycle.add_argument(
        "--quiet",
        action="store_true",
        help="print only the per-policy summary lines",
    )
    lifecycle.add_argument(
        "--no-kernel",
        action="store_true",
        help=(
            "price every subset through the exact Decimal oracle, "
            "skipping the vectorized kernel (byte-identical output, "
            "slower; exported as REPRO_NO_KERNEL=1 so Monte Carlo "
            "worker processes inherit the opt-out)"
        ),
    )

    tenant_group = simulate.add_argument_group(
        "tenants", "multi-tenant sharing and cost attribution"
    )
    tenant_group.add_argument(
        "--tenants",
        type=int,
        default=0,
        metavar="N",
        help=(
            "share the warehouse between N tenants and attribute every "
            "epoch's charges into per-tenant ledgers (default: single "
            "workload, no attribution)"
        ),
    )
    tenant_group.add_argument(
        "--attribution",
        choices=ATTRIBUTION_MODES,
        default=None,
        help=(
            "how shared view/storage charges are split between tenants "
            "(default proportional; needs --tenants)"
        ),
    )
    tenant_group.add_argument(
        "--fair-slack",
        type=float,
        default=None,
        metavar="S",
        help=(
            "select views under a soft fairness preference: minimize how "
            "far any tenant's attributed share exceeds (1+S)x the even "
            "split before minimizing cost (needs --tenants)"
        ),
    )
    tenant_group.add_argument(
        "--slo-hours",
        type=float,
        default=None,
        metavar="H",
        help=(
            "per-tenant latency SLO: prefer subsets keeping every "
            "tenant's own processing hours under H per epoch, composed "
            "with the fairness preference (needs --tenants)"
        ),
    )
    tenant_group.add_argument(
        "--tenant-churn",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "make the fleet elastic: tenants arrive at RATE per epoch "
            "(Poisson) with exponential stays, billed through "
            "onboarding/offboarding events (needs --tenants; samples "
            "drift from --generator, default mixed)"
        ),
    )
    tenant_group.add_argument(
        "--tenant-stay",
        type=float,
        default=None,
        metavar="EPOCHS",
        help=(
            "expected stay of churned tenants in epochs (needs "
            f"--tenant-churn; default {TENANT_STAY_DEFAULT:g})"
        ),
    )
    tenant_group.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help=(
            "attribute each epoch across K tenant shards with "
            "streaming ledger merges (population-scale path; "
            "byte-identical totals for any K; needs --tenants; "
            "combine with --jobs J for worker processes)"
        ),
    )
    tenant_group.add_argument(
        "--tenant-csv",
        default=None,
        metavar="PATH",
        help=(
            "write the per-tenant lifetime totals as CSV (needs "
            "--shards and a single --policy); byte-identical for any "
            "--shards/--jobs combination"
        ),
    )

    stochastic = simulate.add_argument_group(
        "stochastic", "sampled drift and Monte Carlo evaluation"
    )
    stochastic.add_argument(
        "--generator",
        choices=sorted(GENERATOR_PRESETS),
        default=None,
        help=(
            "sample the drift from a seeded stochastic generator "
            "bundle instead of the hand-written scenario"
        ),
    )
    stochastic.add_argument(
        "--trials",
        type=int,
        default=0,
        metavar="N",
        help=(
            "evaluate the policies over N sampled futures (Monte "
            "Carlo; implies --generator mixed unless one is named) "
            "and print distribution summaries (default: one "
            "deterministic run)"
        ),
    )
    stochastic.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="J",
        help=(
            "worker processes for --trials; never changes the result "
            "(default %(default)s)"
        ),
    )
    stochastic.add_argument(
        "--summary-csv",
        default=None,
        metavar="PATH",
        help=(
            "also write the Monte Carlo distribution summary as CSV "
            "(needs --trials); byte-identical for identical --seed"
        ),
    )

    arbitrage = simulate.add_argument_group(
        "arbitrage", "multi-provider markets and billed migrations"
    )
    arbitrage.add_argument(
        "--arbitrage",
        action="store_true",
        help=(
            "quote a multi-provider market (AWS + flat-rate + archive "
            "books) and wrap every policy in the arbitrage layer: "
            "migrate providers when amortized savings beat the switch "
            "cost (dataset + view egress, re-materialization)"
        ),
    )
    arbitrage.add_argument(
        "--migration-horizon",
        type=int,
        default=None,
        metavar="H",
        help=(
            "epochs the per-epoch savings are amortized over before "
            "being compared with the switch cost (needs --arbitrage; "
            f"default {MIGRATION_HORIZON_DEFAULT})"
        ),
    )
    arbitrage.add_argument(
        "--migration-hold",
        type=int,
        default=None,
        metavar="N",
        help=(
            "consecutive epochs a candidate provider must stay "
            "worthwhile before the arbitrage layer migrates (needs "
            f"--arbitrage; default {MIGRATION_HOLD_DEFAULT})"
        ),
    )

    builds = simulate.add_argument_group(
        "builds", "asynchronous builds: wall-clock latency and proration"
    )
    builds.add_argument(
        "--build-slots",
        type=int,
        default=None,
        metavar="K",
        help=(
            "run builds asynchronously on K concurrent slots: a "
            "decided view enters the build queue, lands after its "
            "materialization hours have elapsed on the wall clock, "
            "and is billed by partial-period proration from the "
            f"landing (default {BUILD_SLOTS_DEFAULT} once any build "
            "flag is typed)"
        ),
    )
    builds.add_argument(
        "--build-discipline",
        choices=BUILD_DISCIPLINES,
        default=None,
        help=(
            "scheduling discipline for queued builds (implies "
            f"asynchronous execution; default {BUILD_DISCIPLINE_DEFAULT})"
        ),
    )
    builds.add_argument(
        "--sync",
        action="store_true",
        help=(
            "force the classic synchronous regime (views live the "
            "instant they are decided) — the default; contradicts the "
            "other build flags"
        ),
    )

    observability = simulate.add_argument_group(
        "telemetry", "metrics, span traces, and profiling exports"
    )
    observability.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write the run's merged metrics as a Prometheus text-format "
            "dump; deterministic — byte-identical for identical --seed, "
            "whatever --jobs is"
        ),
    )
    observability.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "write completed spans (epoch stepping, optimizer solves, "
            "arbitrage assessments, trials) as a JSON-lines trace file "
            "with wall-clock timings"
        ),
    )
    observability.add_argument(
        "--telemetry-summary",
        action="store_true",
        help=(
            "print a human-readable rollup of the run's spans, "
            "counters, gauges, and histograms after the ledgers"
        ),
    )

    provenance = simulate.add_argument_group(
        "explain", "decision provenance and exact cost lineage"
    )
    provenance.add_argument(
        "--explain-out",
        default=None,
        metavar="PATH",
        help=(
            "record every decision (policy triggers, optimizer solves, "
            "arbitrage assessments, build outcomes) and the exact "
            "epoch-over-epoch cost decomposition, and write them as a "
            "JSON-lines export; deterministic — byte-identical for "
            "identical --seed, whatever --jobs/--shards are (query it "
            "with the 'explain' subcommand)"
        ),
    )

    _add_explain_parser(sub)

    return parser


def _add_explain_parser(sub) -> None:
    """The ``explain`` subcommand: queries over an --explain-out export."""
    explain = sub.add_parser(
        "explain",
        help="answer provenance queries over an --explain-out export",
        description=(
            "Answer 'why' questions about a recorded simulate run: why a "
            "bill moved epoch-over-epoch (exact cost lineage, terms that "
            "sum byte-exactly to the delta), why a policy re-selected, "
            "what happened to one view, and how two epochs differ. "
            "Reads the JSON-lines file a 'simulate --explain-out PATH' "
            "run wrote."
        ),
    )
    queries = explain.add_subparsers(dest="explain_command", required=True)

    why_bill_cmd = queries.add_parser(
        "why-bill",
        help="decompose one epoch's cost delta into exact causal terms",
    )
    why_bill_cmd.add_argument("log", help="an --explain-out JSONL file")
    why_bill_cmd.add_argument(
        "--epoch",
        type=int,
        required=True,
        metavar="E",
        help="the epoch whose delta to explain",
    )
    why_bill_cmd.add_argument(
        "--tenant",
        default=None,
        metavar="NAME",
        help="explain one tenant's attributed delta instead of the fleet's",
    )

    why_reselect_cmd = queries.add_parser(
        "why-reselect",
        help="show what each policy decided and why (triggers + solves)",
    )
    why_reselect_cmd.add_argument("log", help="an --explain-out JSONL file")
    why_reselect_cmd.add_argument(
        "--epoch",
        type=int,
        default=None,
        metavar="E",
        help="restrict to one epoch (default: every epoch)",
    )

    why_view_cmd = queries.add_parser(
        "why-view",
        help="trace one view's history: selections, drops, builds",
    )
    why_view_cmd.add_argument("log", help="an --explain-out JSONL file")
    why_view_cmd.add_argument("view", help="the view name to trace")

    diff_cmd = queries.add_parser(
        "diff",
        help="attribute the cost change between two epochs to causes",
    )
    diff_cmd.add_argument("log", help="an --explain-out JSONL file")
    diff_cmd.add_argument(
        "--from",
        dest="from_epoch",
        type=int,
        required=True,
        metavar="E",
        help="the baseline epoch",
    )
    diff_cmd.add_argument(
        "--to",
        dest="to_epoch",
        type=int,
        required=True,
        metavar="E",
        help="the epoch to compare against the baseline",
    )


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--csv-dir", default=None, help="also write each table as CSV here"
    )
    sub.add_argument(
        "--no-kernel",
        action="store_true",
        help=(
            "price every subset through the exact Decimal oracle, "
            "skipping the vectorized kernel (byte-identical output, "
            "slower)"
        ),
    )
    sub.add_argument(
        "--rows",
        type=int,
        default=ExperimentConfig().n_rows,
        help="physical fact rows to generate (default %(default)s)",
    )
    sub.add_argument(
        "--seed",
        type=int,
        default=ExperimentConfig().seed,
        help="dataset RNG seed (default %(default)s)",
    )


def _context(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        ExperimentConfig(n_rows=args.rows, seed=args.seed)
    )


def _migration_knobs(args: argparse.Namespace):
    """Resolve the arbitrage knobs as ``(horizon, hold)``.

    A knob typed without ``--arbitrage`` — whatever its value — is an
    error rather than a silent no-op; untyped knobs resolve to the
    module defaults.
    """
    typed = (
        args.migration_horizon is not None
        or args.migration_hold is not None
    )
    if not args.arbitrage:
        if typed:
            raise SimulationError(
                "--migration-horizon and --migration-hold apply to "
                "arbitrage runs; add --arbitrage"
            )
        return None, None
    horizon = (
        MIGRATION_HORIZON_DEFAULT
        if args.migration_horizon is None
        else args.migration_horizon
    )
    hold = (
        MIGRATION_HOLD_DEFAULT
        if args.migration_hold is None
        else args.migration_hold
    )
    return horizon, hold


def _build_config(args: argparse.Namespace):
    """Resolve the build flags to a ``BuildConfig`` (``None`` = sync).

    Asynchronous execution turns on as soon as any build knob is
    typed; ``--sync`` states the default regime explicitly, so typing
    it *alongside* a build knob is a contradiction, not a tiebreak.
    """
    typed = (
        args.build_slots is not None or args.build_discipline is not None
    )
    if args.sync:
        if typed:
            raise SimulationError(
                "--sync contradicts --build-slots/--build-discipline; "
                "drop one side"
            )
        return None
    if not typed:
        return None
    return BuildConfig(
        slots=(
            BUILD_SLOTS_DEFAULT
            if args.build_slots is None
            else args.build_slots
        ),
        discipline=(
            BUILD_DISCIPLINE_DEFAULT
            if args.build_discipline is None
            else args.build_discipline
        ),
    )


def _tenant_churn(args: argparse.Namespace):
    """Resolve the churn knobs to a ``FleetChurn`` (``None`` = fixed).

    Same sentinel convention as :func:`_migration_knobs`:
    ``--tenant-stay`` typed without ``--tenant-churn`` is an error,
    never a silent no-op.
    """
    if args.tenant_stay is not None and args.tenant_churn is None:
        raise SimulationError(
            "--tenant-stay applies to elastic fleets; add "
            "--tenant-churn RATE"
        )
    if args.tenant_churn is None:
        return None
    return FleetChurn(
        arrival_rate=args.tenant_churn,
        mean_stay=(
            TENANT_STAY_DEFAULT
            if args.tenant_stay is None
            else args.tenant_stay
        ),
    )


#: Algorithms the --search-* knobs configure.
SEARCH_ALGORITHMS = ("beam", "local")


def _optimizer_spec(args: argparse.Namespace):
    """Resolve ``--algorithm`` plus the search knobs to one spec.

    Follows the sentinel-knob convention (:func:`_migration_knobs`):
    a ``--search-*`` knob typed alongside a non-search algorithm is an
    error, never a silent no-op.
    """
    typed = args.search_budget is not None or args.search_seed is not None
    spec = resolve_optimizer(args.algorithm)
    if args.algorithm not in SEARCH_ALGORITHMS:
        if typed:
            raise SimulationError(
                "--search-budget and --search-seed apply to the anytime "
                "search algorithms; add --algorithm beam or --algorithm local"
            )
        return spec
    replacements = {}
    if args.search_budget is not None:
        replacements["budget"] = args.search_budget
    if args.search_seed is not None:
        replacements["seed"] = args.search_seed
    return dataclasses.replace(spec, **replacements) if replacements else spec


def _simulate_policies(args: argparse.Namespace, scenario_factory=None):
    horizon, hold = _migration_knobs(args)
    optimizer = _optimizer_spec(args)
    names = POLICY_NAMES if args.policy == "all" else (args.policy,)
    policies = [
        make_policy(
            name,
            optimizer=optimizer,
            period=args.period,
            threshold=args.threshold,
            scenario_factory=scenario_factory,
            hysteresis=args.hysteresis,
        )
        for name in names
    ]
    if args.arbitrage:
        policies = [
            ArbitrageAware(policy, horizon=horizon, hysteresis=hold)
            for policy in policies
        ]
    return policies


def _simulate_market(args: argparse.Namespace):
    """The provider market the run quotes (None = single provider)."""
    return default_market() if args.arbitrage else None


def _print_cache_stats(builder) -> None:
    stats = builder.evaluation_stats()
    print(
        f"subset evaluations: {stats.calls} requested, "
        f"{stats.priced} priced, {stats.hits} served from cache; "
        f"{builder.queries_priced} queries priced across "
        f"{builder.problems_cached} epoch problems"
    )


def _print_ledger_cache(ledger) -> None:
    """The per-epoch cache traffic a ledger's records now carry."""
    per_epoch = " ".join(
        f"{r.cache_hits}/{r.subsets_priced}" for r in ledger.records
    )
    print(f"cache hits/priced per epoch: {per_epoch}")
    print(
        f"cache totals: {ledger.total_cache_hits} hits, "
        f"{ledger.total_subsets_priced} priced "
        f"({ledger.cache_hit_rate:.0%} hit rate)"
    )


def _telemetry_collector(args: argparse.Namespace):
    """A live collector when any telemetry flag was typed, else None."""
    wanted = (
        args.metrics_out is not None
        or args.trace_out is not None
        or args.telemetry_summary
    )
    if not wanted:
        return None
    return Telemetry(trace=args.trace_out is not None)


def _export_telemetry(
    collector: Telemetry, args: argparse.Namespace
) -> None:
    if args.telemetry_summary:
        print()
        print(summary_table(collector.registry))
    if args.metrics_out is not None:
        with open(
            args.metrics_out, "w", encoding="utf-8", newline="\n"
        ) as handle:
            handle.write(prometheus_text(collector.registry))
        print(f"metrics dump written to {args.metrics_out}")
    if args.trace_out is not None:
        with open(
            args.trace_out, "w", encoding="utf-8", newline="\n"
        ) as handle:
            spans = write_trace(collector, handle)
        print(f"{spans} trace spans written to {args.trace_out}")


def _export_explain(log: ExplainLog, args: argparse.Namespace) -> None:
    with open(
        args.explain_out, "w", encoding="utf-8", newline="\n"
    ) as handle:
        records = write_explain(log, handle)
    print(f"{records} explain records written to {args.explain_out}")


def _run_simulate(args: argparse.Namespace) -> int:
    collector = _telemetry_collector(args)
    log = None if args.explain_out is None else ExplainLog()
    if collector is None and log is None:
        return _dispatch_simulate(args)
    with ExitStack() as stack:
        if collector is not None:
            stack.enter_context(activate(collector))
        if log is not None:
            stack.enter_context(activate_explain(log))
        code = _dispatch_simulate(args)
    if log is not None:
        _export_explain(log, args)
    if collector is not None:
        _export_telemetry(collector, args)
    return code


def _dispatch_simulate(args: argparse.Namespace) -> int:
    if args.trials:
        return _run_simulate_montecarlo(args)
    # Monte-Carlo-only flags must not be silently ignored either.
    if args.summary_csv is not None:
        raise SimulationError(
            "--summary-csv applies to Monte Carlo runs; add --trials N"
        )
    if args.jobs != 1 and args.shards is None:
        raise SimulationError(
            "--jobs applies to Monte Carlo runs or sharded attribution; "
            "add --trials N or --shards K"
        )
    if args.tenants:
        return _run_simulate_tenants(args)
    # Tenant-only flags must not be silently ignored: a user who types
    # --fair-slack but forgets --tenants would read an ordinary run as
    # a fairness-constrained one.
    if (
        args.fair_slack is not None
        or args.attribution is not None
        or args.slo_hours is not None
        or args.tenant_churn is not None
        or args.tenant_stay is not None
        or args.shards is not None
        or args.tenant_csv is not None
    ):
        raise SimulationError(
            "--attribution, --fair-slack, --slo-hours, --tenant-churn, "
            "--tenant-stay, --shards and --tenant-csv apply to "
            "multi-tenant runs; add --tenants N"
        )
    market = _simulate_market(args)
    builds = _build_config(args)
    if args.generator is not None:
        simulator = stochastic_sales_simulator(
            generator=args.generator,
            n_epochs=args.epochs,
            n_rows=args.rows,
            seed=args.seed,
            market=market,
            builds=builds,
        )
    else:
        simulator = drifting_sales_simulator(
            n_epochs=args.epochs, n_rows=args.rows, seed=args.seed,
            market=market,
            builds=builds,
        )
    ledgers = simulator.compare(_simulate_policies(args))
    for ledger in ledgers.values():
        if args.quiet:
            print(ledger.summary())
        else:
            print(ledger.render())
            _print_ledger_cache(ledger)
            print()
    _print_cache_stats(simulator.builder)
    return 0


def _run_simulate_montecarlo(args: argparse.Namespace) -> int:
    if args.fair_slack is not None or args.slo_hours is not None:
        raise SimulationError(
            "--fair-slack and --slo-hours are not supported under "
            "--trials (scenario factories do not cross process "
            "boundaries); run single trials instead"
        )
    if args.shards is not None or args.tenant_csv is not None:
        raise SimulationError(
            "--shards and --tenant-csv apply to single sharded runs, "
            "not Monte Carlo; drop --trials"
        )
    if args.attribution is not None and not args.tenants:
        raise SimulationError(
            "--attribution applies to multi-tenant runs; add --tenants N"
        )
    churn = _tenant_churn(args)
    if churn is not None and not args.tenants:
        raise SimulationError(
            "--tenant-churn applies to multi-tenant runs; add --tenants N"
        )
    horizon, hold = _migration_knobs(args)
    builds = _build_config(args)
    optimizer = _optimizer_spec(args)
    arbitrage_knobs = (
        {
            "arbitrage": True,
            "migration_horizon": horizon,
            "migration_hold": hold,
        }
        if args.arbitrage
        else {}
    )
    names = POLICY_NAMES if args.policy == "all" else (args.policy,)
    config = MonteCarloConfig(
        generator=args.generator or "mixed",
        n_trials=args.trials,
        n_epochs=args.epochs,
        n_rows=args.rows,
        seed=args.seed,
        n_tenants=args.tenants,
        attribution=args.attribution or "proportional",
        tenant_churn=0.0 if churn is None else churn.arrival_rate,
        tenant_stay=(
            TENANT_STAY_DEFAULT if churn is None else churn.mean_stay
        ),
        build_slots=0 if builds is None else builds.slots,
        build_discipline="fifo" if builds is None else builds.discipline,
        policies=tuple(
            PolicySpec(
                name,
                algorithm=args.algorithm,
                period=args.period,
                threshold=args.threshold,
                hysteresis=args.hysteresis,
                optimizer=optimizer,
                **arbitrage_knobs,
            )
            for name in names
        ),
    )
    result = run_monte_carlo(config, jobs=args.jobs)
    print(result.summary())
    if not args.quiet:
        print()
        for row in result.rows():
            print(",".join(row))
    if args.summary_csv is not None:
        result.to_csv(args.summary_csv)
        print(f"\nsummary csv written to {args.summary_csv}")
    return 0


def _run_simulate_tenants(args: argparse.Namespace) -> int:
    market = _simulate_market(args)
    builds = _build_config(args)
    churn = _tenant_churn(args)
    if args.tenant_csv is not None and args.shards is None:
        raise SimulationError(
            "--tenant-csv streams totals from the sharded path; add "
            "--shards K"
        )
    if churn is not None:
        simulator = elastic_multi_tenant_simulator(
            n_tenants=args.tenants,
            generator=args.generator or "mixed",
            churn=churn,
            n_epochs=args.epochs,
            n_rows=args.rows,
            seed=args.seed,
            attribution=args.attribution or "proportional",
            market=market,
            builds=builds,
        )
    elif args.generator is not None:
        simulator = stochastic_multi_tenant_simulator(
            n_tenants=args.tenants,
            generator=args.generator,
            n_epochs=args.epochs,
            n_rows=args.rows,
            seed=args.seed,
            attribution=args.attribution or "proportional",
            market=market,
            builds=builds,
        )
    else:
        simulator = multi_tenant_sales_simulator(
            n_tenants=args.tenants,
            n_epochs=args.epochs,
            n_rows=args.rows,
            seed=args.seed,
            attribution=args.attribution or "proportional",
            market=market,
            builds=builds,
        )
    factory = None
    if args.fair_slack is not None or args.slo_hours is not None:
        ceilings = None
        if args.slo_hours is not None:
            ceilings = {
                name: args.slo_hours
                for name in simulator.fleet.tenant_names
            }
        factory = simulator.fair_scenario_factory(
            max_share_slack=args.fair_slack,
            latency_ceilings=ceilings,
        )
    print(
        f"fleet: {simulator.fleet.describe()}; "
        f"attribution: {simulator.attributor.describe()}\n"
    )
    if args.shards is not None:
        return _run_simulate_sharded(args, simulator, factory)
    ledgers = simulator.compare(_simulate_policies(args, factory))
    for fleet_ledger in ledgers.values():
        if args.quiet:
            print(fleet_ledger.summary())
        else:
            print(fleet_ledger.render())
            _print_ledger_cache(fleet_ledger.fleet)
            print()
    _print_cache_stats(simulator.builder)
    return 0


def _run_simulate_sharded(args, simulator, factory) -> int:
    """The population-scale path: sharded, streaming attribution."""
    policies = _simulate_policies(args, factory)
    if args.tenant_csv is not None and len(policies) != 1:
        raise SimulationError(
            "--tenant-csv writes one policy's per-tenant totals; name "
            "a single --policy"
        )
    for policy in policies:
        summary = simulator.run_sharded(
            policy, shards=args.shards, jobs=args.jobs
        )
        if args.quiet:
            print(summary.summary())
        else:
            print(summary.render())
            print()
        if args.tenant_csv is not None:
            with open(
                args.tenant_csv, "w", encoding="utf-8", newline="\n"
            ) as handle:
                handle.write(summary.to_csv())
            print(f"tenant totals csv written to {args.tenant_csv}")
    _print_cache_stats(simulator.builder)
    return 0


def _run_explain(args: argparse.Namespace) -> int:
    entries = load_explain(args.log)
    if args.explain_command == "why-bill":
        print(why_bill(entries, args.epoch, tenant=args.tenant))
    elif args.explain_command == "why-reselect":
        print(why_reselect(entries, epoch=args.epoch))
    elif args.explain_command == "why-view":
        print(why_view(entries, args.view))
    else:  # diff
        print(diff_epochs(entries, args.from_epoch, args.to_epoch))
    return 0


@contextmanager
def _kernel_opt_out(args: argparse.Namespace) -> Iterator[None]:
    """Honour ``--no-kernel`` via the environment, scoped to the run.

    The env var (rather than threading a flag through every builder)
    is what lets Monte Carlo worker processes — fork and spawn alike —
    inherit the opt-out.
    """
    if not getattr(args, "no_kernel", False):
        yield
        return
    previous = os.environ.get(NO_KERNEL_ENV)
    os.environ[NO_KERNEL_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[NO_KERNEL_ENV]
        else:
            os.environ[NO_KERNEL_ENV] = previous


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        with _kernel_opt_out(args):
            if args.command == "simulate":
                return _run_simulate(args)
            if args.command == "explain":
                return _run_explain(args)
            if args.command == "list":
                for experiment_id in sorted(EXPERIMENTS):
                    print(experiment_id)
                return 0
            if args.command == "run":
                tables = run_experiment(
                    args.experiment, _context(args), csv_dir=args.csv_dir
                )
                for table in tables:
                    print(table.render())
                    print()
                return 0
            # args.command == "all"
            for experiment_id, tables in run_all(
                _context(args), csv_dir=args.csv_dir
            ).items():
                print(f"### {experiment_id}")
                for table in tables:
                    print(table.render())
                    print()
            return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
