"""Dimension hierarchies.

The paper's running dataset (Table 1) carries two hierarchies:
``day < month < year`` on time and ``department < region < country`` on
geography.  Queries and materialized views are group-bys at one *level*
per dimension; whether a view can answer a query is a per-dimension
comparison of levels, so levels need a total order within their
hierarchy.

Levels are ordered from **finest to coarsest**; index 0 is the finest.
Every hierarchy implicitly ends in the virtual level :data:`ALL`
(complete aggregation over the dimension), which is coarser than every
named level.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ..errors import SchemaError

__all__ = ["ALL", "Hierarchy", "Dimension"]

#: Virtual coarsest level: the dimension is fully aggregated away.
ALL = "ALL"


class Hierarchy:
    """A totally ordered list of aggregation levels, finest first.

    Examples
    --------
    >>> time = Hierarchy("time", ["day", "month", "year"])
    >>> time.is_finer_or_equal("day", "year")
    True
    >>> time.is_finer_or_equal("year", "month")
    False
    >>> time.is_finer_or_equal("month", ALL)
    True
    """

    def __init__(self, name: str, levels: Iterable[str]) -> None:
        self._name = name
        self._levels: Tuple[str, ...] = tuple(levels)
        if not self._levels:
            raise SchemaError(f"hierarchy {name!r} needs at least one level")
        if len(set(self._levels)) != len(self._levels):
            raise SchemaError(f"hierarchy {name!r} has duplicate levels")
        if ALL in self._levels:
            raise SchemaError(
                f"hierarchy {name!r} must not name the virtual level {ALL!r}"
            )
        self._index = {level: i for i, level in enumerate(self._levels)}

    @property
    def name(self) -> str:
        """The hierarchy's name (usually the dimension's name)."""
        return self._name

    @property
    def levels(self) -> Sequence[str]:
        """Named levels, finest first (excludes the virtual ALL)."""
        return self._levels

    @property
    def levels_with_all(self) -> Sequence[str]:
        """Named levels plus the virtual ALL, finest first."""
        return self._levels + (ALL,)

    @property
    def finest(self) -> str:
        """The finest named level (what fact rows are recorded at)."""
        return self._levels[0]

    def index_of(self, level: str) -> int:
        """Position of ``level``; ALL sits past the last named level."""
        if level == ALL:
            return len(self._levels)
        try:
            return self._index[level]
        except KeyError:
            raise SchemaError(
                f"hierarchy {self._name!r} has no level {level!r}; "
                f"known levels: {', '.join(self._levels)}"
            ) from None

    def is_finer_or_equal(self, a: str, b: str) -> bool:
        """True iff data at level ``a`` can be rolled up to level ``b``."""
        return self.index_of(a) <= self.index_of(b)

    def coarser_levels(self, level: str) -> Sequence[str]:
        """All levels strictly coarser than ``level``, including ALL."""
        return self.levels_with_all[self.index_of(level) + 1 :]

    def __contains__(self, level: str) -> bool:
        return level == ALL or level in self._index

    def __repr__(self) -> str:
        chain = " < ".join(self._levels)
        return f"Hierarchy({self._name!r}: {chain} < {ALL})"


class Dimension:
    """A dimension of the star schema: a hierarchy plus level fan-outs.

    ``level_cardinalities`` maps each named level to its number of
    distinct members (e.g. ``{"day": 3653, "month": 120, "year": 10}``).
    Cardinalities drive both synthetic data generation and analytic
    group-count estimation, so they live on the schema rather than the
    dataset.
    """

    def __init__(
        self,
        name: str,
        hierarchy: Hierarchy,
        level_cardinalities: "dict[str, int]",
    ) -> None:
        self._name = name
        self._hierarchy = hierarchy
        missing = [lv for lv in hierarchy.levels if lv not in level_cardinalities]
        if missing:
            raise SchemaError(
                f"dimension {name!r} lacks cardinalities for levels: {missing}"
            )
        extra = [lv for lv in level_cardinalities if lv not in hierarchy]
        if extra:
            raise SchemaError(
                f"dimension {name!r} has cardinalities for unknown levels: {extra}"
            )
        cards = [level_cardinalities[lv] for lv in hierarchy.levels]
        if any(c <= 0 for c in cards):
            raise SchemaError(f"dimension {name!r}: cardinalities must be positive")
        # A coarser level cannot have more members than a finer one.
        for finer, coarser, cf, cc in zip(
            hierarchy.levels, hierarchy.levels[1:], cards, cards[1:]
        ):
            if cc > cf:
                raise SchemaError(
                    f"dimension {name!r}: level {coarser!r} ({cc} members) "
                    f"cannot be larger than finer level {finer!r} ({cf})"
                )
        self._cardinalities = dict(level_cardinalities)

    @property
    def name(self) -> str:
        """The dimension name (e.g. ``"time"``)."""
        return self._name

    @property
    def hierarchy(self) -> Hierarchy:
        """The level ordering of this dimension."""
        return self._hierarchy

    def cardinality(self, level: str) -> int:
        """Number of distinct members at ``level`` (ALL has exactly 1)."""
        if level == ALL:
            return 1
        if level not in self._hierarchy:
            raise SchemaError(
                f"dimension {self._name!r} has no level {level!r}"
            )
        return self._cardinalities[level]

    def __repr__(self) -> str:
        return f"Dimension({self._name!r}, {self._hierarchy!r})"
