"""Star-schema descriptors.

A :class:`StarSchema` is the static shape of a dataset: dimensions with
hierarchies, measures, and the *logical* byte widths used by the size
model.  Byte widths are logical (what the data occupies as stored text
or packed records on the cluster) rather than in-memory numpy widths,
because the paper's cost models bill logical gigabytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from .hierarchy import ALL, Dimension
from ..errors import SchemaError

__all__ = ["Measure", "StarSchema", "Grain"]

#: A grain assigns one level (or ALL) to every dimension, in schema
#: dimension order — the coordinate of a cuboid in the lattice.
Grain = Tuple[str, ...]


@dataclass(frozen=True)
class Measure:
    """A numeric fact column aggregated by SUM.

    The paper's workload is "total profit per <levels>", so SUM is the
    only aggregate the engine needs; ``logical_bytes`` is the stored
    width of one value.
    """

    name: str
    logical_bytes: int = 8

    def __post_init__(self) -> None:
        if self.logical_bytes <= 0:
            raise SchemaError(f"measure {self.name!r}: bytes must be positive")


class StarSchema:
    """Dimensions + measures + logical widths for one dataset family.

    Parameters
    ----------
    name:
        Schema identifier (``"sales"``, ``"ssb"``).
    dimensions:
        The dimensions in canonical order; grains and cuboid
        coordinates follow this order.
    measures:
        Fact measures (all SUM-aggregated).
    level_bytes:
        Logical stored width of one value of each level column,
        keyed ``"dimension.level"``.  Defaults to 8 bytes per level
        value when a level is not listed.
    """

    def __init__(
        self,
        name: str,
        dimensions: Iterable[Dimension],
        measures: Iterable[Measure],
        level_bytes: Mapping[str, int] = (),
    ) -> None:
        self._name = name
        self._dimensions: Tuple[Dimension, ...] = tuple(dimensions)
        self._measures: Tuple[Measure, ...] = tuple(measures)
        if not self._dimensions:
            raise SchemaError(f"schema {name!r} needs at least one dimension")
        if not self._measures:
            raise SchemaError(f"schema {name!r} needs at least one measure")
        names = [d.name for d in self._dimensions]
        if len(set(names)) != len(names):
            raise SchemaError(f"schema {name!r} has duplicate dimension names")
        mnames = [m.name for m in self._measures]
        if len(set(mnames)) != len(mnames):
            raise SchemaError(f"schema {name!r} has duplicate measure names")
        self._by_name: Dict[str, Dimension] = {d.name: d for d in self._dimensions}
        self._level_bytes = dict(level_bytes)
        for key in self._level_bytes:
            dim_name, _, level = key.partition(".")
            if dim_name not in self._by_name:
                raise SchemaError(f"level_bytes references unknown dimension {key!r}")
            if level not in self._by_name[dim_name].hierarchy:
                raise SchemaError(f"level_bytes references unknown level {key!r}")

    # -- structure ----------------------------------------------------

    @property
    def name(self) -> str:
        """The schema identifier."""
        return self._name

    @property
    def dimensions(self) -> Sequence[Dimension]:
        """Dimensions in canonical (grain) order."""
        return self._dimensions

    @property
    def measures(self) -> Sequence[Measure]:
        """Fact measures."""
        return self._measures

    @property
    def dimension_names(self) -> Tuple[str, ...]:
        """Dimension names in canonical order."""
        return tuple(d.name for d in self._dimensions)

    def dimension(self, name: str) -> Dimension:
        """Look up a dimension by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self._name!r} has no dimension {name!r}; "
                f"known: {', '.join(self.dimension_names)}"
            ) from None

    # -- grains -------------------------------------------------------

    @property
    def base_grain(self) -> Grain:
        """The finest grain: every dimension at its finest level."""
        return tuple(d.hierarchy.finest for d in self._dimensions)

    @property
    def apex_grain(self) -> Grain:
        """The coarsest grain: every dimension fully aggregated."""
        return tuple(ALL for _ in self._dimensions)

    def validate_grain(self, grain: Sequence[str]) -> Grain:
        """Check a grain names one valid level per dimension."""
        grain = tuple(grain)
        if len(grain) != len(self._dimensions):
            raise SchemaError(
                f"grain {grain} has {len(grain)} entries; schema "
                f"{self._name!r} has {len(self._dimensions)} dimensions"
            )
        for dim, level in zip(self._dimensions, grain):
            if level not in dim.hierarchy:
                raise SchemaError(
                    f"dimension {dim.name!r} has no level {level!r}"
                )
        return grain

    def grain_from_mapping(self, levels: Mapping[str, str]) -> Grain:
        """Build a grain from a {dimension: level} mapping.

        Dimensions not mentioned default to ALL — matching how the
        paper phrases queries ("sales per year and country" leaves
        nothing else grouped).
        """
        unknown = set(levels) - set(self.dimension_names)
        if unknown:
            raise SchemaError(
                f"unknown dimensions in grain mapping: {sorted(unknown)}"
            )
        return self.validate_grain(
            tuple(levels.get(d.name, ALL) for d in self._dimensions)
        )

    def grain_answers(self, source: Sequence[str], target: Sequence[str]) -> bool:
        """True iff data at ``source`` grain can compute ``target`` grain.

        This is the lattice's partial order: the source must be
        finer-or-equal on *every* dimension (SUM is distributive, so
        rolling up per dimension is always sound).
        """
        source = self.validate_grain(source)
        target = self.validate_grain(target)
        return all(
            dim.hierarchy.is_finer_or_equal(s_level, t_level)
            for dim, s_level, t_level in zip(self._dimensions, source, target)
        )

    # -- size model ---------------------------------------------------

    def level_logical_bytes(self, dim_name: str, level: str) -> int:
        """Stored width of one value of ``dim.level`` (ALL stores nothing)."""
        if level == ALL:
            return 0
        return self._level_bytes.get(f"{dim_name}.{level}", 8)

    def row_logical_bytes(self, grain: Sequence[str]) -> int:
        """Stored width of one row at ``grain`` (levels + all measures)."""
        grain = self.validate_grain(grain)
        level_part = sum(
            self.level_logical_bytes(d.name, lv)
            for d, lv in zip(self._dimensions, grain)
        )
        measure_part = sum(m.logical_bytes for m in self._measures)
        return level_part + measure_part

    @property
    def fact_row_bytes(self) -> int:
        """Stored width of one base fact row (finest grain)."""
        return self.row_logical_bytes(self.base_grain)

    def __repr__(self) -> str:
        dims = ", ".join(self.dimension_names)
        return f"StarSchema({self._name!r}, dims=[{dims}])"
