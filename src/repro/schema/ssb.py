"""A Star Schema Benchmark-flavoured schema.

The paper's future work (Section 8) proposes validating the cost models
on "a full-fledged database or data warehouse benchmark, such as TPC-E
or the Star Schema Benchmark".  This module supplies an SSB-like star:
the LINEORDER fact with date, customer, supplier and part dimensions,
each with its SSB hierarchy, scaled by the usual SSB scale factor.

It is *SSB-like*, not a certified SSB implementation: cardinalities
follow O'Neil et al.'s scaling rules closely enough that the view
lattice has SSB's shape (a 4-dimensional lattice of 256 cuboids with
wildly varying cuboid sizes), which is what the optimizer experiments
need.
"""

from __future__ import annotations

from .hierarchy import Dimension, Hierarchy
from .star import Measure, StarSchema

__all__ = ["ssb_schema", "SSB_BASE_ROWS"]

#: LINEORDER rows at scale factor 1 (6 million in SSB).
SSB_BASE_ROWS = 6_000_000


def ssb_schema(scale_factor: float = 1.0) -> StarSchema:
    """Build the SSB-like schema at a given scale factor.

    Dimension cardinalities follow SSB's scaling: customers and
    suppliers grow with the scale factor, parts grow logarithmically
    (approximated here as a fixed 200k at SF>=1, scaled down linearly
    below), and the 7-year date dimension is fixed.
    """
    sf = max(scale_factor, 0.01)
    n_customers = max(int(30_000 * sf), 100)
    n_suppliers = max(int(2_000 * sf), 50)
    n_parts = max(int(200_000 * min(sf, 1.0)), 200)

    date = Dimension(
        "date",
        Hierarchy("date", ["day", "month", "year"]),
        {"day": 7 * 365, "month": 7 * 12, "year": 7},
    )
    customer = Dimension(
        "customer",
        Hierarchy("customer", ["city", "nation", "region"]),
        {"city": min(250, n_customers), "nation": 25, "region": 5},
    )
    supplier = Dimension(
        "supplier",
        Hierarchy("supplier", ["city", "nation", "region"]),
        {"city": min(250, n_suppliers), "nation": 25, "region": 5},
    )
    part = Dimension(
        "part",
        Hierarchy("part", ["brand", "category", "mfgr"]),
        {"brand": min(1000, n_parts), "category": 25, "mfgr": 5},
    )
    return StarSchema(
        "ssb",
        dimensions=[date, customer, supplier, part],
        measures=[
            Measure("revenue", logical_bytes=8),
            Measure("supplycost", logical_bytes=8),
        ],
        level_bytes={
            "date.day": 10,
            "date.month": 7,
            "date.year": 4,
            "customer.city": 10,
            "customer.nation": 15,
            "customer.region": 12,
            "supplier.city": 10,
            "supplier.nation": 15,
            "supplier.region": 12,
            "part.brand": 9,
            "part.category": 7,
            "part.mfgr": 6,
        },
    )
