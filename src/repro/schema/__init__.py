"""Star-schema descriptors: hierarchies, dimensions, measures, grains."""

from .hierarchy import ALL, Dimension, Hierarchy
from .sales import GEOGRAPHY, PROFIT, TIME, sales_schema
from .ssb import SSB_BASE_ROWS, ssb_schema
from .star import Grain, Measure, StarSchema

__all__ = [
    "ALL",
    "Dimension",
    "GEOGRAPHY",
    "Grain",
    "Hierarchy",
    "Measure",
    "PROFIT",
    "SSB_BASE_ROWS",
    "StarSchema",
    "TIME",
    "sales_schema",
    "ssb_schema",
]
