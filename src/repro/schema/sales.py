"""The paper's supply-chain sales schema (Section 2.1, Table 1).

Business users "analyze the total profit per day, month, and year; and
per administrative department, region, and country": a two-dimensional
star with hierarchies ``day < month < year`` and
``department < region < country`` over a single ``profit`` measure.

The paper says the full dataset "stores 10 years (2000-2010)" — an
off-by-one we resolve as 2000..2009 inclusive (10 years), configurable.
Geography defaults give 600 departments in 75 regions in 15 countries,
a European-administrative shape consistent with Table 1's example rows
(France > Auvergne > Puy-de-Dôme).
"""

from __future__ import annotations

from .hierarchy import Dimension, Hierarchy
from .star import Measure, StarSchema

__all__ = ["sales_schema", "TIME", "GEOGRAPHY", "PROFIT"]

#: Canonical dimension and measure names for the sales schema.
TIME = "time"
GEOGRAPHY = "geography"
PROFIT = "profit"


def sales_schema(
    n_years: int = 10,
    n_countries: int = 15,
    regions_per_country: int = 5,
    departments_per_region: int = 8,
) -> StarSchema:
    """Build the paper's sales star schema.

    Parameters mirror the dataset's shape knobs; defaults follow the
    paper's description (10 years of daily data) with a geography
    fan-out chosen to make fine-grain views meaningfully smaller than
    the fact table but far from trivial.
    """
    n_days = 365 * n_years
    n_months = 12 * n_years
    n_regions = n_countries * regions_per_country
    n_departments = n_regions * departments_per_region

    time = Dimension(
        TIME,
        Hierarchy(TIME, ["day", "month", "year"]),
        {"day": n_days, "month": n_months, "year": n_years},
    )
    geography = Dimension(
        GEOGRAPHY,
        Hierarchy(GEOGRAPHY, ["department", "region", "country"]),
        {
            "department": n_departments,
            "region": n_regions,
            "country": n_countries,
        },
    )
    return StarSchema(
        "sales",
        dimensions=[time, geography],
        measures=[Measure(PROFIT, logical_bytes=8)],
        level_bytes={
            # Logical stored widths (think CSV/SequenceFile fields):
            # dates are 10-byte ISO strings at day grain, 7 at month.
            "time.day": 10,
            "time.month": 7,
            "time.year": 4,
            "geography.department": 16,
            "geography.region": 12,
            "geography.country": 10,
        },
    )
