"""Ablations over the design choices DESIGN.md calls out.

Each ablation varies exactly one modelling decision and reports its
effect on the bill and/or the selection:

* **billing granularity** — the paper's "every started hour is charged"
  vs. per-minute/per-second metering,
* **tier semantics** — the paper's slab storage pricing vs. AWS's
  marginal tiers (including the non-monotonicity at band edges),
* **algorithms** — the paper's independent-benefit knapsack vs. the
  interaction-aware greedy vs. the exhaustive optimum vs. the
  price-blind HRU baseline,
* **elasticity** — scale-out (more instances) vs. materialized views,
  the tradeoff the paper's introduction frames,
* **tight-budget regime** — single-run billing with the paper's ~2x
  view speedups, the regime in which MV1's improvement rates grow with
  workload size the way the paper's Table 6 shows.
"""

from __future__ import annotations

from typing import List, Optional

from ..cube.hru import hru_select
from ..optimizer.scenarios import Tradeoff, mv1, mv2
from ..optimizer.selector import select_views
from ..pricing.compute import BillingGranularity
from ..pricing.providers import aws_2012, aws_2012_marginal
from ..pricing.tiers import TierMode
from .context import PAPER_WORKLOAD_SIZES, ExperimentContext
from .reporting import ReportTable, format_rate

__all__ = [
    "ablation_billing_granularity",
    "ablation_tier_semantics",
    "ablation_algorithms",
    "ablation_elasticity",
    "ablation_tight_budget",
    "ablation_hru_baseline",
    "ablation_cascade",
    "ablation_maintenance_policy",
    "ablation_elastic_joint",
    "ablation_all",
]


def ablation_billing_granularity(
    base_context: Optional[ExperimentContext] = None,
    m: int = 5,
) -> ReportTable:
    """Effect of hour round-up on the m-query baseline and MV2 choice."""
    base_context = base_context if base_context is not None else ExperimentContext()
    table = ReportTable(
        f"Ablation — billing granularity (m={m})",
        [
            "granularity",
            "C/run without",
            "C/run with MV (MV2)",
            "IC rate",
            "views",
        ],
    )
    for granularity in BillingGranularity:
        context = base_context.with_config(billing=granularity)
        result = select_views(
            context.problem(m), mv2(context.paper_time_limit(m)), "knapsack"
        )
        table.add_row(
            granularity.value,
            str(context.per_run_cost(result.baseline.total_cost)),
            str(context.per_run_cost(result.outcome.total_cost)),
            format_rate(result.cost_improvement),
            ",".join(sorted(result.selected_views)) or "-",
        )
    return table


def ablation_tier_semantics() -> ReportTable:
    """Slab vs. marginal storage pricing on representative volumes.

    Slab pricing (the paper's Example 3 reading) is non-monotonic at
    band edges: the row pair around 1 TB shows a *larger* volume
    billing *less*.  Marginal pricing has no such cliff.
    """
    slab = aws_2012().storage
    marginal = aws_2012_marginal().storage
    table = ReportTable(
        "Ablation — storage tier semantics (monthly bill)",
        ["volume (GB)", "slab (paper)", "marginal (AWS)", "note"],
    )
    volumes = [512.0, 1023.0, 1024.0, 2560.0, 10 * 1024.0, 100 * 1024.0]
    for volume in volumes:
        note = ""
        if volume == 1024.0:
            note = "slab bills 1024 GB below 1023 GB: band-edge cliff"
        table.add_row(
            volume,
            str(slab.monthly_cost(volume)),
            str(marginal.monthly_cost(volume)),
            note,
        )
    assert slab.schedule.mode is TierMode.SLAB
    assert marginal.schedule.mode is TierMode.MARGINAL
    return table


def ablation_algorithms(
    context: Optional[ExperimentContext] = None,
    m: int = 10,
) -> ReportTable:
    """Knapsack vs. greedy vs. exhaustive on all three scenarios."""
    context = context if context is not None else ExperimentContext()
    problem = context.problem(m)
    cost_scale = 1.0 / context.config.runs_per_period
    scenarios = [
        ("MV1", mv1(context.paper_budget(m))),
        ("MV2", mv2(context.paper_time_limit(m))),
        ("MV3 a=0.3", Tradeoff(alpha=0.3, cost_scale=cost_scale)),
    ]
    table = ReportTable(
        f"Ablation — selection algorithms (m={m})",
        ["scenario", "algorithm", "T (h)", "C/run", "views"],
    )
    for label, scenario in scenarios:
        for algorithm in ("knapsack", "greedy", "exhaustive"):
            result = select_views(problem, scenario, algorithm)
            table.add_row(
                label,
                algorithm,
                round(result.outcome.processing_hours, 4),
                str(context.per_run_cost(result.outcome.total_cost)),
                ",".join(sorted(result.selected_views)) or "-",
            )
    return table


def ablation_elasticity(
    base_context: Optional[ExperimentContext] = None,
    m: int = 5,
    instance_counts: Optional[List[int]] = None,
) -> ReportTable:
    """Scale-out vs. views: vary the fleet, with and without views.

    The without-views column is pure scale-out (the paper's "raw
    scalability"); the with-views column runs MV3 (alpha = 0.5) at each
    fleet size.  Views beat scale-out at every size, and scale-out's
    returns flatten (job overhead does not parallelize) while its bill
    keeps climbing — the observation motivating the paper.
    """
    base_context = base_context if base_context is not None else ExperimentContext()
    counts = instance_counts if instance_counts is not None else [1, 2, 5, 10, 20]
    table = ReportTable(
        f"Ablation — scale-out vs. views (m={m}, MV3 alpha=0.5)",
        [
            "instances",
            "T without (h)",
            "C/run without",
            "T with MV (h)",
            "C/run with MV",
        ],
    )
    for n in counts:
        context = base_context.with_config(n_instances=n)
        problem = context.problem(m)
        scenario = Tradeoff(
            alpha=0.5, cost_scale=1.0 / context.config.runs_per_period
        )
        result = select_views(problem, scenario, "greedy")
        table.add_row(
            n,
            round(result.baseline.processing_hours, 4),
            str(context.per_run_cost(result.baseline.total_cost)),
            round(result.outcome.processing_hours, 4),
            str(context.per_run_cost(result.outcome.total_cost)),
        )
    return table


def ablation_tight_budget(
    base_context: Optional[ExperimentContext] = None,
) -> ReportTable:
    """MV1 in the paper's regime: single run, ~2x view speedups.

    In the steady-state context views amortize so well they pay for
    themselves and the budget never binds (Table 6's measured rates sit
    near the physics cap).  Billing a *single* workload run, with view
    speedups capped at the ~2x the paper's own running example reports,
    makes the paper's budgets genuinely bind — and the improvement
    rates grow with workload size, the shape of the paper's Table 6.
    """
    base_context = base_context if base_context is not None else ExperimentContext()
    context = base_context.with_config(
        runs_per_period=1.0,
        view_speedup_cap=2.5,
        storage_months=0.21,         # the experiment's ~6-day window
        maintenance_cycles=1,
        materialization_write_factor=2.0,
    )
    table = ReportTable(
        "Ablation — MV1 under tight budgets (single run, 2.5x speedup cap)",
        [
            "queries",
            "budget",
            "T without (h)",
            "T with MV (h)",
            "IP rate (measured)",
            "IP rate (paper)",
        ],
    )
    paper_rates = {3: 0.25, 5: 0.36, 10: 0.60}
    for m in PAPER_WORKLOAD_SIZES:
        budget = context.paper_budget(m)
        result = select_views(context.problem(m), mv1(budget), "exhaustive")
        table.add_row(
            m,
            str(budget),
            round(result.baseline.processing_hours, 4),
            round(result.outcome.processing_hours, 4),
            format_rate(result.time_improvement),
            format_rate(paper_rates[m]),
        )
    return table


def ablation_hru_baseline(
    context: Optional[ExperimentContext] = None,
    m: int = 10,
) -> ReportTable:
    """Price-blind HRU vs. the cloud-aware MV1 knapsack.

    HRU picks views by row-count benefit alone (no dollars); both
    selections are then priced identically.  The cloud-aware pick
    matches HRU's response time at lower (or equal) cost, or buys time
    HRU leaves on the table — the paper's core argument for
    pricing-aware selection.
    """
    context = context if context is not None else ExperimentContext()
    problem = context.problem(m)
    inputs = problem.inputs

    view_rows = {name: stats.rows for name, stats in inputs.view_stats.items()}
    base_rows = context.dataset.size_model.logical_rows(
        context.dataset.fact.n_rows
    )
    budget = context.paper_budget(m)
    mv1_result = select_views(problem, mv1(budget), "knapsack")
    hru_k = max(len(mv1_result.selected_views), 1)
    hru = hru_select(
        context.lattice,
        inputs.workload,
        list(inputs.candidates),
        view_rows,
        base_rows,
        k=hru_k,
    )
    hru_outcome = problem.evaluate(frozenset(v.name for v in hru.selected))

    table = ReportTable(
        f"Ablation — HRU baseline vs. MV1 knapsack (m={m}, k={hru_k})",
        ["selector", "T (h)", "C/run", "views"],
    )
    table.add_row(
        "HRU (price-blind)",
        round(hru_outcome.processing_hours, 4),
        str(context.per_run_cost(hru_outcome.total_cost)),
        ",".join(sorted(hru_outcome.subset)) or "-",
    )
    table.add_row(
        "MV1 knapsack (cloud-aware)",
        round(mv1_result.outcome.processing_hours, 4),
        str(context.per_run_cost(mv1_result.outcome.total_cost)),
        ",".join(sorted(mv1_result.selected_views)) or "-",
    )
    table.add_row(
        "no views",
        round(mv1_result.baseline.processing_hours, 4),
        str(context.per_run_cost(mv1_result.baseline.total_cost)),
        "-",
    )
    return table


def ablation_cascade(
    base_context: Optional[ExperimentContext] = None,
    m: int = 10,
) -> ReportTable:
    """Paper's Formula 7 vs. cascaded materialization (build_plan).

    The paper charges every view a full base scan; pipelining builds
    coarser views from finer ones already materialized.  The ablation
    prices the same all-candidates subset both ways.
    """
    from dataclasses import replace as dc_replace

    from ..costmodel.estimator import PlanningEstimator

    base_context = base_context if base_context is not None else ExperimentContext()
    table = ReportTable(
        f"Ablation — materialization strategy (m={m}, all candidates)",
        ["strategy", "mat. hours", "base scans", "C/run"],
    )
    for cascade, label in ((False, "independent (paper, Formula 7)"),
                           (True, "cascaded (build from parents)")):
        deployment = dc_replace(
            base_context.deployment, cascade_materialization=cascade
        )
        estimator = PlanningEstimator(base_context.dataset, deployment)
        workload = base_context.workload(m)
        candidates = base_context.problem(m).inputs.candidates
        inputs = estimator.build(workload, list(candidates))
        subset = frozenset(c.name for c in candidates)
        plan = inputs.plan_for(subset)
        from ..costmodel.total import CloudCostModel

        outcome = CloudCostModel(deployment).evaluate(plan)
        if cascade:
            from ..cube.build_plan import plan_builds

            build = plan_builds(
                workload.schema,
                [inputs.view_stats[name] for name in sorted(subset)],
                inputs.dataset_gb,
                deployment.job_hours,
                deployment.materialization_write_factor,
            )
            scans = build.base_scans
        else:
            scans = len(subset)
        table.add_row(
            label,
            round(sum(plan.materialization_hours), 3),
            scans,
            str(base_context.per_run_cost(outcome.total)),
        )
    return table


def ablation_maintenance_policy(
    base_context: Optional[ExperimentContext] = None,
    m: int = 5,
) -> ReportTable:
    """Incremental vs. full-rebuild vs. per-view-cheapest maintenance."""
    from dataclasses import replace as dc_replace

    from ..costmodel.estimator import PlanningEstimator
    from ..costmodel.maintenance import MaintenancePolicy
    from ..costmodel.total import CloudCostModel

    base_context = base_context if base_context is not None else ExperimentContext()
    table = ReportTable(
        f"Ablation — maintenance policy (m={m}, all candidates)",
        ["policy", "maint. hours/period", "C/run"],
    )
    workload = base_context.workload(m)
    candidates = list(base_context.problem(m).inputs.candidates)
    subset = frozenset(c.name for c in candidates)
    for policy in MaintenancePolicy:
        deployment = dc_replace(
            base_context.deployment, maintenance_policy=policy
        )
        inputs = PlanningEstimator(base_context.dataset, deployment).build(
            workload, candidates
        )
        plan = inputs.plan_for(subset)
        outcome = CloudCostModel(deployment).evaluate(plan)
        table.add_row(
            policy.value,
            round(sum(plan.maintenance_hours), 3),
            str(base_context.per_run_cost(outcome.total)),
        )
    return table


def ablation_elastic_joint(
    base_context: Optional[ExperimentContext] = None,
    m: int = 5,
) -> ReportTable:
    """Joint (views, fleet) choice vs. pure scale-out (paper §8).

    MV2 with a deadline *below* the five-instance baseline: pure
    scale-out must rent a big fleet; the elastic optimizer meets the
    same deadline with views on a small one.
    """
    from ..optimizer.elastic import elastic_select, scale_out_only

    base_context = base_context if base_context is not None else ExperimentContext()
    problems = base_context.elastic_problems(m, [1, 2, 3, 5, 8, 12, 20])
    limit = problems[5].baseline().processing_hours * 0.8
    scenario = mv2(limit)

    table = ReportTable(
        f"Ablation — elasticity: views vs. scale-out (m={m}, "
        f"Tl={limit:.3f} h)",
        ["strategy", "instances", "T (h)", "C/run", "views"],
    )
    n, scale_out = scale_out_only(problems, scenario)
    table.add_row(
        "scale-out only",
        n,
        round(scale_out.outcome.processing_hours, 4),
        str(base_context.per_run_cost(scale_out.outcome.total_cost)),
        "-",
    )
    choice = elastic_select(problems, scenario, "greedy")
    table.add_row(
        "views + elastic fleet",
        choice.n_instances,
        round(choice.result.outcome.processing_hours, 4),
        str(base_context.per_run_cost(choice.result.outcome.total_cost)),
        ",".join(sorted(choice.selected_views)) or "-",
    )
    return table


def ablation_all(
    context: Optional[ExperimentContext] = None,
) -> List[ReportTable]:
    """Every ablation on one shared context."""
    context = context if context is not None else ExperimentContext()
    return [
        ablation_billing_granularity(context),
        ablation_tier_semantics(),
        ablation_algorithms(context),
        ablation_elasticity(context),
        ablation_tight_budget(context),
        ablation_hru_baseline(context),
        ablation_cascade(context),
        ablation_maintenance_policy(context),
        ablation_elastic_joint(context),
    ]
