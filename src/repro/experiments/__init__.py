"""Experiments regenerating the paper's tables and figures."""

from .ablations import (
    ablation_algorithms,
    ablation_all,
    ablation_billing_granularity,
    ablation_cascade,
    ablation_elastic_joint,
    ablation_elasticity,
    ablation_hru_baseline,
    ablation_maintenance_policy,
    ablation_tier_semantics,
    ablation_tight_budget,
)
from .context import PAPER_WORKLOAD_SIZES, ExperimentConfig, ExperimentContext
from .figure5 import figure5_all, figure5a, figure5b, figure5c, figure5d
from .reporting import ReportTable, format_rate, render_table, write_csv
from .robustness import ablation_workload_drift
from .runner import EXPERIMENTS, run_all, run_experiment
from .running_example import intro_example_table, running_example_table
from .ssb import ssb_experiment, ssb_problem, ssb_workload
from .tables import PAPER_RATES, table6, table7, table8

__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentContext",
    "PAPER_RATES",
    "PAPER_WORKLOAD_SIZES",
    "ReportTable",
    "ablation_algorithms",
    "ablation_all",
    "ablation_billing_granularity",
    "ablation_cascade",
    "ablation_elastic_joint",
    "ablation_elasticity",
    "ablation_hru_baseline",
    "ablation_maintenance_policy",
    "ablation_tier_semantics",
    "ablation_tight_budget",
    "ablation_workload_drift",
    "figure5_all",
    "figure5a",
    "figure5b",
    "figure5c",
    "figure5d",
    "format_rate",
    "intro_example_table",
    "render_table",
    "run_all",
    "run_experiment",
    "running_example_table",
    "ssb_experiment",
    "ssb_problem",
    "ssb_workload",
    "table6",
    "table7",
    "table8",
    "write_csv",
]
