"""The shared experimental setup for Section 6's figures and tables.

One :class:`ExperimentContext` reproduces the paper's experimental
world end to end:

* the 10 GB sales dataset (Section 6.1) as a scaled synthetic table,
* the 5-instance cluster priced at AWS small-instance rates,
* the 10-query roll-up workload with its m = 3/5/10 sub-workloads,
* candidate views = the workload's own grains (the classical
  query-grain generator standing in for the paper's external method),
* a steady-state billing period: the workload runs daily for a month,
  views are materialized once and refreshed daily, and monetary
  figures are reported *per workload run* so they compare directly
  with the paper's dollar axes (budgets of $0.8-$2.4).

Every knob is a constructor parameter so ablations can vary one at a
time; the defaults are the calibration DESIGN.md documents.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from ..costmodel.estimator import PlanningEstimator, PlanningInputs
from ..costmodel.params import DeploymentSpec
from ..cube.candidates import candidates_from_workload, enumerate_candidates
from ..cube.lattice import CuboidLattice
from ..data.generator import Dataset
from ..data.sales_generator import generate_sales
from ..engine.timing import ClusterTimingModel
from ..errors import ExperimentError
from ..money import Money
from ..optimizer.problem import SelectionProblem
from ..pricing.compute import BillingGranularity
from ..pricing.providers import Provider, aws_2012

__all__ = ["ExperimentConfig", "ExperimentContext", "PAPER_WORKLOAD_SIZES"]

#: The paper's three workload sizes (Section 6.2).
PAPER_WORKLOAD_SIZES: Tuple[int, ...] = (3, 5, 10)

#: The paper's per-size budget limits (Table 6) and time limits (Table 7).
PAPER_BUDGETS: Dict[int, str] = {3: "0.8", 5: "1.2", 10: "2.4"}
PAPER_TIME_LIMITS: Dict[int, float] = {3: 0.57, 5: 0.99, 10: 2.24}


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of the Section 6 reproduction."""

    #: Physical fact rows to generate (logical size is ``dataset_gb``).
    n_rows: int = 120_000
    dataset_gb: float = 10.0
    seed: int = 42
    n_instances: int = 5
    instance_type: str = "small"
    #: Cluster physics (calibrated; see DESIGN.md section 6).
    scan_mb_per_s_per_cu: float = 3.6
    job_overhead_s: float = 60.0
    per_group_us: float = 25.0
    parallel_efficiency: float = 0.9
    #: Steady-state billing: daily workload runs over a month.
    runs_per_period: float = 30.0
    storage_months: float = 1.0
    maintenance_cycles: int = 30
    update_fraction_per_cycle: float = 0.01
    materialization_write_factor: float = 2.0
    view_speedup_cap: Optional[float] = None
    #: 'workload' (query grains, the paper regime) or 'lattice'.
    candidate_source: str = "workload"
    billing: BillingGranularity = BillingGranularity.PER_SECOND

    def __post_init__(self) -> None:
        if self.candidate_source not in ("workload", "lattice"):
            raise ExperimentError(
                "candidate_source must be 'workload' or 'lattice'"
            )


class ExperimentContext:
    """Reusable world: dataset + lattice + per-m selection problems."""

    def __init__(
        self,
        config: ExperimentConfig = ExperimentConfig(),
        provider: Optional[Provider] = None,
    ) -> None:
        self._config = config
        self._provider = provider if provider is not None else aws_2012(config.billing)
        self._dataset = generate_sales(
            n_rows=config.n_rows,
            seed=config.seed,
            target_gb=config.dataset_gb,
        )
        self._lattice = CuboidLattice(self._dataset.schema)
        self._deployment = DeploymentSpec(
            provider=self._provider,
            instance_type=config.instance_type,
            n_instances=config.n_instances,
            timing=ClusterTimingModel(
                scan_mb_per_s_per_cu=config.scan_mb_per_s_per_cu,
                job_overhead_s=config.job_overhead_s,
                per_group_us=config.per_group_us,
                parallel_efficiency=config.parallel_efficiency,
            ),
            storage_months=config.storage_months,
            maintenance_cycles=config.maintenance_cycles,
            update_fraction_per_cycle=config.update_fraction_per_cycle,
            runs_per_period=config.runs_per_period,
            materialization_write_factor=config.materialization_write_factor,
            view_speedup_cap=config.view_speedup_cap,
        )
        self._estimator = PlanningEstimator(self._dataset, self._deployment)
        self._problems: Dict[int, SelectionProblem] = {}

    # -- accessors ------------------------------------------------------

    @property
    def config(self) -> ExperimentConfig:
        """The knobs this context was built with."""
        return self._config

    @property
    def dataset(self) -> Dataset:
        """The generated sales dataset."""
        return self._dataset

    @property
    def lattice(self) -> CuboidLattice:
        """The sales cuboid lattice."""
        return self._lattice

    @property
    def deployment(self) -> DeploymentSpec:
        """The priced cluster the workloads run on."""
        return self._deployment

    def with_config(self, **overrides) -> "ExperimentContext":
        """A sibling context with some knobs changed (for ablations)."""
        return ExperimentContext(
            replace(self._config, **overrides), provider=None
        )

    # -- problems ---------------------------------------------------------

    def workload(self, m: int):
        """The m-query paper workload."""
        from ..workload.workload import paper_sales_workload

        return paper_sales_workload(self._dataset.schema, m)

    def inputs(self, m: int) -> PlanningInputs:
        """Planning inputs for the m-query workload."""
        return self.problem(m).inputs

    def problem(self, m: int) -> SelectionProblem:
        """The (cached) selection problem for the m-query workload."""
        if m not in self._problems:
            workload = self.workload(m)
            if self._config.candidate_source == "workload":
                candidates = candidates_from_workload(self._lattice, workload)
            else:
                candidates = enumerate_candidates(self._lattice, workload)
            inputs = self._estimator.build(workload, candidates)
            self._problems[m] = SelectionProblem(inputs)
        return self._problems[m]

    def elastic_problems(
        self, m: int, instance_counts: Sequence[int]
    ) -> Dict[int, SelectionProblem]:
        """One selection problem per candidate fleet size.

        Feed the result to :func:`repro.optimizer.elastic_select` to
        choose views and fleet size jointly (the paper's §8 "variable
        resources" extension).
        """
        problems: Dict[int, SelectionProblem] = {}
        for n in instance_counts:
            sibling = self.with_config(n_instances=n)
            problems[n] = sibling.problem(m)
        return problems

    # -- the paper's per-m scenario parameters ---------------------------

    def paper_budget(self, m: int) -> Money:
        """Table 6's budget limit for the m-query workload (per run)."""
        try:
            per_run = PAPER_BUDGETS[m]
        except KeyError:
            raise ExperimentError(
                f"the paper defines budgets for m in {sorted(PAPER_BUDGETS)}"
            ) from None
        # Scenario constraints compare against the *period* bill; the
        # paper's dollar figures are per workload run.
        return Money(per_run) * self._config.runs_per_period

    def paper_time_limit(self, m: int) -> float:
        """Table 7's response-time limit for the m-query workload."""
        try:
            return PAPER_TIME_LIMITS[m]
        except KeyError:
            raise ExperimentError(
                f"the paper defines time limits for m in {sorted(PAPER_TIME_LIMITS)}"
            ) from None

    def per_run_cost(self, period_cost: Money) -> Money:
        """Amortize a period bill to one workload run (report scale)."""
        return period_cost / self._config.runs_per_period
