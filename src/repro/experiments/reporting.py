"""Report rendering: ASCII tables and CSV emission.

The benchmark harness prints the same rows the paper's tables report;
this module owns the formatting so experiments stay purely numeric.
No plotting dependency is available offline, so "figures" are emitted
as aligned series tables plus CSV files that any plotting tool can
ingest.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["render_table", "write_csv", "format_rate", "ReportTable"]

Cell = Union[str, int, float]


def format_rate(fraction: float) -> str:
    """A fraction as the paper prints rates: '60%'."""
    return f"{fraction * 100.0:.0f}%"


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    text_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in text_rows)
    return "\n".join(lines)


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
) -> Path:
    """Write rows as CSV, creating parent directories; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path


class ReportTable:
    """A headers+rows pair that renders, CSVs, and compares itself."""

    def __init__(
        self,
        title: str,
        headers: Sequence[str],
        rows: Optional[List[List[Cell]]] = None,
    ) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[Cell]] = rows if rows is not None else []

    def add_row(self, *cells: Cell) -> None:
        """Append one row (cell count checked at render time)."""
        self.rows.append(list(cells))

    def render(self) -> str:
        """The aligned ASCII form."""
        return render_table(self.headers, self.rows, self.title)

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the table to a CSV file."""
        return write_csv(path, self.headers, self.rows)

    def to_csv_text(self) -> str:
        """The CSV form as a string (used by tests)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def column(self, name: str) -> List[Cell]:
        """All values of one column (used by assertions in benches)."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]
