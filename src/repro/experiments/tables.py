"""Tables 6, 7 and 8: the paper's improvement-rate tables.

Each table derives from the corresponding Figure 5 panel and prints the
measured rate next to the value the paper reports, so a reader can see
the reproduction band at a glance.  EXPERIMENTS.md discusses where and
why the measured rates sit above the paper's (our Hadoop-calibrated
physics reward views more than the paper's illustrative numbers do).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..optimizer.scenarios import Tradeoff, mv1, mv2
from ..optimizer.selector import select_views
from .context import PAPER_WORKLOAD_SIZES, ExperimentContext
from .reporting import ReportTable, format_rate

__all__ = ["table6", "table7", "table8", "PAPER_RATES"]

#: The rates the paper prints, for side-by-side comparison.
PAPER_RATES: Dict[str, Dict[int, float]] = {
    "table6": {3: 0.25, 5: 0.36, 10: 0.60},
    "table7": {3: 0.75, 5: 0.72, 10: 0.75},
    "table8_alpha03": {3: 0.55, 5: 0.50, 10: 0.68},
    "table8_alpha07": {3: 0.32, 5: 0.35, 10: 0.45},
}


def table6(
    context: Optional[ExperimentContext] = None,
    algorithm: str = "knapsack",
) -> ReportTable:
    """Table 6: MV1 improved-performance (IP) rates per budget."""
    context = context if context is not None else ExperimentContext()
    table = ReportTable(
        "Table 6 — MV1 improved performance rates",
        ["queries", "budget/run", "IP rate (measured)", "IP rate (paper)"],
    )
    for m in PAPER_WORKLOAD_SIZES:
        result = select_views(
            context.problem(m), mv1(context.paper_budget(m)), algorithm
        )
        table.add_row(
            m,
            str(context.per_run_cost(context.paper_budget(m))),
            format_rate(result.time_improvement),
            format_rate(PAPER_RATES["table6"][m]),
        )
    return table


def table7(
    context: Optional[ExperimentContext] = None,
    algorithm: str = "knapsack",
) -> ReportTable:
    """Table 7: MV2 improved-cost (IC) rates per time limit."""
    context = context if context is not None else ExperimentContext()
    table = ReportTable(
        "Table 7 — MV2 improved cost rates",
        ["queries", "time limit (h)", "IC rate (measured)", "IC rate (paper)"],
    )
    for m in PAPER_WORKLOAD_SIZES:
        result = select_views(
            context.problem(m), mv2(context.paper_time_limit(m)), algorithm
        )
        table.add_row(
            m,
            context.paper_time_limit(m),
            format_rate(result.cost_improvement),
            format_rate(PAPER_RATES["table7"][m]),
        )
    return table


def table8(
    context: Optional[ExperimentContext] = None,
    algorithm: str = "knapsack",
) -> ReportTable:
    """Table 8: MV3 improved-tradeoff rates for alpha = 0.3 and 0.7."""
    context = context if context is not None else ExperimentContext()
    cost_scale = 1.0 / context.config.runs_per_period
    table = ReportTable(
        "Table 8 — MV3 improved tradeoff rates",
        [
            "queries",
            "rate a=0.3 (measured)",
            "rate a=0.3 (paper)",
            "rate a=0.7 (measured)",
            "rate a=0.7 (paper)",
        ],
    )
    for m in PAPER_WORKLOAD_SIZES:
        rates = {}
        for alpha in (0.3, 0.7):
            scenario = Tradeoff(alpha=alpha, cost_scale=cost_scale)
            result = select_views(context.problem(m), scenario, algorithm)
            rates[alpha] = result.objective_improvement()
        table.add_row(
            m,
            format_rate(rates[0.3]),
            format_rate(PAPER_RATES["table8_alpha03"][m]),
            format_rate(rates[0.7]),
            format_rate(PAPER_RATES["table8_alpha07"][m]),
        )
    return table
