"""The paper's proposed wider validation: an SSB-like warehouse.

Section 8 plans to rerun the study on "a full-fledged ... benchmark,
such as TPC-E or the Star Schema Benchmark".  This experiment does so:
a 4-dimensional SSB-like star (256-cuboid lattice), a drill-down
workload shaped like SSB's query flights, and the same three scenarios.

The headline finding transfers: views pay for themselves at steady
state on every scenario, and the knapsack's selections stay within a
few percent of the interaction-aware greedy.
"""

from __future__ import annotations

from typing import Optional

from ..costmodel.estimator import PlanningEstimator
from ..costmodel.params import DeploymentSpec
from ..cube.candidates import candidates_from_workload
from ..cube.lattice import CuboidLattice
from ..data.ssb_generator import generate_ssb
from ..engine.timing import ClusterTimingModel
from ..optimizer.problem import SelectionProblem
from ..optimizer.scenarios import Tradeoff, mv1, mv2
from ..optimizer.selector import select_views
from ..pricing.compute import BillingGranularity
from ..pricing.providers import aws_2012
from ..schema.hierarchy import ALL
from ..workload.query import AggregateQuery
from ..workload.workload import Workload
from .reporting import ReportTable, format_rate

__all__ = ["ssb_problem", "ssb_workload", "ssb_experiment"]

#: SSB-flavoured query flights: drill-downs along date x one dimension.
_SSB_GRAINS = [
    # Flight 1: revenue by time, drilling into customer region.
    ("year", "region", ALL, ALL),
    ("month", "region", ALL, ALL),
    ("month", "nation", ALL, ALL),
    # Flight 2: supplier-side roll-ups.
    ("year", ALL, "region", ALL),
    ("year", ALL, "nation", ALL),
    ("month", ALL, "nation", ALL),
    # Flight 3: part-category profitability.
    ("year", ALL, ALL, "mfgr"),
    ("year", ALL, ALL, "category"),
    ("month", ALL, ALL, "category"),
    # Flight 4: the wide dice.
    ("year", "region", "region", "mfgr"),
    ("year", "nation", ALL, "category"),
    ("month", "region", ALL, "mfgr"),
]


def ssb_workload(schema) -> Workload:
    """The 12-query SSB-like workload (grains in dimension order)."""
    queries = [
        AggregateQuery(f"Q{i + 1}", schema.validate_grain(grain))
        for i, grain in enumerate(_SSB_GRAINS)
    ]
    return Workload(schema, queries)


def ssb_problem(
    n_rows: int = 150_000,
    dataset_gb: float = 60.0,
    n_instances: int = 8,
    seed: int = 7,
) -> SelectionProblem:
    """Build the SSB selection problem (60 GB logical, 8 instances)."""
    dataset = generate_ssb(n_rows=n_rows, seed=seed, target_gb=dataset_gb)
    deployment = DeploymentSpec(
        provider=aws_2012(BillingGranularity.PER_SECOND),
        instance_type="large",
        n_instances=n_instances,
        timing=ClusterTimingModel(),
        storage_months=1.0,
        maintenance_cycles=30,
        update_fraction_per_cycle=0.01,
        runs_per_period=30.0,
        materialization_write_factor=2.0,
    )
    lattice = CuboidLattice(dataset.schema)
    workload = ssb_workload(dataset.schema)
    candidates = candidates_from_workload(lattice, workload)
    estimator = PlanningEstimator(dataset, deployment)
    return SelectionProblem(estimator.build(workload, candidates))


def ssb_experiment(
    problem: Optional[SelectionProblem] = None,
    algorithm: str = "greedy",
) -> ReportTable:
    """All three scenarios on the SSB problem."""
    problem = problem if problem is not None else ssb_problem()
    baseline = problem.baseline()
    runs = problem.inputs.deployment.runs_per_period
    budget = baseline.total_cost * 1.2
    limit = baseline.processing_hours
    scenarios = [
        ("MV1 (budget = 1.2x base)", mv1(budget)),
        ("MV2 (limit = base T)", mv2(limit)),
        ("MV3 a=0.5", Tradeoff(alpha=0.5, cost_scale=1.0 / runs)),
    ]
    table = ReportTable(
        "SSB experiment — scenarios on the 4-dimensional star",
        ["scenario", "T (h)", "C/run", "dT", "dC", "views"],
    )
    table.add_row(
        "no views",
        round(baseline.processing_hours, 4),
        str(baseline.total_cost / runs),
        "-",
        "-",
        "-",
    )
    for label, scenario in scenarios:
        result = select_views(problem, scenario, algorithm)
        table.add_row(
            label,
            round(result.outcome.processing_hours, 4),
            str(result.outcome.total_cost / runs),
            format_rate(result.time_improvement),
            format_rate(result.cost_improvement),
            ",".join(sorted(result.selected_views)) or "-",
        )
    return table
