"""Figure 5: the paper's four experimental panels.

Each panel compares the workload **with** materialized views (the
scenario's optimizer output) against **without** (the empty view set)
for m = 3, 5, 10 queries:

* (a) MV1 — response time under the paper's budget limits,
* (b) MV2 — monetary cost under the paper's response-time limits,
* (c) MV3 with α = 0.3 — the weighted tradeoff objective,
* (d) MV3 with α = 0.65 — ditto (the figure's caption says 0.65; the
  paper's Table 8 uses 0.7, reproduced in :mod:`repro.experiments.tables`).

Monetary values are reported per workload run (period bill divided by
runs per period), the scale of the paper's dollar axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..optimizer.scenarios import Tradeoff, mv1, mv2
from ..optimizer.selector import SelectionResult, select_views
from .context import PAPER_WORKLOAD_SIZES, ExperimentContext
from .reporting import ReportTable, format_rate

__all__ = [
    "Figure5Point",
    "figure5a",
    "figure5b",
    "figure5c",
    "figure5d",
    "figure5_all",
]


@dataclass(frozen=True)
class Figure5Point:
    """One (panel, m) comparison: baseline vs. optimizer outcome."""

    m: int
    result: SelectionResult

    @property
    def without_hours(self) -> float:
        return self.result.baseline.processing_hours

    @property
    def with_hours(self) -> float:
        return self.result.outcome.processing_hours


def _run_panel(
    context: ExperimentContext,
    scenario_for_m,
    algorithm: str,
    sizes: Sequence[int],
) -> List[Figure5Point]:
    points = []
    for m in sizes:
        problem = context.problem(m)
        result = select_views(problem, scenario_for_m(m, problem), algorithm)
        points.append(Figure5Point(m=m, result=result))
    return points


def figure5a(
    context: ExperimentContext,
    algorithm: str = "knapsack",
    sizes: Sequence[int] = PAPER_WORKLOAD_SIZES,
) -> ReportTable:
    """Panel (a): MV1 response times under the paper's budgets."""
    points = _run_panel(
        context,
        lambda m, _problem: mv1(context.paper_budget(m)),
        algorithm,
        sizes,
    )
    table = ReportTable(
        "Figure 5(a) — MV1: processing time under budget limit",
        [
            "queries",
            "budget/run",
            "T without (h)",
            "T with MV (h)",
            "IP rate",
            "views",
        ],
    )
    for point in points:
        budget = context.per_run_cost(context.paper_budget(point.m))
        table.add_row(
            point.m,
            str(budget),
            round(point.without_hours, 4),
            round(point.with_hours, 4),
            format_rate(point.result.time_improvement),
            ",".join(sorted(point.result.selected_views)) or "-",
        )
    return table


def figure5b(
    context: ExperimentContext,
    algorithm: str = "knapsack",
    sizes: Sequence[int] = PAPER_WORKLOAD_SIZES,
) -> ReportTable:
    """Panel (b): MV2 per-run costs under the paper's time limits."""
    points = _run_panel(
        context,
        lambda m, _problem: mv2(context.paper_time_limit(m)),
        algorithm,
        sizes,
    )
    table = ReportTable(
        "Figure 5(b) — MV2: cost under response-time limit",
        [
            "queries",
            "time limit (h)",
            "C/run without",
            "C/run with MV",
            "IC rate",
            "views",
        ],
    )
    for point in points:
        without = context.per_run_cost(point.result.baseline.total_cost)
        with_mv = context.per_run_cost(point.result.outcome.total_cost)
        table.add_row(
            point.m,
            context.paper_time_limit(point.m),
            str(without),
            str(with_mv),
            format_rate(point.result.cost_improvement),
            ",".join(sorted(point.result.selected_views)) or "-",
        )
    return table


def _figure5_tradeoff(
    context: ExperimentContext,
    alpha: float,
    panel: str,
    algorithm: str,
    sizes: Sequence[int],
    normalized: bool = False,
) -> ReportTable:
    cost_scale = 1.0 / context.config.runs_per_period

    def scenario_for_m(m: int, problem) -> Tradeoff:
        if normalized:
            return Tradeoff.normalized_against(alpha, problem.baseline())
        return Tradeoff(alpha=alpha, cost_scale=cost_scale)

    points = _run_panel(context, scenario_for_m, algorithm, sizes)
    table = ReportTable(
        f"Figure 5({panel}) — MV3: tradeoff with alpha={alpha}",
        [
            "queries",
            "objective without",
            "objective with MV",
            "tradeoff rate",
            "views",
        ],
    )
    for point in points:
        scenario = point.result.scenario
        assert isinstance(scenario, Tradeoff)
        table.add_row(
            point.m,
            round(scenario.objective(point.result.baseline), 4),
            round(scenario.objective(point.result.outcome), 4),
            format_rate(point.result.objective_improvement()),
            ",".join(sorted(point.result.selected_views)) or "-",
        )
    return table


def figure5c(
    context: ExperimentContext,
    algorithm: str = "knapsack",
    sizes: Sequence[int] = PAPER_WORKLOAD_SIZES,
) -> ReportTable:
    """Panel (c): MV3 with alpha = 0.3 (cost-leaning user)."""
    return _figure5_tradeoff(context, 0.3, "c", algorithm, sizes)


def figure5d(
    context: ExperimentContext,
    algorithm: str = "knapsack",
    sizes: Sequence[int] = PAPER_WORKLOAD_SIZES,
    alpha: float = 0.65,
) -> ReportTable:
    """Panel (d): MV3 with alpha = 0.65 (time-leaning user)."""
    return _figure5_tradeoff(context, alpha, "d", algorithm, sizes)


def figure5_all(
    context: Optional[ExperimentContext] = None,
    algorithm: str = "knapsack",
) -> List[ReportTable]:
    """All four panels on one shared context."""
    context = context if context is not None else ExperimentContext()
    return [
        figure5a(context, algorithm),
        figure5b(context, algorithm),
        figure5c(context, algorithm),
        figure5d(context, algorithm),
    ]
