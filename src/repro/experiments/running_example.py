"""The paper's worked examples (Sections 1-4), recomputed.

Every numbered example in the paper is recomputed with the library's
pricing and cost-model objects and compared against the value the paper
prints.  Two of the paper's printed values do not follow from its own
formulas; those rows carry a note instead of a silent pass (see
EXPERIMENTS.md, "arithmetic discrepancies").
"""

from __future__ import annotations

from ..costmodel.computing import computing_cost, view_computing_cost
from ..costmodel.params import StorageTimeline
from ..costmodel.storage import storage_cost, storage_cost_with_views
from ..costmodel.transfer import transfer_cost
from ..money import dollars
from ..pricing.compute import BillingGranularity, ComputePricing, InstanceType
from ..pricing.providers import aws_2012
from ..pricing.storage import StoragePricing
from ..pricing.tiers import TierSchedule
from .reporting import ReportTable

__all__ = ["running_example_table", "intro_example_table"]


def running_example_table() -> ReportTable:
    """Examples 1-9 of Sections 3-4, paper value vs. computed value."""
    provider = aws_2012()
    table = ReportTable(
        "Running example (Sections 2-4): paper vs. computed",
        ["example", "quantity", "paper", "computed", "note"],
    )

    # Example 1: 10 GB of query results, first GB free.
    ct = transfer_cost(provider.transfer, [10.0])
    table.add_row("Ex.1", "transfer cost, 10 GB out", "$1.08", str(ct), "")

    # Example 2: 50 h on two small instances, round-up billing.
    cc = computing_cost(provider.compute, "small", 50.0, 2)
    table.add_row("Ex.2", "computing cost, 50 h x 2 small", "$12.00", str(cc), "")

    # Example 3: 512 GB for 12 months, 2 048 GB inserted at month 7.
    timeline = StorageTimeline(512, 12, [(7, 2048)])
    cs = storage_cost(provider.storage, timeline)
    table.add_row(
        "Ex.3",
        "storage cost, 2 intervals",
        "$2131.76",
        str(cs),
        "paper's own formula gives $2101.76 (512x0.14x7 + 2560x0.125x5)",
    )

    # Example 4: materializing V1 takes 1 h on two small instances.
    breakdown = view_computing_cost(
        provider.compute, "small", 2, query_hours=[], materialization_hours=[1.0]
    )
    table.add_row(
        "Ex.4",
        "materialization cost, 1 h",
        "$0.24",
        str(breakdown.materialization_cost),
        "",
    )

    # Examples 5-6: processing with views takes 40 h -> $9.6.
    breakdown = view_computing_cost(
        provider.compute, "small", 2, query_hours=[40.0]
    )
    table.add_row(
        "Ex.5-6",
        "processing cost with views, 40 h",
        "$9.60",
        str(breakdown.processing_cost),
        "",
    )

    # Examples 7-8: maintenance 5 h -> $1.2.
    breakdown = view_computing_cost(
        provider.compute, "small", 2, query_hours=[], maintenance_hours=[5.0]
    )
    table.add_row(
        "Ex.7-8",
        "maintenance cost, 5 h",
        "$1.20",
        str(breakdown.maintenance_cost),
        "",
    )

    # Example 9: 500 GB + 50 GB of views, 12 months, single interval.
    base = StorageTimeline(500, 12)
    cs9 = storage_cost_with_views(provider.storage, base, 50.0)
    table.add_row(
        "Ex.9", "storage with views, 550 GB x 12 mo", "$924.00", str(cs9), ""
    )

    return table


def intro_example_table() -> ReportTable:
    """Section 1's motivating example, with its own flat price sheet.

    The introduction uses $0.10/GB-month storage and $0.24/h computing:
    a 500 GB dataset and a 50 h monthly workload cost $62; views cut the
    workload to 40 h but add 50 GB, landing at $64.60 — "performance
    has improved by 20%, but cost has also increased by 4%".
    """
    storage = StoragePricing(TierSchedule.flat(dollars("0.10")))
    compute = ComputePricing(
        [InstanceType("node", dollars("0.24"), 1.0, 4.0, 100)],
        BillingGranularity.PER_HOUR,
    )

    without_c = storage.cost(500, 1) + compute.cost("node", 50, 1)
    with_c = storage.cost(550, 1) + compute.cost("node", 40, 1)

    table = ReportTable(
        "Intro example (Section 1): paper vs. computed",
        ["configuration", "paper", "computed", "note"],
    )
    table.add_row("without views (500 GB, 50 h)", "$62.00", str(without_c), "")
    table.add_row("with views (550 GB, 40 h)", "$64.60", str(with_c), "")
    perf_gain = (50 - 40) / 50
    cost_growth = (with_c - without_c).ratio_to(without_c)
    table.add_row(
        "performance improvement", "20%", f"{perf_gain:.0%}", ""
    )
    table.add_row("cost increase", "4%", f"{cost_growth:.1%}", "")
    return table
