"""Experiment registry and runner.

Every reproducible artifact has a stable id (the per-experiment index
in DESIGN.md); :func:`run_experiment` resolves an id to its tables, and
:func:`run_all` regenerates everything, optionally writing CSVs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..errors import ExperimentError
from .ablations import (
    ablation_algorithms,
    ablation_billing_granularity,
    ablation_cascade,
    ablation_elastic_joint,
    ablation_elasticity,
    ablation_hru_baseline,
    ablation_maintenance_policy,
    ablation_tier_semantics,
    ablation_tight_budget,
)
from .context import ExperimentContext
from .figure5 import figure5a, figure5b, figure5c, figure5d
from .reporting import ReportTable
from .robustness import ablation_workload_drift
from .running_example import intro_example_table, running_example_table
from .ssb import ssb_experiment
from .tables import table6, table7, table8

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

#: id -> function(context) -> list[ReportTable]
EXPERIMENTS: Dict[str, Callable[[ExperimentContext], List[ReportTable]]] = {
    "running-example": lambda ctx: [running_example_table(), intro_example_table()],
    "figure5a": lambda ctx: [figure5a(ctx)],
    "figure5b": lambda ctx: [figure5b(ctx)],
    "figure5c": lambda ctx: [figure5c(ctx)],
    "figure5d": lambda ctx: [figure5d(ctx)],
    "table6": lambda ctx: [table6(ctx)],
    "table7": lambda ctx: [table7(ctx)],
    "table8": lambda ctx: [table8(ctx)],
    "ablation-billing": lambda ctx: [ablation_billing_granularity(ctx)],
    "ablation-tiers": lambda ctx: [ablation_tier_semantics()],
    "ablation-algorithms": lambda ctx: [ablation_algorithms(ctx)],
    "ablation-elasticity": lambda ctx: [ablation_elasticity(ctx)],
    "ablation-tight-budget": lambda ctx: [ablation_tight_budget(ctx)],
    "ablation-hru": lambda ctx: [ablation_hru_baseline(ctx)],
    "ablation-cascade": lambda ctx: [ablation_cascade(ctx)],
    "ablation-maintenance": lambda ctx: [ablation_maintenance_policy(ctx)],
    "ablation-elastic": lambda ctx: [ablation_elastic_joint(ctx)],
    "ablation-drift": lambda ctx: [ablation_workload_drift(ctx)],
    "ssb": lambda ctx: [ssb_experiment()],
}


def run_experiment(
    experiment_id: str,
    context: Optional[ExperimentContext] = None,
    csv_dir: Optional[Union[str, Path]] = None,
) -> List[ReportTable]:
    """Run one experiment by id; optionally write its tables as CSV."""
    try:
        build = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    context = context if context is not None else ExperimentContext()
    tables = build(context)
    if csv_dir is not None:
        for i, table in enumerate(tables):
            stem = experiment_id if len(tables) == 1 else f"{experiment_id}-{i + 1}"
            table.to_csv(Path(csv_dir) / f"{stem}.csv")
    return tables


def run_all(
    context: Optional[ExperimentContext] = None,
    csv_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, List[ReportTable]]:
    """Run every registered experiment on one shared context."""
    context = context if context is not None else ExperimentContext()
    return {
        experiment_id: run_experiment(experiment_id, context, csv_dir)
        for experiment_id in EXPERIMENTS
    }
