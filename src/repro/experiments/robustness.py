"""Robustness: what a stale view selection costs when the workload drifts.

The paper selects views for a *fixed* workload ("Note that we consider
that Q is fixed", §4.2).  Real workloads drift: queries get added,
dropped, or change frequency.  This experiment measures the price of
that assumption — the *regret* of yesterday's selection on today's
workload:

    regret = objective(stale selection, new workload)
           - objective(fresh selection, new workload)

Three drifts are tested, each against the m=5 selection:

* **grow** — the workload gains the m=6..8 queries,
* **shrink** — it loses its two finest queries,
* **reweight** — the two coarsest queries run 10x more often.

The measured headline: the stale selection is nearly free under
shrinkage and reweighting (its views are grain-general, so they keep
serving whatever queries remain), but leaves a third of the available
improvement on the table when the workload *grows* — new queries run
unserved until selection is re-run.  Re-optimize on workload growth;
drift in the other directions is forgiving.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..optimizer.problem import SelectionProblem
from ..optimizer.scenarios import Tradeoff
from ..optimizer.selector import select_views
from ..workload.query import AggregateQuery
from ..workload.workload import Workload, paper_sales_workload
from .context import ExperimentContext
from .reporting import ReportTable, format_rate

__all__ = ["ablation_workload_drift"]


def _drifted_workloads(context: ExperimentContext) -> List[Tuple[str, Workload]]:
    schema = context.dataset.schema
    base = paper_sales_workload(schema, 5)
    grown = paper_sales_workload(schema, 8)
    shrunk = Workload(schema, list(base.queries)[:3])
    reweighted = Workload(
        schema,
        [
            AggregateQuery(q.name, q.grain, 10.0 if i < 2 else q.frequency)
            for i, q in enumerate(base.queries)
        ],
    )
    return [("grow (m=5 -> 8)", grown), ("shrink (m=5 -> 3)", shrunk),
            ("reweight (2 hot queries x10)", reweighted)]


def _problem_for(
    context: ExperimentContext,
    workload: Workload,
    extra_grains: Tuple[Tuple[str, ...], ...] = (),
) -> SelectionProblem:
    from ..costmodel.estimator import PlanningEstimator
    from ..cube.candidates import candidates_from_workload
    from ..cube.views import CandidateView

    # The drifted problem proposes the new workload's grains, PLUS the
    # grains of yesterday's views: those exist physically whatever the
    # new workload looks like, so the stale plan must stay evaluable.
    candidates = candidates_from_workload(context.lattice, workload)
    known = {c.grain for c in candidates}
    for grain in extra_grains:
        if grain not in known:
            candidates.append(CandidateView(f"V{len(candidates) + 1}", grain))
            known.add(grain)
    estimator = PlanningEstimator(context.dataset, context.deployment)
    return SelectionProblem(estimator.build(workload, candidates))


def ablation_workload_drift(
    context: Optional[ExperimentContext] = None,
) -> ReportTable:
    """Regret of the stale m=5 selection under three workload drifts."""
    context = context if context is not None else ExperimentContext()
    cost_scale = 1.0 / context.config.runs_per_period
    scenario = Tradeoff(alpha=0.5, cost_scale=cost_scale)

    stale = select_views(context.problem(5), scenario, "greedy")
    stale_inputs = context.problem(5).inputs
    stale_grains = tuple(
        stale_inputs.view(name).grain for name in sorted(stale.selected_views)
    )

    table = ReportTable(
        "Ablation — workload drift: stale m=5 selection vs. fresh",
        [
            "drift",
            "obj. no views",
            "obj. stale",
            "obj. fresh",
            "regret",
            "stale still helps",
        ],
    )
    for label, workload in _drifted_workloads(context):
        problem = _problem_for(context, workload, stale_grains)
        baseline_obj = scenario.objective(problem.baseline())
        # Re-identify yesterday's views by grain (names are per-problem).
        stale_names = frozenset(
            c.name
            for c in problem.inputs.candidates
            if c.grain in stale_grains
        )
        stale_obj = scenario.objective(problem.evaluate(stale_names))
        fresh = select_views(problem, scenario, "greedy")
        fresh_obj = scenario.objective(fresh.outcome)
        regret = (stale_obj - fresh_obj) / baseline_obj if baseline_obj else 0.0
        table.add_row(
            label,
            round(baseline_obj, 4),
            round(stale_obj, 4),
            round(fresh_obj, 4),
            format_rate(regret),
            "yes" if stale_obj <= baseline_obj else "no",
        )
    return table
