"""Exact monetary arithmetic.

Cloud bills are money, and money must never be a float.  :class:`Money`
wraps :class:`decimal.Decimal` with a small, closed set of operations:
addition/subtraction with other :class:`Money`, multiplication/division
by dimensionless numbers, comparisons, and explicit rounding to cents.

The paper's cost models (Formulas 1-12) produce dollar amounts from
per-GB and per-hour rates; keeping the arithmetic in ``Decimal`` means
the worked examples of the paper ($1.08, $9.6, $924, ...) are matched
digit-for-digit rather than to within float epsilon.

Two deliberately missing operations:

* ``Money * Money`` — dollars squared has no meaning in a bill;
* implicit float construction — ``Money(0.1)`` would smuggle binary
  rounding error into the ledger, so floats are converted via ``str``.
"""

from __future__ import annotations

import functools
from decimal import Context, ROUND_HALF_UP, Decimal
from typing import Union

__all__ = ["Money", "ZERO", "dollars", "cents"]

_Number = Union[int, str, float, Decimal]

# Bill arithmetic must never round silently.  The default context's 28
# significant digits are not enough once float-derived factors enter a
# product (``str(float)`` carries up to 17 significant digits, and the
# multi-tenant attributor multiplies full-precision amounts by such
# ratios): products would be rounded, and per-tenant shares would sum
# to the fleet bill only approximately.  Money therefore runs all its
# arithmetic through a private 60-digit context — enough exact
# headroom for every chain this library performs, identical in every
# thread, and invisible to the host application's own ``decimal``
# context.
_CTX = Context(prec=60)

# One cent: the resolution every bill is quantized to on request.
_CENT = Decimal("0.01")


def _to_decimal(value: _Number) -> Decimal:
    """Convert a supported numeric type to ``Decimal`` exactly.

    Floats are routed through ``str`` so that ``0.1`` becomes
    ``Decimal('0.1')`` rather than the 55-digit binary expansion —
    callers passing floats mean the decimal literal they wrote.
    """
    if isinstance(value, Decimal):
        return value
    if isinstance(value, float):
        return Decimal(str(value))
    return Decimal(value)


@functools.total_ordering
class Money:
    """An exact dollar amount.

    ``Money`` is immutable and hashable.  Arithmetic keeps full
    precision; call :meth:`quantized` to round to cents (half-up, the
    convention invoices use).

    Examples
    --------
    >>> Money("0.12") * 9
    Money('1.08')
    >>> (Money("0.14") * 550 * 12).quantized()
    Money('924.00')
    """

    __slots__ = ("_amount",)

    def __init__(self, amount: _Number = 0) -> None:
        self._amount = _to_decimal(amount)

    # -- accessors ----------------------------------------------------

    @property
    def amount(self) -> Decimal:
        """The underlying ``Decimal`` dollar amount."""
        return self._amount

    def to_float(self) -> float:
        """Lossy float view, for plotting and quick display only."""
        return float(self._amount)

    def to_cents(self) -> int:
        """The amount in integer cents, rounded half-up.

        This is the discretization used by the knapsack dynamic
        program, which needs integer weights.
        """
        return int(self._amount.quantize(_CENT, rounding=ROUND_HALF_UP) * 100)

    def quantized(self) -> "Money":
        """This amount rounded to whole cents (half-up)."""
        return Money(self._amount.quantize(_CENT, rounding=ROUND_HALF_UP))

    # -- arithmetic ---------------------------------------------------

    def __add__(self, other: "Money") -> "Money":
        if not isinstance(other, Money):
            return NotImplemented
        return Money(_CTX.add(self._amount, other._amount))

    def __radd__(self, other: object) -> "Money":
        # Support sum() which starts from int 0.
        if other == 0:
            return self
        return NotImplemented  # type: ignore[return-value]

    def __sub__(self, other: "Money") -> "Money":
        if not isinstance(other, Money):
            return NotImplemented
        return Money(_CTX.subtract(self._amount, other._amount))

    def __mul__(self, factor: _Number) -> "Money":
        if isinstance(factor, Money):
            raise TypeError("cannot multiply Money by Money")
        return Money(_CTX.multiply(self._amount, _to_decimal(factor)))

    def __rmul__(self, factor: _Number) -> "Money":
        return self.__mul__(factor)

    def __truediv__(self, divisor: _Number) -> "Money":
        if isinstance(divisor, Money):
            raise TypeError(
                "Money / Money is a ratio; use .ratio_to() for that"
            )
        return Money(_CTX.divide(self._amount, _to_decimal(divisor)))

    def __neg__(self) -> "Money":
        return Money(_CTX.minus(self._amount))

    def __abs__(self) -> "Money":
        return Money(_CTX.abs(self._amount))

    def ratio_to(self, other: "Money") -> float:
        """Dimensionless ratio ``self / other`` as a float.

        Used for improvement *rates* (Tables 6-8 of the paper), which
        are percentages, not dollar amounts.
        """
        if not isinstance(other, Money):
            raise TypeError("ratio_to expects Money")
        if other._amount == 0:
            raise ZeroDivisionError("ratio to zero Money")
        return float(_CTX.divide(self._amount, other._amount))

    # -- comparisons / hashing ---------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Money):
            return NotImplemented
        return self._amount == other._amount

    def __lt__(self, other: "Money") -> bool:
        if not isinstance(other, Money):
            return NotImplemented
        return self._amount < other._amount

    def __hash__(self) -> int:
        # Normalize so Money('1.0') and Money('1.00') hash identically,
        # matching __eq__ (Decimal("1.0") == Decimal("1.00")).
        return hash(self._amount.normalize())

    def __bool__(self) -> bool:
        return self._amount != 0

    # -- display ------------------------------------------------------

    def __repr__(self) -> str:
        return f"Money('{self._amount}')"

    def __str__(self) -> str:
        return f"${self._amount.quantize(_CENT, rounding=ROUND_HALF_UP)}"

    def __format__(self, spec: str) -> str:
        if not spec:
            return str(self)
        return format(self.to_float(), spec)


#: The zero dollar amount, handy as a fold seed.
ZERO = Money(0)


def dollars(amount: _Number) -> Money:
    """Shorthand constructor: ``dollars('0.12')``."""
    return Money(amount)


def cents(amount: int) -> Money:
    """Construct Money from integer cents (inverse of ``to_cents``)."""
    return Money(Decimal(amount) / 100)
