"""Ready-made lifecycle scenarios.

:func:`drifting_sales_simulator` is the reference scenario the
example, CLI subcommand, benchmark and tests all share: the paper's
Section 6 warehouse (10 GB sales dataset, five AWS small instances,
daily workload runs) stepped through two years of life in which

* the workload starts as the paper's five coarse reporting queries,
* day-level dashboard queries arrive hot (epoch 5) and get hotter
  (epoch 9),
* the original monthly reports go cold and are retired (epochs 9, 13),
* the fact table grows 30% (epoch 8) and again 20% (epoch 16),
* the provider repricing moves the warehouse to a flat-rate price
  book (epoch 12), and
* a node is lost and not replaced (epoch 18).

The drift is deliberately adversarial to a static selection: the views
chosen at epoch 0 answer queries that no longer run, while the queries
that dominate the late workload cannot be answered by them at all.

:func:`multi_tenant_sales_simulator` is its multi-tenant sibling: the
same warehouse shared by *n* tenants whose workloads differ in size
and intensity and whose dashboard drift arrives staggered (tenant
``t2``'s dashboards land two epochs after ``t1``'s), over the shared
growth/repricing backdrop.  It is the preset behind
``python -m repro simulate --tenants N``.

:func:`stochastic_sales_simulator` and
:func:`stochastic_multi_tenant_simulator` replace the hand-written
drift with sampled drift (:mod:`repro.simulate.stochastic`): the same
base warehouse, but the future is drawn from a seeded generator bundle
— Poisson query churn, seasonal frequency waves, noisy growth, a
spot-price walk.  ``seed`` fixes the starting world; ``drift_seed``
(default: ``seed``) fixes the sampled future, so a Monte Carlo harness
can hold the world constant while varying the future per trial.

:func:`elastic_multi_tenant_simulator` adds the fleet's *population*
to the sampled future: on top of the stochastic multi-tenant base, a
seeded churn process (:func:`repro.simulate.stochastic.
sample_fleet_churn`) draws tenants that arrive and depart
mid-lifecycle — billed through
:class:`~repro.simulate.events.TenantArrival` /
:class:`~repro.simulate.events.TenantDeparture` — each with its own
sampled drift over its active window.

:func:`population_fleet_simulator` pushes the tenant *count* instead:
10³–10⁵ single-query tenants over a deliberately small world and
catalogue, sized for :meth:`~repro.simulate.tenants.
MultiTenantSimulator.run_sharded`'s streaming, sharded attribution.
"""

from __future__ import annotations

import functools
import random
from dataclasses import replace

from ..costmodel.params import DeploymentSpec
from ..cube.candidates import candidates_from_workload
from ..cube.lattice import CuboidLattice
from ..data.sales_generator import generate_sales
from ..errors import SimulationError
from ..engine.timing import ClusterTimingModel
from ..optimizer.problem import SubsetEvaluationCache
from ..pricing.compute import BillingGranularity
from ..pricing.providers import (
    Provider,
    archive_cloud,
    aws_2012,
    flat_cloud,
)
from ..workload.query import AggregateQuery
from ..workload.workload import Workload, paper_sales_workload
from .clock import SimulationClock
from .events import (
    AddQueries,
    DropQueries,
    FleetChange,
    GrowFactTable,
    PriceChange,
    ReweightQueries,
)
from .builds import BuildConfig
from .simulator import LifecycleSimulator
from .state import WarehouseState
from .stochastic import (
    FleetChurn,
    GeneratorContext,
    compile_timeline,
    derive_seed,
    generator_preset,
    sample_fleet_churn,
    split_by_scope,
)
from .tenants import MultiTenantSimulator, Tenant, TenantFleet

__all__ = [
    "DRIFT_MIN_EPOCHS",
    "async_sales_simulator",
    "default_market",
    "drifting_sales_simulator",
    "elastic_multi_tenant_simulator",
    "multi_tenant_min_epochs",
    "multi_tenant_sales_simulator",
    "population_fleet_simulator",
    "sales_deployment",
    "stochastic_multi_tenant_simulator",
    "stochastic_sales_simulator",
]

#: The reference scenario's last event fires at epoch 18, so its
#: clock needs at least this many epochs.
DRIFT_MIN_EPOCHS = 19


def default_market() -> "tuple[Provider, ...]":
    """The multi-provider market the arbitrage presets quote.

    Three deliberately different price structures (see
    :mod:`repro.pricing.providers`): the paper's AWS book at the
    simulations' per-second billing — the family spot walks reprice —
    plus the flat-rate and cold-storage counterpoints.  Seeding a
    simulation's initial :class:`~repro.simulate.state.WarehouseState`
    with this market is what turns ``PriceChange`` from an event into
    a decision: an :class:`~repro.simulate.arbitrage.ArbitrageAware`
    policy prices every quoted book each epoch and migrates when
    switching pays.
    """
    return (
        aws_2012(BillingGranularity.PER_SECOND),
        flat_cloud(),
        archive_cloud(),
    )


def sales_deployment(n_instances: int = 5) -> DeploymentSpec:
    """The Section 6 deployment the simulations start from."""
    return DeploymentSpec(
        provider=aws_2012(BillingGranularity.PER_SECOND),
        instance_type="small",
        n_instances=n_instances,
        timing=ClusterTimingModel(),
        storage_months=1.0,
        maintenance_cycles=30,
        update_fraction_per_cycle=0.01,
        runs_per_period=30.0,
        materialization_write_factor=2.0,
    )


def drifting_sales_simulator(
    n_epochs: int = 24,
    n_rows: int = 60_000,
    seed: int = 42,
    dataset_gb: float = 10.0,
    charge_teardown_egress: bool = True,
    cache: "SubsetEvaluationCache | None" = None,
    market: "tuple[Provider, ...] | None" = None,
    builds: "BuildConfig | None" = None,
) -> LifecycleSimulator:
    """The reference drifting-warehouse scenario (see module docs).

    ``n_epochs`` must leave room for the scheduled drift
    (>= ``DRIFT_MIN_EPOCHS``); the default is 24 epochs = two years of
    monthly billing periods.  ``market`` (e.g. :func:`default_market`)
    quotes candidate provider books to migration-aware policies;
    ``None`` keeps the classic single-provider world.
    """
    if n_epochs < DRIFT_MIN_EPOCHS:
        raise SimulationError(
            f"the drifting scenario schedules events through epoch "
            f"{DRIFT_MIN_EPOCHS - 1}; n_epochs must be >= "
            f"{DRIFT_MIN_EPOCHS}, got {n_epochs}"
        )
    dataset = generate_sales(
        n_rows=n_rows, seed=seed, target_gb=dataset_gb
    )
    schema = dataset.schema
    workload = paper_sales_workload(schema, 5)
    initial = WarehouseState(
        workload=workload,
        dataset=dataset,
        deployment=sales_deployment(),
        market=market if market is not None else (),
    )

    def day_query(name: str, geo_level: str, frequency: float) -> AggregateQuery:
        return AggregateQuery.per(
            schema,
            name,
            {"time": "day", "geography": geo_level},
            frequency=frequency,
        )

    events = [
        # A dashboard team arrives: day-level queries, refreshed often.
        AddQueries(
            epoch=5,
            queries=(
                day_query("D1", "country", 3.0),
                day_query("D2", "region", 3.0),
                day_query("D3", "department", 2.0),
            ),
        ),
        # The data keeps landing: +30% fact volume.
        GrowFactTable(epoch=8, factor=1.3),
        # Dashboards get hotter, the old monthly reports go cold...
        ReweightQueries(
            epoch=9,
            frequencies=(("D1", 6.0), ("D2", 6.0), ("Q1", 0.25), ("Q2", 0.25)),
        ),
        DropQueries(epoch=9, names=("Q3",)),
        # ...the provider repricing lands...
        PriceChange(epoch=12, provider=flat_cloud()),
        # ...the remaining legacy reports are retired...
        DropQueries(epoch=13, names=("Q1", "Q2")),
        # ...more growth, and a node is lost without replacement.
        GrowFactTable(epoch=16, factor=1.2),
        FleetChange(epoch=18, n_instances=4),
    ]
    return LifecycleSimulator(
        initial=initial,
        clock=SimulationClock(n_epochs),
        events=events,
        cache=cache,
        charge_teardown_egress=charge_teardown_egress,
        builds=builds,
    )


def multi_tenant_min_epochs(n_tenants: int) -> int:
    """Epochs the staggered multi-tenant drift needs for ``n_tenants``.

    Tenant *i* (0-based) reweights at epoch ``9 + 2i`` and the shared
    backdrop's last event fires at epoch 16, so the horizon must cover
    whichever is later.
    """
    return max(17, 9 + 2 * (n_tenants - 1) + 1)


def multi_tenant_sales_simulator(
    n_tenants: int = 3,
    n_epochs: int = 24,
    n_rows: int = 60_000,
    seed: int = 42,
    dataset_gb: float = 10.0,
    attribution: str = "proportional",
    charge_teardown_egress: bool = True,
    cache: "SubsetEvaluationCache | None" = None,
    market: "tuple[Provider, ...] | None" = None,
    builds: "BuildConfig | None" = None,
) -> MultiTenantSimulator:
    """The reference multi-tenant scenario: *n* tenants, one warehouse.

    Tenant ``t{i}`` starts with a prefix of the paper workload (3, 5
    or 4 queries, cycling) at its own intensity (1x, 2x, 0.5x base
    frequency, cycling), grows a dashboard habit at epoch ``4 + 2i``
    (day-level queries, arriving staggered so tenants drift out of
    phase), and re-weights it hot at epoch ``9 + 2i`` while its oldest
    report cools.  The shared backdrop reuses the single-tenant drift:
    +30% data at epoch 8, the flat-rate repricing at epoch 12, +20%
    data at epoch 16.

    ``attribution`` picks the sharing rule applied every epoch (see
    :mod:`repro.simulate.attribution`).
    """
    if n_tenants < 1:
        raise SimulationError(
            f"the fleet needs at least one tenant, got {n_tenants}"
        )
    needed = multi_tenant_min_epochs(n_tenants)
    if n_epochs < needed:
        raise SimulationError(
            f"the {n_tenants}-tenant scenario schedules events through "
            f"epoch {needed - 1}; n_epochs must be >= {needed}, "
            f"got {n_epochs}"
        )
    dataset = generate_sales(n_rows=n_rows, seed=seed, target_gb=dataset_gb)
    schema = dataset.schema

    def day_query(name: str, geo_level: str, frequency: float) -> AggregateQuery:
        return AggregateQuery.per(
            schema,
            name,
            {"time": "day", "geography": geo_level},
            frequency=frequency,
        )

    sizes = (3, 5, 4)
    intensities = (1.0, 2.0, 0.5)
    geo_levels = ("country", "region", "department")
    tenants = []
    for i in range(n_tenants):
        base = paper_sales_workload(schema, sizes[i % len(sizes)])
        intensity = intensities[i % len(intensities)]
        workload = base.reweighted(
            {q.name: q.frequency * intensity for q in base}
        )
        events = (
            # The tenant's dashboard team arrives, out of phase with
            # its neighbours'.
            AddQueries(
                epoch=4 + 2 * i,
                queries=(
                    day_query("D1", geo_levels[i % len(geo_levels)], 3.0),
                    day_query("D2", "country", 2.0),
                ),
            ),
            # Dashboards get hot, the oldest report cools.
            ReweightQueries(
                epoch=9 + 2 * i,
                frequencies=(
                    ("D1", 6.0),
                    ("Q1", 0.25 * intensity),
                ),
            ),
        )
        tenants.append(
            Tenant(name=f"t{i + 1}", workload=workload, events=events)
        )

    shared = (
        GrowFactTable(epoch=8, factor=1.3),
        PriceChange(epoch=12, provider=flat_cloud()),
        GrowFactTable(epoch=16, factor=1.2),
    )
    fleet = TenantFleet(
        tenants,
        dataset=dataset,
        deployment=sales_deployment(),
        shared_events=shared,
        market=market if market is not None else (),
    )
    return MultiTenantSimulator(
        fleet,
        clock=SimulationClock(n_epochs),
        attribution=attribution,
        cache=cache,
        charge_teardown_egress=charge_teardown_egress,
        builds=builds,
    )


# Monte Carlo trials vary only the drift seed, so within one process
# every trial starts from the identical dataset; datasets are immutable
# (events derive new ones via dataclasses.replace), so sharing one
# instance is safe and saves O(n_trials) generations per worker.
@functools.lru_cache(maxsize=4)
def _cached_sales_dataset(n_rows: int, seed: int, dataset_gb: float):
    return generate_sales(n_rows=n_rows, seed=seed, target_gb=dataset_gb)


def stochastic_sales_simulator(
    generator: str = "mixed",
    n_epochs: int = 24,
    n_rows: int = 60_000,
    seed: int = 42,
    drift_seed: "int | None" = None,
    dataset_gb: float = 10.0,
    charge_teardown_egress: bool = True,
    cache: "SubsetEvaluationCache | None" = None,
    market: "tuple[Provider, ...] | None" = None,
    builds: "BuildConfig | None" = None,
) -> LifecycleSimulator:
    """The Section 6 warehouse under *sampled* drift.

    Same starting world as :func:`drifting_sales_simulator` (10 GB
    sales dataset, five paper queries, five AWS small instances), but
    the future is drawn from the named generator preset (see
    :data:`repro.simulate.stochastic.GENERATOR_PRESETS`) and compiled
    into a deterministic timeline.  ``seed`` fixes the dataset;
    ``drift_seed`` (default: ``seed``) fixes the sampled future.
    ``market`` (e.g. :func:`default_market`) quotes candidate books to
    migration-aware policies; the spot walk's repricings then move the
    AWS quote without yanking a migrated warehouse back onto it.
    """
    dataset = _cached_sales_dataset(n_rows, seed, dataset_gb)
    workload = paper_sales_workload(dataset.schema, 5)
    deployment = sales_deployment()
    timeline = compile_timeline(
        generator_preset(generator),
        seed if drift_seed is None else drift_seed,
        GeneratorContext(
            schema=dataset.schema,
            base_workload=workload,
            provider=deployment.provider,
            n_epochs=n_epochs,
        ),
    )
    return LifecycleSimulator(
        initial=WarehouseState(
            workload=workload,
            dataset=dataset,
            deployment=deployment,
            market=market if market is not None else (),
        ),
        clock=SimulationClock(n_epochs),
        timeline=timeline,
        cache=cache,
        charge_teardown_egress=charge_teardown_egress,
        builds=builds,
    )


def stochastic_multi_tenant_simulator(
    n_tenants: int = 3,
    generator: str = "mixed",
    n_epochs: int = 24,
    n_rows: int = 60_000,
    seed: int = 42,
    drift_seed: "int | None" = None,
    dataset_gb: float = 10.0,
    attribution: str = "proportional",
    charge_teardown_egress: bool = True,
    cache: "SubsetEvaluationCache | None" = None,
    market: "tuple[Provider, ...] | None" = None,
    builds: "BuildConfig | None" = None,
) -> MultiTenantSimulator:
    """*n* tenants, one warehouse, every tenant's future sampled.

    Tenants start from the same size/intensity mix as
    :func:`multi_tenant_sales_simulator`.  The generator preset is
    split by scope: each tenant gets its own workload-scoped streams
    (churn, seasonal waves) drawn from a per-tenant child seed, and the
    warehouse-scoped streams (growth, spot-price walk) run once, on
    the shared world — so tenants drift independently over a common
    market backdrop.
    """
    if n_tenants < 1:
        raise SimulationError(
            f"the fleet needs at least one tenant, got {n_tenants}"
        )
    dataset = _cached_sales_dataset(n_rows, seed, dataset_gb)
    schema = dataset.schema
    deployment = sales_deployment()
    base_seed = seed if drift_seed is None else drift_seed
    workload_gens, warehouse_gens = split_by_scope(
        generator_preset(generator)
    )

    sizes = (3, 5, 4)
    intensities = (1.0, 2.0, 0.5)
    tenants = []
    for i in range(n_tenants):
        base = paper_sales_workload(schema, sizes[i % len(sizes)])
        intensity = intensities[i % len(intensities)]
        workload = base.reweighted(
            {q.name: q.frequency * intensity for q in base}
        )
        timeline = compile_timeline(
            workload_gens,
            derive_seed(base_seed, f"tenant:{i}"),
            GeneratorContext(
                schema=schema,
                base_workload=workload,
                provider=deployment.provider,
                n_epochs=n_epochs,
            ),
        )
        tenants.append(
            Tenant(
                name=f"t{i + 1}",
                workload=workload,
                events=tuple(timeline),
            )
        )

    shared_timeline = compile_timeline(
        warehouse_gens,
        derive_seed(base_seed, "shared"),
        GeneratorContext(
            schema=schema,
            base_workload=tenants[0].workload,
            provider=deployment.provider,
            n_epochs=n_epochs,
        ),
    )
    fleet = TenantFleet(
        tenants,
        dataset=dataset,
        deployment=deployment,
        shared_events=tuple(shared_timeline),
        market=market if market is not None else (),
    )
    return MultiTenantSimulator(
        fleet,
        clock=SimulationClock(n_epochs),
        attribution=attribution,
        cache=cache,
        charge_teardown_egress=charge_teardown_egress,
        builds=builds,
    )


def elastic_multi_tenant_simulator(
    n_tenants: int = 3,
    generator: str = "mixed",
    churn: "FleetChurn | None" = None,
    n_epochs: int = 24,
    n_rows: int = 60_000,
    seed: int = 42,
    drift_seed: "int | None" = None,
    dataset_gb: float = 10.0,
    attribution: str = "proportional",
    charge_teardown_egress: bool = True,
    cache: "SubsetEvaluationCache | None" = None,
    market: "tuple[Provider, ...] | None" = None,
    builds: "BuildConfig | None" = None,
) -> MultiTenantSimulator:
    """The stochastic fleet with a *sampled population*.

    Starts from :func:`stochastic_multi_tenant_simulator`'s world —
    ``n_tenants`` founding tenants with sampled drift over a shared
    sampled backdrop — and layers a seeded churn process on top:
    :func:`~repro.simulate.stochastic.sample_fleet_churn` draws
    tenants (``c0``, ``c1``, ...) that arrive mid-lifecycle and may
    depart before the horizon.  Each churned tenant brings a small
    paper-workload prefix at its own intensity and drifts under its
    own child-seeded generator streams, compiled over its active
    window; the fleet bills its onboarding and settlement through
    :class:`~repro.simulate.events.TenantArrival` /
    :class:`~repro.simulate.events.TenantDeparture`.

    Founders never depart, so the warehouse is occupied at every
    epoch (a :class:`~repro.simulate.tenants.MultiTenantSimulator`
    requirement).  The trajectory is a pure function of
    ``(seed, drift_seed, churn, n_epochs)``: Monte Carlo trials vary
    ``drift_seed`` to resample both drift *and* population.
    """
    if n_tenants < 1:
        raise SimulationError(
            f"the fleet needs at least one founding tenant, got {n_tenants}"
        )
    dataset = _cached_sales_dataset(n_rows, seed, dataset_gb)
    schema = dataset.schema
    deployment = sales_deployment()
    base_seed = seed if drift_seed is None else drift_seed
    workload_gens, warehouse_gens = split_by_scope(
        generator_preset(generator)
    )

    sizes = (3, 5, 4)
    intensities = (1.0, 2.0, 0.5)

    def sampled_tenant(
        name: str,
        serial: int,
        drift_label: str,
        arrival: int = 0,
        departure: "int | None" = None,
    ) -> Tenant:
        base = paper_sales_workload(schema, sizes[serial % len(sizes)])
        intensity = intensities[serial % len(intensities)]
        workload = base.reweighted(
            {q.name: q.frequency * intensity for q in base}
        )
        # Drift is compiled over the tenant's active window and
        # shifted to it, so a late arrival drifts relative to its own
        # onboarding, not the fleet's epoch 0.
        window = (departure if departure is not None else n_epochs) - arrival
        events: "tuple[SimulationEvent, ...]" = ()
        if window >= 2:
            timeline = compile_timeline(
                workload_gens,
                derive_seed(base_seed, drift_label),
                GeneratorContext(
                    schema=schema,
                    base_workload=workload,
                    provider=deployment.provider,
                    n_epochs=window,
                ),
            )
            events = tuple(
                replace(event, epoch=event.epoch + arrival)
                for event in timeline
            )
        return Tenant(
            name=name,
            workload=workload,
            events=events,
            arrival_epoch=arrival,
            departure_epoch=departure,
        )

    tenants = [
        sampled_tenant(f"t{i + 1}", i, f"tenant:{i}")
        for i in range(n_tenants)
    ]
    process = churn if churn is not None else FleetChurn()
    for index, lifecycle in enumerate(
        sample_fleet_churn(
            process, derive_seed(base_seed, "fleet-churn"), n_epochs
        )
    ):
        tenants.append(
            sampled_tenant(
                lifecycle.name,
                n_tenants + index,
                f"churn:{lifecycle.name}",
                arrival=lifecycle.arrival_epoch,
                departure=lifecycle.departure_epoch,
            )
        )

    shared_timeline = compile_timeline(
        warehouse_gens,
        derive_seed(base_seed, "shared"),
        GeneratorContext(
            schema=schema,
            base_workload=tenants[0].workload,
            provider=deployment.provider,
            n_epochs=n_epochs,
        ),
    )
    fleet = TenantFleet(
        tenants,
        dataset=dataset,
        deployment=deployment,
        shared_events=tuple(shared_timeline),
        market=market if market is not None else (),
    )
    return MultiTenantSimulator(
        fleet,
        clock=SimulationClock(n_epochs),
        attribution=attribution,
        cache=cache,
        charge_teardown_egress=charge_teardown_egress,
        builds=builds,
    )


def population_fleet_simulator(
    n_tenants: int = 10_000,
    elastic: bool = True,
    n_epochs: int = 4,
    n_rows: int = 5_000,
    seed: int = 42,
    dataset_gb: float = 1.0,
    attribution: str = "proportional",
    cache: "SubsetEvaluationCache | None" = None,
) -> MultiTenantSimulator:
    """A population-scale fleet: 10³–10⁵ single-query tenants.

    Built for :meth:`~repro.simulate.tenants.MultiTenantSimulator.
    run_sharded`: every tenant owns exactly one query drawn from the
    five-query paper pool (cycling, at a seeded per-tenant intensity),
    so the pricing work stays bounded while the *attribution* work —
    splitting every epoch's bill across all tenants — scales with the
    population.  The candidate catalogue is the workload-grain one
    (:func:`~repro.cube.candidates.candidates_from_workload` over the
    pool), not the full lattice, keeping selection cheap at any
    population.

    ``elastic=True`` churns a seeded ~20% of the population: some
    tenants arrive after epoch 0, some founders depart before the
    horizon (tenant ``p0`` is always static, so the warehouse is never
    empty).  ``elastic=False`` is the fixed-fleet control the
    benchmark compares against.
    """
    if n_tenants < 1:
        raise SimulationError(
            f"the population needs at least one tenant, got {n_tenants}"
        )
    if n_epochs < 3:
        raise SimulationError(
            f"the population fleet needs n_epochs >= 3 (room for "
            f"mid-lifecycle churn), got {n_epochs}"
        )
    dataset = _cached_sales_dataset(n_rows, seed, dataset_gb)
    schema = dataset.schema
    pool = tuple(paper_sales_workload(schema, 5))
    rng = random.Random(derive_seed(seed, "population"))

    tenants = []
    for i in range(n_tenants):
        query = pool[i % len(pool)]
        intensity = 0.5 + rng.random()
        arrival = 0
        departure: "int | None" = None
        if elastic and i > 0 and rng.random() < 0.2:
            if rng.random() < 0.5:
                arrival = rng.randrange(1, n_epochs - 1)
            else:
                departure = rng.randrange(2, n_epochs)
        tenants.append(
            Tenant(
                name=f"p{i}",
                workload=Workload(
                    schema,
                    (
                        replace(
                            query,
                            frequency=query.frequency * intensity,
                        ),
                    ),
                ),
                arrival_epoch=arrival,
                departure_epoch=departure,
            )
        )

    lattice = CuboidLattice(schema)
    catalogue = candidates_from_workload(
        lattice, Workload(schema, pool)
    )
    fleet = TenantFleet(
        tenants,
        dataset=dataset,
        deployment=sales_deployment(),
    )
    return MultiTenantSimulator(
        fleet,
        clock=SimulationClock(n_epochs),
        attribution=attribution,
        catalogue=catalogue,
        cache=cache,
    )


def async_sales_simulator(
    n_epochs: int = 24,
    n_rows: int = 60_000,
    seed: int = 42,
    dataset_gb: float = 10.0,
    build_slots: int = 1,
    build_discipline: str = "fifo",
    hours_per_month: "float | None" = None,
    charge_teardown_egress: bool = True,
    cache: "SubsetEvaluationCache | None" = None,
    market: "tuple[Provider, ...] | None" = None,
) -> LifecycleSimulator:
    """The drifting-warehouse scenario with wall-clock builds.

    Exactly :func:`drifting_sales_simulator`, except decided builds
    enter a :class:`~repro.simulate.builds.BuildQueue` with
    ``build_slots`` concurrent slots under ``build_discipline``
    (``fifo`` / ``shortest``), land only after their materialization
    hours have elapsed on the wall clock, and are billed by
    partial-period proration from the moment they land.

    ``hours_per_month`` overrides the wall-clock conversion (default
    :data:`repro.units.HOURS_PER_MONTH`); pass ``float("inf")`` for
    instant builds, under which this preset reproduces
    :func:`drifting_sales_simulator`'s ledgers byte-identically — the
    sync-parity invariant.
    """
    config = (
        BuildConfig(slots=build_slots, discipline=build_discipline)
        if hours_per_month is None
        else BuildConfig(
            slots=build_slots,
            discipline=build_discipline,
            hours_per_month=hours_per_month,
        )
    )
    return drifting_sales_simulator(
        n_epochs=n_epochs,
        n_rows=n_rows,
        seed=seed,
        dataset_gb=dataset_gb,
        charge_teardown_egress=charge_teardown_egress,
        cache=cache,
        market=market,
        builds=config,
    )
