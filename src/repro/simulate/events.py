"""Lifecycle events: what changes between epochs.

Each event names the epoch it fires at (events fire at the *start* of
their epoch, before that epoch's selection decision) and transforms a
:class:`~repro.simulate.state.WarehouseState` into the next one:

* workload drift — :class:`AddQueries`, :class:`DropQueries`,
  :class:`ReweightQueries`;
* data dynamics — :class:`GrowFactTable` (logical growth or purge);
* market dynamics — :class:`PriceChange` (the warehouse is forced onto
  a new price book), :class:`MarketReprice` (a book's quote moves; the
  warehouse follows only if it is on that book's family), and
  :class:`ProviderMigration` (a deliberate provider switch the
  simulator bills: dataset + view egress, plus re-materialization on
  the target);
* capacity dynamics — :class:`FleetChange` (scale out/in, node loss);
* tenant churn — :class:`TenantArrival`, :class:`TenantDeparture`:
  a tenant joins or leaves the shared warehouse mid-lifecycle.  Both
  are *billed* events: the simulator charges the arriving tenant's
  onboarding (its initial result products are loaded into the
  warehouse at the current book's inbound rates) and the departing
  tenant's offboarding settlement (its final result footprint is
  exported at the book it leaves behind).  The state transform is the
  workload change itself; a :class:`~repro.simulate.tenants.
  TenantFleet` compiles them from ``Tenant.arrival_epoch`` /
  ``departure_epoch`` rather than having callers schedule them by
  hand;
* build dynamics — :class:`BuildStarted`, :class:`BuildCompleted`,
  :class:`BuildCancelled`: *markers* the asynchronous simulator emits
  into the ledger when a queued build starts late, lands mid-epoch, or
  is abandoned.  Unlike the other events they are outputs, not inputs
  — scheduling one on a timeline is legal but changes nothing (their
  ``apply`` is the identity).

An :class:`EventTimeline` holds a simulation's full schedule and hands
the simulator each epoch's events in a deterministic order (schedule
order within an epoch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import SchemaError, SimulationError
from ..pricing.providers import Provider
from ..workload.query import AggregateQuery
from ..workload.workload import Workload
from .state import WarehouseState

__all__ = [
    "SimulationEvent",
    "AddQueries",
    "DropQueries",
    "ReweightQueries",
    "GrowFactTable",
    "PriceChange",
    "MarketReprice",
    "ProviderMigration",
    "FleetChange",
    "TenantArrival",
    "TenantDeparture",
    "BuildStarted",
    "BuildCompleted",
    "BuildCancelled",
    "EventTimeline",
]


@dataclass(frozen=True)
class SimulationEvent:
    """Base event: fires at the start of ``epoch``.

    Parameters
    ----------
    epoch:
        Zero-based epoch index the event fires at, *before* that
        epoch's selection decision.

    Subclasses implement :meth:`apply` (the state transform) and
    :meth:`describe` (the ledger display form).
    """

    epoch: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise SimulationError(
                f"events fire at epoch >= 0, got {self.epoch}"
            )

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state after this event.

        Parameters
        ----------
        state:
            The warehouse state as it stands when the event fires.

        Returns
        -------
        WarehouseState
            A new state; the input is never mutated.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable form for ledgers and logs.

        Returns
        -------
        str
            A compact one-token summary (e.g. ``data x1.3``).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class AddQueries(SimulationEvent):
    """New queries join the workload.

    Parameters
    ----------
    queries:
        The arriving :class:`~repro.workload.query.AggregateQuery`
        objects; at least one, with names not already in the workload.
    """

    queries: Tuple[AggregateQuery, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.queries:
            raise SimulationError("AddQueries needs at least one query")

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state with the new queries appended to the workload."""
        try:
            return state.with_workload(
                state.workload.with_queries(self.queries)
            )
        except SchemaError as error:
            raise SimulationError(
                f"epoch {self.epoch}: cannot add queries: {error}"
            ) from error

    def describe(self) -> str:
        """``+queries[...]`` with the arriving query names."""
        names = ", ".join(q.name for q in self.queries)
        return f"+queries[{names}]"


@dataclass(frozen=True)
class DropQueries(SimulationEvent):
    """Queries leave the workload.

    Parameters
    ----------
    names:
        Names of the departing queries; each must exist in the
        workload when the event fires.
    """

    names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.names:
            raise SimulationError("DropQueries needs at least one name")

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state with the named queries removed from the workload."""
        try:
            return state.with_workload(state.workload.without(self.names))
        except SchemaError as error:
            raise SimulationError(
                f"epoch {self.epoch}: cannot drop queries: {error}"
            ) from error

    def describe(self) -> str:
        """``-queries[...]`` with the departing query names."""
        return f"-queries[{', '.join(self.names)}]"


@dataclass(frozen=True)
class ReweightQueries(SimulationEvent):
    """Query frequencies shift (hot queries get hotter, cold colder).

    Parameters
    ----------
    frequencies:
        ``(query name, new frequency)`` pairs; each name must exist
        and may appear only once (a duplicate would silently shadow
        the earlier weight).
    """

    frequencies: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.frequencies:
            raise SimulationError(
                "ReweightQueries needs at least one (name, frequency)"
            )
        names = [name for name, _ in self.frequencies]
        if len(set(names)) != len(names):
            raise SimulationError(
                "ReweightQueries lists a query more than once; a "
                "duplicate would silently shadow the earlier weight"
            )

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state with the named queries' frequencies replaced."""
        try:
            return state.with_workload(
                state.workload.reweighted(dict(self.frequencies))
            )
        except SchemaError as error:
            raise SimulationError(
                f"epoch {self.epoch}: cannot reweight queries: {error}"
            ) from error

    def describe(self) -> str:
        """``~freq[...]`` with the new per-query weights."""
        parts = ", ".join(f"{n}x{f:g}" for n, f in self.frequencies)
        return f"~freq[{parts}]"


@dataclass(frozen=True)
class GrowFactTable(SimulationEvent):
    """The fact table grows (or shrinks) by a logical factor.

    Parameters
    ----------
    factor:
        Multiplier on the logical row count; ``> 1`` models data
        landing, ``< 1`` a retention purge.  Must be positive.
    """

    factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 0:
            raise SimulationError(
                f"growth factor must be positive, got {self.factor}"
            )

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state after logical growth (or purge) by ``factor``."""
        return state.grown(self.factor)

    def describe(self) -> str:
        """``data xF`` with the growth factor."""
        return f"data x{self.factor:g}"


@dataclass(frozen=True)
class PriceChange(SimulationEvent):
    """The warehouse moves to (or is repriced under) a new price book.

    Unconditional: the active deployment adopts ``provider`` whatever
    book the warehouse was on — a forced repricing (contract change,
    acquisition, mandated move).  For a quote that should only follow
    the warehouse onto its own provider's family, use
    :class:`MarketReprice`; for a *billed* deliberate switch, use
    :class:`ProviderMigration`.

    Parameters
    ----------
    provider:
        The price book the warehouse is billed under from this epoch.
    """

    provider: Provider = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.provider is None:
            raise SimulationError(
                f"{type(self).__name__} needs a provider"
            )

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state billed under the new provider's price book.

        Returns
        -------
        WarehouseState
            The state with the active deployment on ``provider`` (and
            the market's matching family quote synchronized).
        """
        return state.with_provider(self.provider)

    def describe(self) -> str:
        """``prices->provider`` with the new price book's name."""
        return f"prices->{self.provider.name}"


@dataclass(frozen=True)
class MarketReprice(PriceChange):
    """A provider's quote moves; the warehouse follows only its own book.

    Spot walks emit these: the *market price* of one provider family
    changes.  If the warehouse is on that family, its bill moves with
    the quote (exactly the old :class:`PriceChange` behaviour); if it
    migrated elsewhere, only the market entry updates — the quote
    stays visible to migration policies without yanking the warehouse
    back onto a book it deliberately left.

    Parameters
    ----------
    provider:
        The family's new quote (e.g. a spot-repriced book named
        ``aws-2012~x1.250``).
    """

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state with the quote landed (family-gated; see class docs)."""
        return state.repriced(self.provider)

    def describe(self) -> str:
        """``market:provider`` with the moved quote's name."""
        return f"market:{self.provider.name}"


@dataclass(frozen=True)
class ProviderMigration(PriceChange):
    """The warehouse deliberately switches provider — and pays for it.

    The state transform is the same as :class:`PriceChange` (the
    active deployment adopts the target book), but the simulator
    bills the switch: the dataset and every held view are egressed on
    the *source* book and ingressed on the *target* book
    (:func:`repro.pricing.migration.migration_transfer_cost`), and
    every view kept through the move is re-materialized at the
    target's compute rates.  Emitted by the arbitrage policy
    (:class:`repro.simulate.arbitrage.ArbitrageAware`) when switching
    pays, or scheduled directly for a forced migration.

    Parameters
    ----------
    provider:
        The target price book.
    """

    def describe(self) -> str:
        """``migrate->provider`` with the target book's name."""
        return f"migrate->{self.provider.name}"


@dataclass(frozen=True)
class FleetChange(SimulationEvent):
    """The instance fleet is resized (scale event or node failure).

    Parameters
    ----------
    n_instances:
        The new fleet size; at least one instance.
    """

    n_instances: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_instances < 1:
            raise SimulationError(
                f"the fleet needs at least one instance, got {self.n_instances}"
            )

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state running on the resized instance fleet."""
        return state.with_fleet(self.n_instances)

    def describe(self) -> str:
        """``fleet->N`` with the new instance count."""
        return f"fleet->{self.n_instances}"


@dataclass(frozen=True)
class TenantArrival(SimulationEvent):
    """A tenant joins the shared warehouse mid-lifecycle.

    The state transform joins the tenant's (already fleet-qualified)
    queries to the merged workload.  The simulator additionally *bills*
    the arrival: the tenant's initial result products — one copy of
    each arriving query's result — are loaded into the warehouse at
    the current book's inbound transfer rates, recorded as the epoch's
    ``onboarding`` charge and attributed 100% to the arriving tenant.
    (The marginal view demand the arrival creates is billed through
    the ordinary build path: views built to serve the newcomer land in
    ``build_cost`` and the per-view user split hands the newcomer its
    share.)

    Parameters
    ----------
    tenant:
        The arriving tenant's name.
    queries:
        The tenant's initial queries, already namespaced to fleet-wide
        names (``acme/Q1``); at least one.
    precedes:
        Names of tenants that come *after* this one in the fleet's
        roster order.  When given, the arriving queries are inserted
        *before* the first workload query owned by any of them, so the
        merged workload keeps one canonical order — roster order —
        however tenants' arrival epochs interleave.  This is what
        makes a tenant's records invariant to *when* unrelated tenants
        arrive: workload order (and with it every order-sensitive
        float accumulation) never depends on the churn schedule.
        Empty means append, the pre-elastic behavior for hand-built
        events.
    """

    tenant: str = ""
    queries: Tuple[AggregateQuery, ...] = ()
    precedes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.tenant:
            raise SimulationError("TenantArrival needs a tenant name")
        if not self.queries:
            raise SimulationError(
                f"tenant {self.tenant!r} cannot arrive with no queries"
            )

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state with the tenant's queries joined to the workload."""
        try:
            workload = state.workload
            position = len(workload)
            if self.precedes:
                laters = frozenset(self.precedes)
                for index, query in enumerate(workload):
                    owner, _, rest = query.name.partition("/")
                    if rest and owner in laters:
                        position = index
                        break
            existing = tuple(workload)
            merged = Workload(
                workload.schema,
                (
                    *existing[:position],
                    *self.queries,
                    *existing[position:],
                ),
            )
            return state.with_workload(merged)
        except SchemaError as error:
            raise SimulationError(
                f"epoch {self.epoch}: tenant {self.tenant!r} cannot "
                f"arrive: {error}"
            ) from error

    def describe(self) -> str:
        """``+tenant[name:Nq]`` with the arriving query count."""
        return f"+tenant[{self.tenant}:{len(self.queries)}q]"


@dataclass(frozen=True)
class TenantDeparture(SimulationEvent):
    """A tenant leaves the shared warehouse mid-lifecycle.

    Fires at the start of ``epoch``: the tenant's last *billed* epoch
    is ``epoch - 1``, and ``epoch`` carries only its settlement.  The
    state transform drops the tenant's remaining queries; the
    simulator bills the offboarding — the tenant's final result
    footprint is exported at the book being left (outbound transfer,
    priced *before* any same-epoch repricing or migration applies) —
    and attribution records it on a settlement-only
    :class:`~repro.simulate.ledger.TenantEpochRecord` charged 100% to
    the departing tenant.

    Parameters
    ----------
    tenant:
        The departing tenant's name.
    names:
        The tenant's remaining fleet-qualified query names when it
        leaves.  May be empty — a tenant whose drift already dropped
        every query still departs (and settles at zero export volume).
    """

    tenant: str = ""
    names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.tenant:
            raise SimulationError("TenantDeparture needs a tenant name")

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state with the tenant's remaining queries removed."""
        if not self.names:
            return state
        try:
            return state.with_workload(state.workload.without(self.names))
        except SchemaError as error:
            raise SimulationError(
                f"epoch {self.epoch}: tenant {self.tenant!r} cannot "
                f"depart: {error}"
            ) from error

    def describe(self) -> str:
        """``-tenant[name]``."""
        return f"-tenant[{self.tenant}]"


@dataclass(frozen=True)
class _BuildMarker(SimulationEvent):
    """Base for build markers: informational, state-preserving.

    Parameters
    ----------
    view:
        The view whose build the marker describes.
    month:
        The simulation month the marked transition happened at.

    Emitted by the asynchronous simulator only when they carry
    information the ledger's ``views_built`` columns do not: a start
    delayed past its submission (slot contention), a landing after the
    epoch began (wall-clock latency), a cancellation.  Synchronous and
    zero-latency runs therefore emit none — which is what keeps their
    ledgers byte-identical to the pre-async ones.
    """

    view: str = ""
    month: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.view:
            raise SimulationError(
                f"{type(self).__name__} needs a view name"
            )

    def apply(self, state: WarehouseState) -> WarehouseState:
        """Markers record history; the state passes through unchanged."""
        return state


@dataclass(frozen=True)
class BuildStarted(_BuildMarker):
    """A queued build finally got a slot, later than it was submitted."""

    def describe(self) -> str:
        """``build:view started@m`` with the start month."""
        return f"build:{self.view} started@{self.month:g}"


@dataclass(frozen=True)
class BuildCompleted(_BuildMarker):
    """A build landed: the view is live (and billed) from ``month`` on."""

    def describe(self) -> str:
        """``build:view live@m`` with the landing month."""
        return f"build:{self.view} live@{self.month:g}"


@dataclass(frozen=True)
class BuildCancelled(_BuildMarker):
    """An in-flight build was abandoned; only sunk compute is billed."""

    def describe(self) -> str:
        """``build:view cancelled@m`` with the cancellation month."""
        return f"build:{self.view} cancelled@{self.month:g}"


class EventTimeline:
    """A simulation's full event schedule, grouped per epoch."""

    def __init__(self, events: Sequence[SimulationEvent] = ()) -> None:
        self._by_epoch: Dict[int, List[SimulationEvent]] = {}
        self._events: Tuple[SimulationEvent, ...] = tuple(events)
        for event in self._events:
            self._by_epoch.setdefault(event.epoch, []).append(event)

    def at(self, epoch: int) -> Tuple[SimulationEvent, ...]:
        """The events firing at the start of ``epoch`` (schedule order)."""
        return tuple(self._by_epoch.get(epoch, ()))

    @property
    def last_epoch(self) -> int:
        """The latest epoch any event fires at (-1 when empty)."""
        return max(self._by_epoch, default=-1)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimulationEvent]:
        return iter(self._events)

    def check_within(self, n_epochs: int) -> None:
        """Fail fast if any event is scheduled past the clock's horizon."""
        if self.last_epoch >= n_epochs:
            raise SimulationError(
                f"event scheduled at epoch {self.last_epoch} but the clock "
                f"only runs {n_epochs} epochs"
            )
