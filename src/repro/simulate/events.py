"""Lifecycle events: what changes between epochs.

Each event names the epoch it fires at (events fire at the *start* of
their epoch, before that epoch's selection decision) and transforms a
:class:`~repro.simulate.state.WarehouseState` into the next one:

* workload drift — :class:`AddQueries`, :class:`DropQueries`,
  :class:`ReweightQueries`;
* data dynamics — :class:`GrowFactTable` (logical growth or purge);
* market dynamics — :class:`PriceChange` (a new provider price book);
* capacity dynamics — :class:`FleetChange` (scale out/in, node loss).

An :class:`EventTimeline` holds a simulation's full schedule and hands
the simulator each epoch's events in a deterministic order (schedule
order within an epoch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import SchemaError, SimulationError
from ..pricing.providers import Provider
from ..workload.query import AggregateQuery
from .state import WarehouseState

__all__ = [
    "SimulationEvent",
    "AddQueries",
    "DropQueries",
    "ReweightQueries",
    "GrowFactTable",
    "PriceChange",
    "FleetChange",
    "EventTimeline",
]


@dataclass(frozen=True)
class SimulationEvent:
    """Base event: fires at the start of ``epoch``."""

    epoch: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise SimulationError(
                f"events fire at epoch >= 0, got {self.epoch}"
            )

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state after this event."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable form for ledgers and logs."""
        raise NotImplementedError


@dataclass(frozen=True)
class AddQueries(SimulationEvent):
    """New queries join the workload."""

    queries: Tuple[AggregateQuery, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.queries:
            raise SimulationError("AddQueries needs at least one query")

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state with the new queries appended to the workload."""
        try:
            return state.with_workload(
                state.workload.with_queries(self.queries)
            )
        except SchemaError as error:
            raise SimulationError(
                f"epoch {self.epoch}: cannot add queries: {error}"
            ) from error

    def describe(self) -> str:
        """``+queries[...]`` with the arriving query names."""
        names = ", ".join(q.name for q in self.queries)
        return f"+queries[{names}]"


@dataclass(frozen=True)
class DropQueries(SimulationEvent):
    """Queries leave the workload."""

    names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.names:
            raise SimulationError("DropQueries needs at least one name")

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state with the named queries removed from the workload."""
        try:
            return state.with_workload(state.workload.without(self.names))
        except SchemaError as error:
            raise SimulationError(
                f"epoch {self.epoch}: cannot drop queries: {error}"
            ) from error

    def describe(self) -> str:
        """``-queries[...]`` with the departing query names."""
        return f"-queries[{', '.join(self.names)}]"


@dataclass(frozen=True)
class ReweightQueries(SimulationEvent):
    """Query frequencies shift (hot queries get hotter, cold colder)."""

    frequencies: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.frequencies:
            raise SimulationError(
                "ReweightQueries needs at least one (name, frequency)"
            )
        names = [name for name, _ in self.frequencies]
        if len(set(names)) != len(names):
            raise SimulationError(
                "ReweightQueries lists a query more than once; a "
                "duplicate would silently shadow the earlier weight"
            )

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state with the named queries' frequencies replaced."""
        try:
            return state.with_workload(
                state.workload.reweighted(dict(self.frequencies))
            )
        except SchemaError as error:
            raise SimulationError(
                f"epoch {self.epoch}: cannot reweight queries: {error}"
            ) from error

    def describe(self) -> str:
        """``~freq[...]`` with the new per-query weights."""
        parts = ", ".join(f"{n}x{f:g}" for n, f in self.frequencies)
        return f"~freq[{parts}]"


@dataclass(frozen=True)
class GrowFactTable(SimulationEvent):
    """The fact table grows (or shrinks) by a logical factor."""

    factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 0:
            raise SimulationError(
                f"growth factor must be positive, got {self.factor}"
            )

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state after logical growth (or purge) by ``factor``."""
        return state.grown(self.factor)

    def describe(self) -> str:
        """``data xF`` with the growth factor."""
        return f"data x{self.factor:g}"


@dataclass(frozen=True)
class PriceChange(SimulationEvent):
    """The warehouse moves to (or is repriced under) a new price book."""

    provider: Provider = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.provider is None:
            raise SimulationError("PriceChange needs a provider")

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state billed under the new provider's price book."""
        return state.with_provider(self.provider)

    def describe(self) -> str:
        """``prices->provider`` with the new price book's name."""
        return f"prices->{self.provider.name}"


@dataclass(frozen=True)
class FleetChange(SimulationEvent):
    """The instance fleet is resized (scale event or node failure)."""

    n_instances: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_instances < 1:
            raise SimulationError(
                f"the fleet needs at least one instance, got {self.n_instances}"
            )

    def apply(self, state: WarehouseState) -> WarehouseState:
        """The state running on the resized instance fleet."""
        return state.with_fleet(self.n_instances)

    def describe(self) -> str:
        """``fleet->N`` with the new instance count."""
        return f"fleet->{self.n_instances}"


class EventTimeline:
    """A simulation's full event schedule, grouped per epoch."""

    def __init__(self, events: Sequence[SimulationEvent] = ()) -> None:
        self._by_epoch: Dict[int, List[SimulationEvent]] = {}
        self._events: Tuple[SimulationEvent, ...] = tuple(events)
        for event in self._events:
            self._by_epoch.setdefault(event.epoch, []).append(event)

    def at(self, epoch: int) -> Tuple[SimulationEvent, ...]:
        """The events firing at the start of ``epoch`` (schedule order)."""
        return tuple(self._by_epoch.get(epoch, ()))

    @property
    def last_epoch(self) -> int:
        """The latest epoch any event fires at (-1 when empty)."""
        return max(self._by_epoch, default=-1)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimulationEvent]:
        return iter(self._events)

    def check_within(self, n_epochs: int) -> None:
        """Fail fast if any event is scheduled past the clock's horizon."""
        if self.last_epoch >= n_epochs:
            raise SimulationError(
                f"event scheduled at epoch {self.last_epoch} but the clock "
                f"only runs {n_epochs} epochs"
            )
