"""Sharded attribution: population-scale tenant splits, exactly.

At 10⁴–10⁵ tenants, splitting every epoch's bill is the dominant
cost of a fleet run, and holding every tenant's every epoch record is
the dominant memory.  This module shards the per-tenant product work
of one epoch's :class:`~repro.simulate.attribution.AllocationEntry`
plan across worker processes and streams the merged
:class:`~repro.simulate.ledger.TenantEpochRecord`\\ s back, so the
caller can fold them into
:class:`~repro.simulate.ledger.TenantTotals` without materializing
the tenant x epoch matrix.

**Why the results are byte-identical for any shard count.**
:func:`~repro.simulate.attribution.allocate_exactly` gives every
tenant but the last the product ``amount * (weight / total)`` — a
*per-tenant independent* expression — and hands the last tenant the
residual ``amount - running`` where ``running`` is the sequential sum
of the earlier products.  Shards therefore compute only the
independent products for their contiguous tenant range; the merge
replays the sequential running sum in global tenant order (shard 0's
tenants first, then shard 1's, ...) and assigns the global-last
tenant the residual.  Every Decimal operation — each product, each
addition, in the same order — is identical to the unsharded split,
whether the products were computed in-process (``jobs=1``) or by a
worker pool, so the books do not merely balance: they are the same
bytes.
"""

from __future__ import annotations

from multiprocessing import get_context
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..money import Money, ZERO
from .attribution import AllocationEntry, SharedCostAttributor
from .ledger import EpochRecord, TenantEpochRecord

__all__ = ["ShardedAttribution", "shard_bounds"]

#: One shard's work order: for each plan entry, ``(amount, weights
#: slice for the shard's tenant range, total)``.
_ShardPayload = Tuple[Tuple[Money, Tuple[float, ...], float], ...]

#: The record fields an :class:`AllocationEntry` may land on.
_FIELDS = (
    "processing_cost",
    "transfer_cost",
    "maintenance_cost",
    "storage_cost",
    "build_cost",
    "teardown_cost",
    "migration_cost",
    "cancelled_cost",
)


def shard_bounds(n_tenants: int, shards: int) -> Tuple[Tuple[int, int], ...]:
    """Contiguous, balanced ``[start, stop)`` tenant ranges.

    The first ``n_tenants % shards`` shards take one extra tenant;
    shards beyond the population come out empty (a 3-tenant fleet on 8
    shards is legal, just idle).
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(n_tenants, shards)
    bounds = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return tuple(bounds)


def _shard_products(
    payload: _ShardPayload,
) -> Tuple[Tuple[Money, ...], ...]:
    """One shard's independent per-tenant products, entry by entry.

    Evaluates exactly the Money expression
    :func:`~repro.simulate.attribution.allocate_exactly` gives a
    non-last tenant: ``amount * (weight / total)``, with the weight
    already clipped and the zero-total fallback already applied by
    :meth:`~repro.simulate.attribution.SharedCostAttributor.component_plan`.
    Runs in worker processes (top-level so it pickles) and in-process
    for ``jobs=1`` — the same code path either way.
    """
    return tuple(
        tuple(amount * (weight / total) for weight in weights)
        for amount, weights, total in payload
    )


class ShardedAttribution:
    """Splits epochs across tenant shards, streaming exact records.

    Parameters
    ----------
    attributor:
        The fleet's :class:`~repro.simulate.attribution.
        SharedCostAttributor`; supplies the per-epoch
        :meth:`~repro.simulate.attribution.SharedCostAttributor.
        component_plan`.
    shards:
        How many contiguous tenant ranges to partition each epoch
        into.  Results are byte-identical for every value.
    jobs:
        Worker processes evaluating shard products.  ``1`` (the
        default) stays in-process; larger values fork a pool lazily on
        first use.  Identical results either way.
    """

    def __init__(
        self,
        attributor: SharedCostAttributor,
        shards: int = 1,
        jobs: int = 1,
    ) -> None:
        if shards < 1:
            raise SimulationError(f"shards must be >= 1, got {shards}")
        if jobs < 1:
            raise SimulationError(f"jobs must be >= 1, got {jobs}")
        self._attributor = attributor
        self._shards = shards
        self._jobs = jobs
        self._pool = None

    @property
    def shards(self) -> int:
        """The configured shard count."""
        return self._shards

    @property
    def jobs(self) -> int:
        """The configured worker-process count."""
        return self._jobs

    def _map(self, payloads: Sequence[_ShardPayload]):
        """Evaluate shard payloads, in-process or across the pool."""
        if self._jobs == 1:
            return [_shard_products(payload) for payload in payloads]
        if self._pool is None:
            try:
                context = get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = get_context("spawn")
            self._pool = context.Pool(processes=self._jobs)
        return self._pool.map(_shard_products, payloads)

    def close(self) -> None:
        """Shut the worker pool down (idempotent; no-op for jobs=1)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def attribute_streaming(
        self,
        problem,
        record: EpochRecord,
        breakdown,
        tenants: Optional[Sequence[str]] = None,
    ) -> Iterator[TenantEpochRecord]:
        """One epoch's per-tenant records, merged from shard products.

        Yields the epoch's records in tenant order (active split
        first, then departure settlements), after verifying that every
        component's shares sum exactly to the fleet record — the
        per-epoch half of the sum-to-fleet-ledger invariant, checked
        here because streaming callers never hold a full
        :class:`~repro.simulate.ledger.FleetLedger` to re-check.
        """
        entries, hours = self._attributor.component_plan(
            problem, record, breakdown, tenants
        )
        active = (
            tuple(tenants)
            if tenants is not None
            else self._attributor.tenants
        )
        n = len(active)
        bounds = shard_bounds(n, self._shards)
        payloads = [
            tuple(
                (entry.amount, entry.weights[start:stop], entry.total)
                for entry in entries
            )
            for start, stop in bounds
        ]
        shard_results = self._map(payloads)

        # Merge: per entry, replay the sequential running sum in
        # global tenant order; the globally-last tenant takes the
        # exact residual — allocate_exactly's association, verbatim.
        values: List[Dict[str, Money]] = [
            {field: ZERO for field in _FIELDS} for _ in range(n)
        ]
        for entry_index, entry in enumerate(entries):
            running = ZERO
            position = 0
            for shard_index in range(len(bounds)):
                for share in shard_results[shard_index][entry_index]:
                    if position == n - 1:
                        break
                    values[position][entry.field] += share
                    running = running + share
                    position += 1
            values[n - 1][entry.field] += entry.amount - running

        arrivals = dict(record.arrivals)
        missing = set(arrivals) - set(active)
        if missing:
            raise SimulationError(
                f"epoch {record.epoch}: arrival charges for "
                f"{sorted(missing)!r}, which are not in the active split"
            )
        checks = {field: ZERO for field in _FIELDS}
        produced = []
        for index, name in enumerate(active):
            fields = values[index]
            for field in _FIELDS:
                checks[field] += fields[field]
            produced.append(
                TenantEpochRecord(
                    epoch=record.epoch,
                    tenant=name,
                    processing_cost=fields["processing_cost"],
                    transfer_cost=fields["transfer_cost"],
                    maintenance_cost=fields["maintenance_cost"],
                    storage_cost=fields["storage_cost"],
                    build_cost=fields["build_cost"],
                    teardown_cost=fields["teardown_cost"],
                    processing_hours=hours[name],
                    migration_cost=fields["migration_cost"],
                    cancelled_cost=fields["cancelled_cost"],
                    onboarding_cost=arrivals.get(name, ZERO),
                )
            )
        self._verify_epoch(record, checks)
        for share in produced:
            yield share
        for tenant, amount in record.departures:
            if tenant in arrivals or tenant in set(active):
                raise SimulationError(
                    f"epoch {record.epoch}: departure settlement for "
                    f"{tenant!r}, which is still in the active split"
                )
            yield TenantEpochRecord(
                epoch=record.epoch,
                tenant=tenant,
                processing_cost=ZERO,
                transfer_cost=ZERO,
                maintenance_cost=ZERO,
                storage_cost=ZERO,
                build_cost=ZERO,
                teardown_cost=ZERO,
                processing_hours=0.0,
                offboarding_cost=amount,
            )

    @staticmethod
    def _verify_epoch(
        record: EpochRecord, checks: Dict[str, Money]
    ) -> None:
        """The per-epoch books-balance check, against the fleet record."""
        operating = (
            checks["processing_cost"]
            + checks["transfer_cost"]
            + checks["maintenance_cost"]
            + checks["storage_cost"]
        )
        expected = (
            ("operating", record.operating_cost, operating),
            ("build", record.build_cost, checks["build_cost"]),
            ("teardown", record.teardown_cost, checks["teardown_cost"]),
            ("migration", record.migration_cost, checks["migration_cost"]),
            ("cancelled", record.cancelled_cost, checks["cancelled_cost"]),
        )
        for component, fleet_amount, tenant_sum in expected:
            if fleet_amount != tenant_sum:
                raise SimulationError(
                    f"epoch {record.epoch}: sharded {component} shares "
                    f"sum to {tenant_sum}, fleet charged {fleet_amount}"
                )
