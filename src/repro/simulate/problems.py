"""Incremental construction of per-epoch selection problems.

Rebuilding a :class:`~repro.optimizer.problem.SelectionProblem` from
scratch every epoch would re-price the whole world even when nothing
changed.  :class:`EpochProblemBuilder` avoids that with three reuse
layers, coarsest first:

1. **problem cache** — state key -> :class:`SelectionProblem`.  An
   epoch whose state is unchanged (or that returns to an earlier
   state) gets the *same* problem object back, with every subset it
   ever priced still memoized.
2. **priced worlds** — per (dataset, deployment) world, candidate-view
   statistics are computed once and each distinct query signature
   (grain + filters) is priced once.  Workload drift that adds one
   query prices one query; drops and re-weightings price nothing
   (frequencies are applied at plan time, not pricing time).
3. **shared subset cache** — one
   :class:`~repro.optimizer.problem.SubsetEvaluationCache` spans every
   problem the builder creates, so multi-policy sweeps over the same
   timeline share subset pricings across runs.

``builds``, ``queries_priced`` and ``worlds_built`` are exposed so
tests and benchmarks can assert the incremental path actually short-
circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence, Tuple

from ..costmodel.estimator import PlanningEstimator, PlanningInputs, QueryPricing
from ..cube.views import CandidateView, ViewStats
from ..optimizer.problem import (
    EvaluationStats,
    SelectionProblem,
    SubsetEvaluationCache,
)
from ..pricing.providers import Provider
from ..workload.workload import Workload
from .state import Holdings, WarehouseState

__all__ = ["EpochContext", "EpochProblemBuilder"]

#: A query's pricing identity: everything but name and frequency.
_QuerySig = Tuple[Tuple[str, ...], tuple]


class _PricedWorld:
    """One (dataset, deployment) world with incrementally priced queries."""

    def __init__(
        self, state: WarehouseState, catalogue: Tuple[CandidateView, ...]
    ) -> None:
        self._estimator = PlanningEstimator(state.dataset, state.deployment)
        self._catalogue = catalogue
        self._view_stats: Dict[str, ViewStats] = (
            self._estimator.view_statistics(catalogue)
        )
        self._pricings: Dict[_QuerySig, QueryPricing] = {}

    def _pricing(self, query) -> Tuple[QueryPricing, bool]:
        sig: _QuerySig = (query.grain, query.filters)
        pricing = self._pricings.get(sig)
        if pricing is not None:
            return pricing, False
        pricing = self._estimator.price_query(query, self._view_stats)
        self._pricings[sig] = pricing
        return pricing, True

    def inputs_for(self, workload: Workload) -> Tuple[PlanningInputs, int]:
        """Planning inputs for ``workload``; returns (inputs, newly priced)."""
        fresh = 0

        def memoized(query) -> QueryPricing:
            nonlocal fresh
            pricing, priced_now = self._pricing(query)
            fresh += int(priced_now)
            return pricing

        inputs = self._estimator.assemble(
            workload, self._catalogue, self._view_stats, memoized
        )
        return inputs, fresh


@dataclass(frozen=True)
class EpochContext:
    """What one epoch's policy decision may consult beyond its problem.

    Handed to :meth:`~repro.simulate.policy.ReselectionPolicy.
    decide_in_context` by the simulator.  ``state`` is the epoch's
    post-event warehouse state (its :meth:`~repro.simulate.state.
    WarehouseState.candidate_books` are the migration targets on the
    table, its :attr:`~repro.simulate.state.WarehouseState.holdings`
    the live/pending view split under asynchronous builds);
    :meth:`counterfactual` prices the same world under another
    provider's book through the shared builder, so repeated
    counterfactuals over unchanged epochs are answered from cache.
    """

    state: WarehouseState
    builder: "EpochProblemBuilder"

    @property
    def holdings(self) -> Holdings:
        """The epoch's live/pending view split (empty under sync runs)."""
        return self.state.holdings

    @property
    def queue_depth(self) -> int:
        """Builds in flight when the decision is taken — the knob a
        queue-aware policy throttles on (0 under synchronous runs)."""
        return self.state.holdings.queue_depth

    def counterfactual(self, provider: Provider) -> SelectionProblem:
        """This epoch's world billed under ``provider`` instead.

        Built through the shared :class:`EpochProblemBuilder`, so the
        counterfactual problem memoizes subset pricings exactly like
        the real one — an arbitrage policy pricing K providers over an
        unchanged epoch re-prices nothing.
        """
        return self.builder.problem_for(self.state.with_provider(provider))


class EpochProblemBuilder:
    """Turns warehouse states into (cached) selection problems."""

    def __init__(
        self,
        catalogue: Sequence[CandidateView],
        cache: Optional[SubsetEvaluationCache] = None,
    ) -> None:
        self._catalogue: Tuple[CandidateView, ...] = tuple(catalogue)
        self._cache = cache if cache is not None else SubsetEvaluationCache()
        self._problems: Dict[Hashable, SelectionProblem] = {}
        self._worlds: Dict[Hashable, _PricedWorld] = {}
        #: Problems actually constructed (not served from the cache).
        self.builds = 0
        #: Queries priced through the estimator (not reused).
        self.queries_priced = 0
        #: Distinct (dataset, deployment) worlds instantiated.
        self.worlds_built = 0

    @property
    def catalogue(self) -> Tuple[CandidateView, ...]:
        """The fixed candidate-view universe every epoch selects from."""
        return self._catalogue

    @property
    def cache(self) -> SubsetEvaluationCache:
        """The subset cache shared by every problem this builder makes."""
        return self._cache

    @property
    def problems_cached(self) -> int:
        """How many distinct states have been turned into problems."""
        return len(self._problems)

    def evaluation_stats(self) -> "EvaluationStats":
        """Aggregate evaluate() counters across every cached problem.

        ``calls`` minus ``priced`` is the number of subset pricings the
        two cache layers avoided — the quantity the benchmarks report.
        """
        total = EvaluationStats()
        for problem in self._problems.values():
            stats = problem.stats
            total.calls += stats.calls
            total.local_hits += stats.local_hits
            total.shared_hits += stats.shared_hits
            total.priced += stats.priced
        return total

    def _world_key(self, state: WarehouseState) -> Hashable:
        return (state.dataset_key(), state.deployment.fingerprint())

    def problem_for(self, state: WarehouseState) -> SelectionProblem:
        """The selection problem for ``state`` (cached by state key).

        The shared-cache key couples the state with this builder's
        catalogue: view names are only meaningful relative to a
        catalogue, so simulators sharing a cache but selecting from
        different universes must never alias each other's subsets.
        The deep key is interned through the cache to a small id, so
        per-``evaluate()`` lookups never re-hash the full fingerprint.
        """
        key = self._cache.intern((self._catalogue, state.key()))
        problem = self._problems.get(key)
        if problem is not None:
            return problem
        world_key = self._world_key(state)
        world = self._worlds.get(world_key)
        if world is None:
            world = _PricedWorld(state, self._catalogue)
            self._worlds[world_key] = world
            self.worlds_built += 1
        inputs, fresh = world.inputs_for(state.workload)
        self.queries_priced += fresh
        problem = SelectionProblem(inputs, cache=self._cache, state_key=key)
        self._problems[key] = problem
        self.builds += 1
        return problem
