"""Shared-cost attribution: one warehouse bill, split across tenants.

When several tenants share a warehouse, most of the bill is jointly
caused: a view at (day, country) may serve three tenants' dashboards,
the base dataset is stored once for everyone, and a maintenance job
refreshes a view for whoever queries it next.  A
:class:`SharedCostAttributor` splits every component of an epoch's
:class:`~repro.costmodel.total.CostBreakdown` into per-tenant shares
that **sum exactly** to the fleet amount — the invariant
:meth:`~repro.simulate.ledger.FleetLedger.verify_attribution` enforces.

Cost components and how they are split:

* **query processing** and **result transfer** — directly caused:
  every query belongs to exactly one tenant, so these are split by
  each tenant's frequency-weighted processing hours / egress volume;
* **view maintenance**, **view storage**, **view builds** — shared by
  the tenants whose queries the view answers this epoch, split by the
  attribution *mode* (below);
* **base-dataset storage**, **teardown egress**, **migration
  transfer** (the legs of a provider switch — the "which tenant pays
  for a migration?" charge) and **cancelled-build sunk compute** —
  fleet infrastructure with no per-view user set, split by the
  infrastructure rule (proportional to use, or evenly).

Asynchronous epochs (records carrying
:class:`~repro.simulate.ledger.EpochSegment`\\ s) are attributed
segment by segment: each segment's prorated operating components are
split by the views live *during that segment* — a tenant whose
dashboard view lands mid-epoch starts paying its view-storage share
only from the landing — and the per-segment shares sum across
segments to exactly the epoch's prorated fleet charges, so
:meth:`~repro.simulate.ledger.FleetLedger.verify_attribution` holds
unchanged.

Two attribution modes (:data:`ATTRIBUTION_MODES`):

* ``"proportional"`` — proportional-to-use: a view's charges are split
  by each using tenant's frequency-weighted accesses (a tenant running
  a view-answered query 6x/period pays twice the share of one running
  it 3x/period);
* ``"even"`` — Shapley-style even split: a view's cost is a fixed
  joint cost, and the Shapley value of a fixed-cost game shared by *k*
  symmetric players is ``cost / k``, so every tenant using the view
  pays the same share regardless of intensity.

Exactness: shares are computed in :class:`~repro.money.Money`
(``Decimal``) arithmetic, and each component's last tenant receives
``amount - sum(other shares)`` rather than its own rounded product, so
per-tenant ledgers always sum to the fleet ledger — not just "to the
cent" but to the last decimal digit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..costmodel.storage import storage_cost
from ..costmodel.total import CostBreakdown
from ..errors import SimulationError
from ..money import Money, ZERO
from ..optimizer.problem import SelectionOutcome, SelectionProblem
from .ledger import EpochRecord, TenantEpochRecord

__all__ = [
    "ATTRIBUTION_MODES",
    "TENANT_SEPARATOR",
    "AllocationEntry",
    "SharedCostAttributor",
    "allocate_exactly",
    "tenant_of_query",
]

#: Attribution modes accepted by :class:`SharedCostAttributor`.
ATTRIBUTION_MODES = ("proportional", "even")

#: Separator between a tenant's name and its queries' names in the
#: merged fleet workload ("acme/Q1" belongs to tenant "acme").
TENANT_SEPARATOR = "/"


def tenant_of_query(query_name: str) -> Optional[str]:
    """The tenant a namespaced fleet query belongs to (``None`` if unscoped)."""
    if TENANT_SEPARATOR not in query_name:
        return None
    return query_name.split(TENANT_SEPARATOR, 1)[0]


def allocate_exactly(
    amount: Money, weights: Mapping[str, float], order: Sequence[str]
) -> Dict[str, Money]:
    """Split ``amount`` by ``weights`` so the shares sum to it exactly.

    Every tenant but the last gets ``amount * (weight / total_weight)``;
    the last gets the exact residual, which absorbs any rounding of the
    Decimal products.  Zero (or degenerate) total weight falls back to
    an even split — a charge must never vanish just because nobody's
    weight registered.

    >>> from repro.money import Money
    >>> shares = allocate_exactly(
    ...     Money("10.00"), {"a": 2.0, "b": 1.0}, ["a", "b"]
    ... )
    >>> shares["a"] + shares["b"] == Money("10.00")
    True
    """
    if not order:
        raise SimulationError("cannot allocate a charge to zero tenants")
    total_weight = sum(max(0.0, weights.get(name, 0.0)) for name in order)
    if total_weight <= 0.0:
        weights = {name: 1.0 for name in order}
        total_weight = float(len(order))
    shares: Dict[str, Money] = {}
    running = ZERO
    for name in order[:-1]:
        share = amount * (max(0.0, weights.get(name, 0.0)) / total_weight)
        shares[name] = share
        running = running + share
    shares[order[-1]] = amount - running
    return shares


@dataclass(frozen=True)
class AllocationEntry:
    """One exact split, flattened for sharded execution.

    The normalized form of one :func:`allocate_exactly` call: ``field``
    names the :class:`~repro.simulate.ledger.TenantEpochRecord`
    component the shares land on, ``weights`` aligns with the active
    tenant order, and the zero-total even fallback is *already
    applied* (``total`` is the exact divisor the sequential split
    uses).  A worker can therefore compute any tenant's product share
    ``amount * (weights[i] / total)`` independently — the same Money
    expression :func:`allocate_exactly` evaluates — and the merge
    reassembles the sequential running sum so the globally-last tenant
    gets the exact residual, byte-identical for any shard count.
    """

    field: str
    amount: Money
    weights: Tuple[float, ...]
    total: float


class SharedCostAttributor:
    """Splits fleet charges into per-tenant shares (see module docs).

    Parameters
    ----------
    tenants:
        The tenant names, in the deterministic order used for residual
        assignment (the last tenant absorbs rounding residues).
    mode:
        One of :data:`ATTRIBUTION_MODES`.
    tenant_of:
        Maps a fleet query name to its owning tenant; defaults to the
        :data:`TENANT_SEPARATOR` prefix convention used by
        :class:`~repro.simulate.tenants.TenantFleet`.
    """

    def __init__(
        self,
        tenants: Sequence[str],
        mode: str = "proportional",
        tenant_of: Optional[Callable[[str], Optional[str]]] = None,
    ) -> None:
        if mode not in ATTRIBUTION_MODES:
            raise SimulationError(
                f"unknown attribution mode {mode!r}; "
                f"choose from {ATTRIBUTION_MODES}"
            )
        if not tenants:
            raise SimulationError("an attributor needs at least one tenant")
        if len(set(tenants)) != len(tenants):
            raise SimulationError("tenant names must be unique")
        self._tenants: Tuple[str, ...] = tuple(tenants)
        self._roster = frozenset(self._tenants)
        self._mode = mode
        self._tenant_of = tenant_of if tenant_of is not None else tenant_of_query

    @property
    def tenants(self) -> Tuple[str, ...]:
        """Tenant names, in residual-assignment order."""
        return self._tenants

    @property
    def mode(self) -> str:
        """``'proportional'`` or ``'even'``."""
        return self._mode

    def describe(self) -> str:
        """Short display form."""
        return f"{self._mode} over {len(self._tenants)} tenants"

    # -- per-epoch working data ----------------------------------------

    def _owner(self, query_name: str) -> str:
        tenant = self._tenant_of(query_name)
        if tenant is None or tenant not in self._roster:
            raise SimulationError(
                f"query {query_name!r} does not belong to any known tenant "
                f"({', '.join(self._tenants)})"
            )
        return tenant

    def _active(
        self, tenants: Optional[Sequence[str]]
    ) -> Tuple[str, ...]:
        """Resolve an active-tenant restriction (``None`` = full roster)."""
        if tenants is None:
            return self._tenants
        active = tuple(tenants)
        if not active:
            raise SimulationError("cannot attribute to zero active tenants")
        unknown = [t for t in active if t not in self._roster]
        if unknown:
            raise SimulationError(
                f"unknown active tenants {unknown!r}; roster has "
                f"{len(self._tenants)} names"
            )
        return active

    def _direct_weights(
        self,
        problem: SelectionProblem,
        subset: FrozenSet[str],
        tenants: Optional[Sequence[str]] = None,
    ) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, Dict[str, float]]]:
        """Per-tenant processing/egress weights and per-view user weights.

        Returns ``(processing, egress, users)`` where ``processing`` and
        ``egress`` map tenant -> frequency-weighted hours / GB, and
        ``users`` maps view name -> {tenant: frequency-weighted accesses
        to that view} (only tenants with at least one query answered by
        the view appear).  ``tenants`` restricts the split to an
        elastic fleet's active set; every workload query must belong
        to an active tenant.
        """
        active = self._active(tenants)
        inputs = problem.inputs
        # One pass computes hours, egress and per-view users together;
        # the hours agree with PlanningInputs.group_processing_hours
        # per tenant (pinned by a test) without re-scanning the
        # workload once per tenant.
        per_query = inputs.query_hours_with(subset)
        processing = {name: 0.0 for name in active}
        egress = {name: 0.0 for name in active}
        users: Dict[str, Dict[str, float]] = {}
        for query in inputs.workload:
            tenant = self._owner(query.name)
            if tenant not in processing:
                raise SimulationError(
                    f"query {query.name!r} belongs to tenant {tenant!r}, "
                    f"which is not active this epoch"
                )
            processing[tenant] += per_query[query.name] * query.frequency
            egress[tenant] += (
                inputs.result_sizes_gb[query.name] * query.frequency
            )
            source = inputs.best_source(query.name, subset)
            if source is not None:
                users.setdefault(source, {}).setdefault(tenant, 0.0)
                users[source][tenant] += query.frequency
        return processing, egress, users

    def _view_weights(
        self,
        per_view_amounts: Mapping[str, float],
        users: Mapping[str, Mapping[str, float]],
        infrastructure: Mapping[str, float],
        tenants: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """Per-tenant weights for charges that accrue per view.

        ``per_view_amounts`` weights each view's contribution (hours,
        gigabytes); each view's amount is divided among its users by
        the attribution mode, falling back to the infrastructure rule
        for views nobody currently uses (a policy may carry a view
        through an epoch in which no query reads it).
        """
        active = self._active(tenants)
        weights = {name: 0.0 for name in active}
        infra_total = sum(infrastructure.values())
        for view_name, amount in per_view_amounts.items():
            if amount <= 0.0:
                continue
            view_users = users.get(view_name)
            if view_users:
                if self._mode == "even":
                    share = amount / len(view_users)
                    for tenant in view_users:
                        weights[tenant] += share
                else:
                    use_total = sum(view_users.values())
                    for tenant, use in view_users.items():
                        weights[tenant] += amount * (use / use_total)
            elif infra_total > 0.0:
                for tenant, infra in infrastructure.items():
                    weights[tenant] += amount * (infra / infra_total)
            else:
                share = amount / len(active)
                for tenant in active:
                    weights[tenant] += share
        return weights

    def _infrastructure_weights(
        self,
        processing: Mapping[str, float],
        tenants: Optional[Sequence[str]] = None,
    ) -> Mapping[str, float]:
        """The rule for charges with no per-view user set."""
        if self._mode == "even":
            return {name: 1.0 for name in self._active(tenants)}
        return processing

    # -- the splits -----------------------------------------------------

    def _component_shares(
        self,
        problem: SelectionProblem,
        subset: FrozenSet[str],
        built: FrozenSet[str],
        breakdown: CostBreakdown,
        teardown_cost: Money,
        migration_cost: Money = ZERO,
        cancelled_cost: Money = ZERO,
        tenants: Optional[Sequence[str]] = None,
    ) -> Tuple[Dict[str, Dict[str, Money]], Dict[str, float]]:
        """Split every component of one epoch's breakdown.

        Returns ``(shares, hours)``: ``shares`` maps component name
        (``processing``, ``transfer``, ``maintenance``, ``storage``,
        ``build``, ``teardown``, ``migration``, ``cancelled``) to per-tenant shares
        summing exactly to the fleet amount; ``hours`` is each
        tenant's own frequency-weighted processing hours (the
        processing weights, reused so the hours reported on a
        :class:`~repro.simulate.ledger.TenantEpochRecord` can never
        drift from the weights its processing cost was split by).
        """
        active = self._active(tenants)
        inputs = problem.inputs
        plan = inputs.plan_for(subset)
        processing, egress, users = self._direct_weights(
            problem, subset, active
        )
        infrastructure = self._infrastructure_weights(processing, active)
        ordered = sorted(subset)
        cycles = inputs.deployment.maintenance_cycles

        maintenance_amounts = {
            name: inputs.view_stats[name].maintenance_hours_per_cycle * cycles
            for name in ordered
        }
        build_amounts = {
            name: hours
            for name, hours in zip(ordered, plan.materialization_hours)
            if name in built and hours > 0.0
        }
        size_amounts = {
            name: inputs.view_stats[name].size_gb for name in ordered
        }

        base_storage = storage_cost(
            inputs.deployment.provider.storage, plan.base_timeline
        )
        view_storage = breakdown.storage - base_storage

        storage_shares = allocate_exactly(
            base_storage, infrastructure, active
        )
        view_storage_shares = allocate_exactly(
            view_storage,
            self._view_weights(size_amounts, users, infrastructure, active),
            active,
        )
        shares = {
            "processing": allocate_exactly(
                breakdown.computing.processing_cost, processing, active
            ),
            "transfer": allocate_exactly(breakdown.transfer, egress, active),
            "maintenance": allocate_exactly(
                breakdown.computing.maintenance_cost,
                self._view_weights(
                    maintenance_amounts, users, infrastructure, active
                ),
                active,
            ),
            "storage": {
                name: storage_shares[name] + view_storage_shares[name]
                for name in active
            },
            "build": allocate_exactly(
                breakdown.computing.materialization_cost,
                self._view_weights(
                    build_amounts, users, infrastructure, active
                ),
                active,
            ),
            "teardown": allocate_exactly(
                teardown_cost, infrastructure, active
            ),
            "migration": allocate_exactly(
                migration_cost, infrastructure, active
            ),
            "cancelled": allocate_exactly(
                cancelled_cost, infrastructure, active
            ),
        }
        return shares, processing

    def attribute(
        self,
        problem: SelectionProblem,
        record: EpochRecord,
        breakdown: CostBreakdown,
        tenants: Optional[Sequence[str]] = None,
    ) -> Dict[str, TenantEpochRecord]:
        """One epoch's fleet record split into per-tenant records.

        ``breakdown`` must be the epoch breakdown the record was
        accounted from (materialization narrowed to the views built
        this epoch) — the simulator passes it to its observer.
        Records carrying segments (asynchronous epochs billed on
        mid-epoch holdings) take the segment-wise path instead, which
        re-prices each segment's holdings through the problem's
        evaluation cache and ignores ``breakdown``.

        ``tenants`` restricts the split to an elastic fleet's active
        set for the epoch.  The record's churn charges are direct, not
        shared: each arrival's onboarding lands 100% on the arriving
        tenant's record, and each departure yields a settlement-only
        record (all shares zero, ``offboarding_cost`` set) for a
        tenant no longer in the active set.
        """
        records = self._split_epoch(problem, record, breakdown, tenants)
        return self._apply_churn(record, records)

    def _split_epoch(
        self,
        problem: SelectionProblem,
        record: EpochRecord,
        breakdown: CostBreakdown,
        tenants: Optional[Sequence[str]] = None,
    ) -> Dict[str, TenantEpochRecord]:
        """The shared-charge split, before churn charges land."""
        if record.segments:
            return self._attribute_segments(problem, record, tenants)
        active = self._active(tenants)
        subset = frozenset(record.subset)
        built = frozenset(record.views_built)
        shares, hours = self._component_shares(
            problem, subset, built, breakdown, record.teardown_cost,
            record.migration_cost, record.cancelled_cost, active,
        )
        return {
            name: TenantEpochRecord(
                epoch=record.epoch,
                tenant=name,
                processing_cost=shares["processing"][name],
                transfer_cost=shares["transfer"][name],
                maintenance_cost=shares["maintenance"][name],
                storage_cost=shares["storage"][name],
                build_cost=shares["build"][name],
                teardown_cost=shares["teardown"][name],
                processing_hours=hours[name],
                migration_cost=shares["migration"][name],
                cancelled_cost=shares["cancelled"][name],
            )
            for name in active
        }

    def _apply_churn(
        self,
        record: EpochRecord,
        records: Dict[str, TenantEpochRecord],
    ) -> Dict[str, TenantEpochRecord]:
        """Land the epoch's direct churn charges on tenant records."""
        for tenant, amount in record.arrivals:
            if tenant not in records:
                raise SimulationError(
                    f"epoch {record.epoch}: arrival charge for "
                    f"{tenant!r}, which is not in the active split"
                )
            records[tenant] = replace(
                records[tenant], onboarding_cost=amount
            )
        for tenant, amount in record.departures:
            if tenant in records:
                raise SimulationError(
                    f"epoch {record.epoch}: departure settlement for "
                    f"{tenant!r}, which is still in the active split"
                )
            records[tenant] = TenantEpochRecord(
                epoch=record.epoch,
                tenant=tenant,
                processing_cost=ZERO,
                transfer_cost=ZERO,
                maintenance_cost=ZERO,
                storage_cost=ZERO,
                build_cost=ZERO,
                teardown_cost=ZERO,
                processing_hours=0.0,
                offboarding_cost=amount,
            )
        return records

    def _attribute_segments(
        self,
        problem: SelectionProblem,
        record: EpochRecord,
        active_tenants: Optional[Sequence[str]] = None,
    ) -> Dict[str, TenantEpochRecord]:
        """Attribute one asynchronous epoch, segment by segment.

        Each segment's full-period components are scaled by its period
        fraction and split by the tenants using the views live in
        *that* segment; per-tenant shares accumulate across segments.
        Because every per-segment split is exact
        (:func:`allocate_exactly`) and ``Money`` products distribute
        exactly at this precision, the accumulated shares sum to the
        record's prorated fleet charges to the last digit.

        Epoch-level one-offs — builds landing this epoch, teardown
        egress, migration transfer, cancelled-build sunk compute — are
        not prorated: builds are split by the landed views' users as
        of the epoch's end holdings, the rest by the infrastructure
        rule over time-weighted processing hours.
        """
        inputs = problem.inputs
        tenants = self._active(active_tenants)
        operating_components = (
            "processing", "transfer", "maintenance", "storage",
        )
        totals: Dict[str, Dict[str, Money]] = {
            component: {name: ZERO for name in tenants}
            for component in operating_components
        }
        hours = {name: 0.0 for name in tenants}
        cycles = inputs.deployment.maintenance_cycles
        base_storage_full = storage_cost(
            inputs.deployment.provider.storage, inputs.base_timeline
        )
        end_users: Dict[str, Mapping[str, float]] = {}
        for segment in record.segments:
            subset = frozenset(segment.subset)
            bd = problem.evaluate(subset).breakdown
            processing, egress, users = self._direct_weights(
                problem, subset, tenants
            )
            infrastructure = self._infrastructure_weights(
                processing, tenants
            )
            end_users = users
            fraction = segment.fraction

            def scaled(amount: Money) -> Money:
                return amount if fraction == 1.0 else amount * fraction

            ordered = sorted(subset)
            maintenance_amounts = {
                name: inputs.view_stats[name].maintenance_hours_per_cycle
                * cycles
                for name in ordered
            }
            size_amounts = {
                name: inputs.view_stats[name].size_gb for name in ordered
            }
            base_shares = allocate_exactly(
                scaled(base_storage_full), infrastructure, tenants
            )
            view_storage_shares = allocate_exactly(
                scaled(bd.storage - base_storage_full),
                self._view_weights(
                    size_amounts, users, infrastructure, tenants
                ),
                tenants,
            )
            segment_shares = {
                "processing": allocate_exactly(
                    scaled(bd.computing.processing_cost), processing, tenants
                ),
                "transfer": allocate_exactly(
                    scaled(bd.transfer), egress, tenants
                ),
                "maintenance": allocate_exactly(
                    scaled(bd.computing.maintenance_cost),
                    self._view_weights(
                        maintenance_amounts, users, infrastructure, tenants
                    ),
                    tenants,
                ),
                "storage": {
                    name: base_shares[name] + view_storage_shares[name]
                    for name in tenants
                },
            }
            for component in operating_components:
                for name in tenants:
                    totals[component][name] = (
                        totals[component][name] + segment_shares[component][name]
                    )
            for name in tenants:
                hours[name] += processing[name] * fraction
        # Epoch-level one-offs, split once over the whole epoch; the
        # infrastructure rule runs on time-weighted processing hours.
        epoch_infrastructure = self._infrastructure_weights(hours, tenants)
        build_amounts = {
            name: inputs.view_stats[name].materialization_hours
            for name in record.views_built
        }
        build_shares = allocate_exactly(
            record.build_cost,
            self._view_weights(
                build_amounts, end_users, epoch_infrastructure, tenants
            ),
            tenants,
        )
        teardown_shares = allocate_exactly(
            record.teardown_cost, epoch_infrastructure, tenants
        )
        migration_shares = allocate_exactly(
            record.migration_cost, epoch_infrastructure, tenants
        )
        cancelled_shares = allocate_exactly(
            record.cancelled_cost, epoch_infrastructure, tenants
        )
        return {
            name: TenantEpochRecord(
                epoch=record.epoch,
                tenant=name,
                processing_cost=totals["processing"][name],
                transfer_cost=totals["transfer"][name],
                maintenance_cost=totals["maintenance"][name],
                storage_cost=totals["storage"][name],
                build_cost=build_shares[name],
                teardown_cost=teardown_shares[name],
                processing_hours=hours[name],
                migration_cost=migration_shares[name],
                cancelled_cost=cancelled_shares[name],
            )
            for name in tenants
        }

    def outcome_shares(
        self,
        problem: SelectionProblem,
        outcome: SelectionOutcome,
        tenants: Optional[Sequence[str]] = None,
    ) -> Dict[str, Money]:
        """Per-tenant shares of a selection outcome's full bill.

        The selection-time view of attribution: every view in the
        subset is charged as if built this period (exactly what
        ``outcome.breakdown`` prices), so the shares sum to
        ``outcome.total_cost``.  This is the quantity fairness-aware
        selection (:class:`~repro.optimizer.fairness.FairShareScenario`)
        constrains.
        """
        active = self._active(tenants)
        shares, _ = self._component_shares(
            problem,
            outcome.subset,
            outcome.subset,
            outcome.breakdown,
            ZERO,
            tenants=active,
        )
        totals: Dict[str, Money] = {}
        for name in active:
            totals[name] = (
                shares["processing"][name]
                + shares["transfer"][name]
                + shares["maintenance"][name]
                + shares["storage"][name]
                + shares["build"][name]
            )
        return totals

    def outcome_hours(
        self,
        problem: SelectionProblem,
        outcome: SelectionOutcome,
        tenants: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """Each tenant's own processing hours under an outcome's subset.

        The latency-side analogue of :meth:`outcome_shares` — the
        quantity per-tenant latency-ceiling SLOs constrain.  Hours are
        directly caused (every query has one owner), so no splitting
        rule is involved.
        """
        processing, _, _ = self._direct_weights(
            problem, outcome.subset, tenants
        )
        return processing

    def present_tenants(
        self, problem: SelectionProblem
    ) -> Tuple[str, ...]:
        """The roster tenants with at least one query in the problem's
        workload, in attributor order — an elastic fleet's active set
        as seen from a single epoch's problem."""
        present = {
            self._owner(query.name) for query in problem.inputs.workload
        }
        return tuple(name for name in self._tenants if name in present)

    # -- sharded execution ---------------------------------------------

    @staticmethod
    def _plan_entry(
        field: str,
        amount: Money,
        weights: Mapping[str, float],
        order: Sequence[str],
    ) -> AllocationEntry:
        """Normalize one split into an :class:`AllocationEntry`.

        Mirrors :func:`allocate_exactly`'s weight handling exactly:
        clipping, total, and even fallback are applied here so workers
        evaluate the identical ``amount * (weight / total)`` products.
        """
        clipped = tuple(
            max(0.0, weights.get(name, 0.0)) for name in order
        )
        total = sum(clipped)
        if total <= 0.0:
            clipped = tuple(1.0 for _ in order)
            total = float(len(order))
        return AllocationEntry(
            field=field, amount=amount, weights=clipped, total=total
        )

    def component_plan(
        self,
        problem: SelectionProblem,
        record: EpochRecord,
        breakdown: CostBreakdown,
        tenants: Optional[Sequence[str]] = None,
    ) -> Tuple[Tuple[AllocationEntry, ...], Dict[str, float]]:
        """One epoch's splits, flattened for sharded execution.

        Returns ``(entries, hours)``: the exact
        :func:`allocate_exactly` calls :meth:`attribute` would make,
        as :class:`AllocationEntry` records in a fixed order (storage
        contributes two entries — base then view share — both landing
        on ``storage_cost``), plus each active tenant's processing
        hours.  :class:`~repro.simulate.sharding.ShardedAttribution`
        evaluates the entries' per-tenant products across worker
        shards and reassembles the sequential residual, reproducing
        :meth:`attribute`'s records byte for byte.
        """
        active = self._active(tenants)
        inputs = problem.inputs
        entries: List[AllocationEntry] = []
        if record.segments:
            hours = {name: 0.0 for name in active}
            cycles = inputs.deployment.maintenance_cycles
            base_storage_full = storage_cost(
                inputs.deployment.provider.storage, inputs.base_timeline
            )
            end_users: Mapping[str, Mapping[str, float]] = {}
            for segment in record.segments:
                subset = frozenset(segment.subset)
                bd = problem.evaluate(subset).breakdown
                processing, egress, users = self._direct_weights(
                    problem, subset, active
                )
                infrastructure = self._infrastructure_weights(
                    processing, active
                )
                end_users = users
                fraction = segment.fraction

                def scaled(amount: Money) -> Money:
                    return amount if fraction == 1.0 else amount * fraction

                ordered = sorted(subset)
                maintenance_amounts = {
                    name: inputs.view_stats[name].maintenance_hours_per_cycle
                    * cycles
                    for name in ordered
                }
                size_amounts = {
                    name: inputs.view_stats[name].size_gb for name in ordered
                }
                entries += [
                    self._plan_entry(
                        "processing_cost",
                        scaled(bd.computing.processing_cost),
                        processing, active,
                    ),
                    self._plan_entry(
                        "transfer_cost", scaled(bd.transfer), egress, active
                    ),
                    self._plan_entry(
                        "maintenance_cost",
                        scaled(bd.computing.maintenance_cost),
                        self._view_weights(
                            maintenance_amounts, users, infrastructure,
                            active,
                        ),
                        active,
                    ),
                    self._plan_entry(
                        "storage_cost",
                        scaled(base_storage_full),
                        infrastructure, active,
                    ),
                    self._plan_entry(
                        "storage_cost",
                        scaled(bd.storage - base_storage_full),
                        self._view_weights(
                            size_amounts, users, infrastructure, active
                        ),
                        active,
                    ),
                ]
                for name in active:
                    hours[name] += processing[name] * fraction
            epoch_infrastructure = self._infrastructure_weights(
                hours, active
            )
            build_amounts = {
                name: inputs.view_stats[name].materialization_hours
                for name in record.views_built
            }
            entries += [
                self._plan_entry(
                    "build_cost",
                    record.build_cost,
                    self._view_weights(
                        build_amounts, end_users, epoch_infrastructure,
                        active,
                    ),
                    active,
                ),
                self._plan_entry(
                    "teardown_cost", record.teardown_cost,
                    epoch_infrastructure, active,
                ),
                self._plan_entry(
                    "migration_cost", record.migration_cost,
                    epoch_infrastructure, active,
                ),
                self._plan_entry(
                    "cancelled_cost", record.cancelled_cost,
                    epoch_infrastructure, active,
                ),
            ]
            return tuple(entries), hours

        subset = frozenset(record.subset)
        built = frozenset(record.views_built)
        plan = inputs.plan_for(subset)
        processing, egress, users = self._direct_weights(
            problem, subset, active
        )
        infrastructure = self._infrastructure_weights(processing, active)
        ordered = sorted(subset)
        cycles = inputs.deployment.maintenance_cycles
        maintenance_amounts = {
            name: inputs.view_stats[name].maintenance_hours_per_cycle * cycles
            for name in ordered
        }
        build_amounts = {
            name: hours
            for name, hours in zip(ordered, plan.materialization_hours)
            if name in built and hours > 0.0
        }
        size_amounts = {
            name: inputs.view_stats[name].size_gb for name in ordered
        }
        base_storage = storage_cost(
            inputs.deployment.provider.storage, plan.base_timeline
        )
        view_storage = breakdown.storage - base_storage
        entries += [
            self._plan_entry(
                "processing_cost",
                breakdown.computing.processing_cost,
                processing, active,
            ),
            self._plan_entry(
                "transfer_cost", breakdown.transfer, egress, active
            ),
            self._plan_entry(
                "maintenance_cost",
                breakdown.computing.maintenance_cost,
                self._view_weights(
                    maintenance_amounts, users, infrastructure, active
                ),
                active,
            ),
            self._plan_entry(
                "storage_cost", base_storage, infrastructure, active
            ),
            self._plan_entry(
                "storage_cost",
                view_storage,
                self._view_weights(
                    size_amounts, users, infrastructure, active
                ),
                active,
            ),
            self._plan_entry(
                "build_cost",
                breakdown.computing.materialization_cost,
                self._view_weights(
                    build_amounts, users, infrastructure, active
                ),
                active,
            ),
            self._plan_entry(
                "teardown_cost", record.teardown_cost,
                infrastructure, active,
            ),
            self._plan_entry(
                "migration_cost", record.migration_cost,
                infrastructure, active,
            ),
            self._plan_entry(
                "cancelled_cost", record.cancelled_cost,
                infrastructure, active,
            ),
        ]
        return tuple(entries), processing
