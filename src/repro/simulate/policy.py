"""Re-selection policies: when does the warehouse revisit its views?

The paper selects views once.  Over a lifecycle, that single selection
decays as the workload drifts and prices move; the policies here are
three answers to "when do we re-run the optimizer":

* ``never`` — select at epoch 0, keep the set forever.  The paper's
  static regime extended in time; the control arm.
* ``periodic`` — re-select every ``period`` epochs, changed world or
  not.  Simple, predictable, pays churn on a schedule.
* ``regret`` — re-select only when keeping the current set would cost
  measurably more than the current optimum (relative regret above a
  threshold).  Computing the regret requires optimizing every epoch,
  which is exactly what the shared subset-evaluation cache makes
  cheap: on an unchanged epoch the whole optimizer run is cache hits.

Policies choose *what to materialize*; the simulator charges the
build/teardown consequences of their decisions.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, FrozenSet, Optional, Union

from ..errors import SimulationError
from ..optimizer.problem import SelectionProblem
from ..optimizer.registry import OptimizerSpec, resolve
from ..optimizer.scenarios import Scenario, Tradeoff
from ..optimizer.selector import select_views

if TYPE_CHECKING:  # pragma: no cover — annotations only, no cycle at runtime
    from .events import ProviderMigration
    from .problems import EpochContext

#: Builds the epoch's scenario from the epoch's problem.  Used when the
#: objective depends on the epoch's world — e.g. fairness constraints
#: over attributed tenant costs, which need the problem to price shares.
ScenarioFactory = Callable[[SelectionProblem], Scenario]

__all__ = [
    "PolicyDecision",
    "ReselectionPolicy",
    "NeverReselect",
    "PeriodicReselect",
    "RegretTriggered",
    "POLICY_NAMES",
    "ScenarioFactory",
    "make_policy",
]

#: Registry keys accepted by :func:`make_policy` (and the CLI).
POLICY_NAMES = ("never", "periodic", "regret")


def _resolve_optimizer(
    optimizer: Optional[Union[str, OptimizerSpec]],
    algorithm: Optional[str],
) -> OptimizerSpec:
    """One optimizer spec from the new and the deprecated kwarg.

    ``optimizer`` is the redesigned surface (a spec object, or a
    registry name for convenience).  ``algorithm`` is the legacy
    scattered string kwarg: still honored, with a
    :class:`DeprecationWarning`, so existing callers produce
    byte-identical results while they migrate.
    """
    if optimizer is not None and algorithm is not None:
        raise SimulationError(
            "pass either optimizer= or the deprecated algorithm=, not both"
        )
    if algorithm is not None:
        warnings.warn(
            "algorithm= is deprecated; pass optimizer="
            f"{resolve(algorithm).__class__.__name__}() (or the registry "
            "name) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return resolve(algorithm)
    if optimizer is None:
        return resolve("greedy")
    return resolve(optimizer)


def _relative_regret(held_key, best_key) -> float:
    """Relative regret between two scenario keys, lexicographically.

    Compares component by component and measures the relative gap at
    the first component where the keys differ.  A scalar-keyed
    scenario reduces to the familiar ``(held - best) / |best|``; a
    lexicographic key (the soft fairness scenario puts overshoot
    before the cost objective) still registers cost drift when the
    leading components tie — exactly the case where looking only at
    ``key[0]`` would report zero regret forever.
    """
    for held_obj, best_obj in zip(held_key, best_key):
        if held_obj == best_obj:
            continue
        if best_obj == 0:
            return float("inf")
        return (held_obj - best_obj) / abs(best_obj)
    return 0.0


@dataclass(frozen=True)
class PolicyDecision:
    """One epoch's answer: the subset to hold, and why."""

    subset: FrozenSet[str]
    #: Whether the optimizer was re-run (vs. keeping the previous set).
    reoptimized: bool
    #: Relative regret measured *before* the decision (regret policy
    #: only; 0.0 where not computed).
    regret: float = 0.0
    #: A provider switch decided alongside the subset (arbitrage
    #: policies only).  The simulator applies it *before* accounting
    #: the epoch — ``subset`` must already be the set to hold on the
    #: migration's target book — and bills the switch (egress,
    #: ingress, full re-materialization).
    migration: Optional["ProviderMigration"] = None
    #: Machine-readable trigger reason, recorded into the provenance
    #: log: ``initial`` (first-epoch optimize), ``hold``, ``periodic``
    #: (schedule fired), ``regret`` (threshold crossed and hysteresis
    #: satisfied), ``regret-hold`` (over threshold but streak still
    #: building), ``infeasible`` (constraint violated — hysteresis
    #: bypassed), ``arbitrage`` (provider switch fired).
    trigger: str = ""
    #: The hysteresis streak at decision time (consecutive epochs the
    #: trigger condition has held; 0 for streak-free policies).
    streak: int = 0


class ReselectionPolicy:
    """Base policy: owns the scenario and optimizer used to (re)select.

    The default scenario is the pure cost minimizer — ``Tradeoff`` with
    ``alpha=0`` — because a lifecycle ledger's natural objective is the
    cumulative bill; it is always feasible, so simulations cannot die
    on a drifted constraint.  Any scenario works.  A
    ``scenario_factory`` replaces the fixed scenario with one built
    per epoch from the epoch's problem (the fairness-aware selection
    mode: attributed tenant shares depend on the epoch's pricing
    world); ``scenario`` and ``scenario_factory`` are mutually
    exclusive.

    ``optimizer`` is an :class:`~repro.optimizer.registry.OptimizerSpec`
    (or a registry name) carrying the selection algorithm and all its
    knobs; the scattered ``algorithm=`` string kwarg still works but
    warns with :class:`DeprecationWarning`.  Policies hand the held
    subset to the optimizer as a *warm start*, which the anytime search
    specs turn into near-free re-selection on unchanged epochs.
    """

    name: str = "abstract"

    def __init__(
        self,
        scenario: Optional[Scenario] = None,
        algorithm: Optional[str] = None,
        scenario_factory: Optional[ScenarioFactory] = None,
        optimizer: Optional[Union[str, OptimizerSpec]] = None,
    ) -> None:
        if scenario is not None and scenario_factory is not None:
            raise SimulationError(
                "pass either a scenario or a scenario_factory, not both"
            )
        self._scenario = scenario if scenario is not None else Tradeoff(alpha=0.0)
        self._factory = scenario_factory
        self._optimizer = _resolve_optimizer(optimizer, algorithm)

    @property
    def scenario(self) -> Scenario:
        """The fixed objective (ignored when a factory is set)."""
        return self._scenario

    @property
    def optimizer(self) -> OptimizerSpec:
        """The selection optimizer spec."""
        return self._optimizer

    @property
    def algorithm(self) -> str:
        """The selection algorithm's registry name (legacy accessor)."""
        return self._optimizer.name

    def _scenario_for(self, problem: SelectionProblem) -> Scenario:
        """The scenario this epoch optimizes (factory-built if dynamic)."""
        if self._factory is not None:
            return self._factory(problem)
        return self._scenario

    def _optimum(
        self,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]] = None,
    ) -> FrozenSet[str]:
        return select_views(
            problem,
            self._scenario_for(problem),
            self._optimizer,
            warm_start=current,
        ).outcome.subset

    def optimum(
        self,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]] = None,
    ) -> FrozenSet[str]:
        """This policy's optimal subset for ``problem``.

        Public for wrapper policies (the arbitrage wrapper re-selects
        under a migration target's book with the *inner* policy's
        scenario and optimizer).  ``current`` — the held subset, if
        any — warm-starts anytime optimizers.
        """
        return self._optimum(problem, current)

    def decide(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]],
    ) -> PolicyDecision:
        """The subset to hold through ``epoch_index``.

        ``current`` is the set held at the end of the previous epoch
        (``None`` on the first epoch, which every policy answers by
        optimizing).
        """
        raise NotImplementedError

    def decide_in_context(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]],
        context: "EpochContext",
    ) -> PolicyDecision:
        """:meth:`decide`, with the epoch's context on the table.

        The simulator always calls this entry point.  ``context``
        carries the epoch's post-event state and a counterfactual
        pricer (see :class:`~repro.simulate.problems.EpochContext`);
        the base implementation ignores it and delegates to
        :meth:`decide`, so ordinary policies stay context-free.
        Context-aware wrappers (:class:`~repro.simulate.arbitrage.
        ArbitrageAware`) override this to price other providers' books
        and attach a migration to the decision.
        """
        return self.decide(epoch_index, problem, current)

    def describe(self) -> str:
        """Display name with parameters."""
        return self.name


class NeverReselect(ReselectionPolicy):
    """Select once at epoch 0, never look again."""

    name = "never"

    def decide(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]],
    ) -> PolicyDecision:
        """Optimize once on the first epoch, then hold forever."""
        if current is None:
            return PolicyDecision(
                self._optimum(problem), reoptimized=True, trigger="initial"
            )
        return PolicyDecision(current, reoptimized=False, trigger="hold")


class PeriodicReselect(ReselectionPolicy):
    """Re-select every ``period`` epochs."""

    name = "periodic"

    def __init__(
        self,
        period: int = 4,
        scenario: Optional[Scenario] = None,
        algorithm: Optional[str] = None,
        scenario_factory: Optional[ScenarioFactory] = None,
        optimizer: Optional[Union[str, OptimizerSpec]] = None,
    ) -> None:
        super().__init__(scenario, algorithm, scenario_factory, optimizer)
        if period < 1:
            raise SimulationError(
                f"re-selection period must be >= 1 epoch, got {period}"
            )
        self._period = period

    @property
    def period(self) -> int:
        """Epochs between re-selections."""
        return self._period

    def decide(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]],
    ) -> PolicyDecision:
        """Re-optimize on schedule epochs, hold in between."""
        if current is None or epoch_index % self._period == 0:
            return PolicyDecision(
                self._optimum(problem, current),
                reoptimized=True,
                trigger="initial" if current is None else "periodic",
            )
        return PolicyDecision(current, reoptimized=False, trigger="hold")

    def describe(self) -> str:
        """``periodic(every k)``."""
        return f"periodic(every {self._period})"


class RegretTriggered(ReselectionPolicy):
    """Re-select when the current set's relative regret crosses a bar.

    Regret compares the held subset's scenario key against the current
    optimum's at the first component where they differ:
    ``(held - best) / |best|`` (so a scalar objective behaves exactly
    as expected, and a lexicographic key — soft fairness — registers
    drift in the later components when the leading ones tie).  Below
    ``threshold`` the held set is kept (no churn); above it, the
    optimizer's answer is adopted.

    ``hysteresis`` makes the trigger sticky: the regret must stay
    above the threshold for that many *consecutive* epochs before the
    policy churns.  Under deterministic drift one epoch of regret is
    a fact; under stochastic drift (seasonal waves, spot-price walks)
    one epoch of regret is often noise that reverts before a rebuild
    could pay for itself — hysteresis is the knob that separates the
    two.  An infeasible holding bypasses hysteresis entirely: a
    violated constraint is never noise.
    """

    name = "regret"

    def __init__(
        self,
        threshold: float = 0.05,
        scenario: Optional[Scenario] = None,
        algorithm: Optional[str] = None,
        scenario_factory: Optional[ScenarioFactory] = None,
        hysteresis: int = 1,
        optimizer: Optional[Union[str, OptimizerSpec]] = None,
    ) -> None:
        super().__init__(scenario, algorithm, scenario_factory, optimizer)
        if threshold < 0:
            raise SimulationError(
                f"regret threshold cannot be negative, got {threshold}"
            )
        if hysteresis < 1:
            raise SimulationError(
                f"hysteresis must be >= 1 epoch, got {hysteresis}"
            )
        self._threshold = threshold
        self._hysteresis = hysteresis
        # Consecutive epochs the current run has spent above threshold.
        # Reset whenever a run starts (current is None) so one policy
        # instance can serve several runs back to back.
        self._streak = 0

    @property
    def threshold(self) -> float:
        """Relative regret above which re-selection triggers."""
        return self._threshold

    @property
    def hysteresis(self) -> int:
        """Consecutive over-threshold epochs required before churning."""
        return self._hysteresis

    def decide(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]],
    ) -> PolicyDecision:
        """Measure the held set's regret; adopt the optimum once it has
        crossed the threshold for ``hysteresis`` consecutive epochs (or
        the holding turned infeasible)."""
        # One scenario instance for both the optimum and the regret
        # check, so a factory-built scenario's share memo is shared.
        scenario = self._scenario_for(problem)
        best = select_views(
            problem, scenario, self._optimizer, warm_start=current
        ).outcome.subset
        if current is None:
            self._streak = 0
            return PolicyDecision(best, reoptimized=True, trigger="initial")
        held = problem.evaluate(current)
        if not scenario.feasible(held):
            # Under a constrained scenario an infeasible holding can
            # look *cheap* on the objective; regret must not excuse a
            # violated constraint.
            self._streak = 0
            return PolicyDecision(
                best,
                reoptimized=True,
                regret=float("inf"),
                trigger="infeasible",
            )
        regret = _relative_regret(
            scenario.key(held), scenario.key(problem.evaluate(best))
        )
        if regret > self._threshold:
            self._streak += 1
            if self._streak >= self._hysteresis:
                streak = self._streak
                self._streak = 0
                return PolicyDecision(
                    best,
                    reoptimized=True,
                    regret=regret,
                    trigger="regret",
                    streak=streak,
                )
            return PolicyDecision(
                current,
                reoptimized=False,
                regret=regret,
                trigger="regret-hold",
                streak=self._streak,
            )
        self._streak = 0
        return PolicyDecision(current, reoptimized=False, regret=regret, trigger="hold")

    def describe(self) -> str:
        """``regret(>r)``, with ``hold n`` once hysteresis is sticky."""
        if self._hysteresis > 1:
            return (
                f"regret(>{self._threshold:g}, hold {self._hysteresis})"
            )
        return f"regret(>{self._threshold:g})"


def make_policy(
    name: str,
    scenario: Optional[Scenario] = None,
    algorithm: Optional[str] = None,
    period: int = 4,
    threshold: float = 0.05,
    scenario_factory: Optional[ScenarioFactory] = None,
    hysteresis: int = 1,
    optimizer: Optional[Union[str, OptimizerSpec]] = None,
) -> ReselectionPolicy:
    """Build a policy from its registry name (CLI/benchmark entry).

    ``optimizer`` takes a spec object or registry name; ``algorithm``
    is the deprecated string spelling (still honored, with a
    :class:`DeprecationWarning` raised by the policy constructor).
    """
    if name == "never":
        return NeverReselect(scenario, algorithm, scenario_factory, optimizer)
    if name == "periodic":
        return PeriodicReselect(
            period, scenario, algorithm, scenario_factory, optimizer
        )
    if name == "regret":
        return RegretTriggered(
            threshold, scenario, algorithm, scenario_factory, hysteresis, optimizer
        )
    raise SimulationError(
        f"unknown policy {name!r}; choose from {POLICY_NAMES}"
    )
