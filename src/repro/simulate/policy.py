"""Re-selection policies: when does the warehouse revisit its views?

The paper selects views once.  Over a lifecycle, that single selection
decays as the workload drifts and prices move; the policies here are
three answers to "when do we re-run the optimizer":

* ``never`` — select at epoch 0, keep the set forever.  The paper's
  static regime extended in time; the control arm.
* ``periodic`` — re-select every ``period`` epochs, changed world or
  not.  Simple, predictable, pays churn on a schedule.
* ``regret`` — re-select only when keeping the current set would cost
  measurably more than the current optimum (relative regret above a
  threshold).  Computing the regret requires optimizing every epoch,
  which is exactly what the shared subset-evaluation cache makes
  cheap: on an unchanged epoch the whole optimizer run is cache hits.

Policies choose *what to materialize*; the simulator charges the
build/teardown consequences of their decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..errors import SimulationError
from ..optimizer.problem import SelectionProblem
from ..optimizer.scenarios import Scenario, Tradeoff
from ..optimizer.selector import select_views

__all__ = [
    "PolicyDecision",
    "ReselectionPolicy",
    "NeverReselect",
    "PeriodicReselect",
    "RegretTriggered",
    "POLICY_NAMES",
    "make_policy",
]

#: Registry keys accepted by :func:`make_policy` (and the CLI).
POLICY_NAMES = ("never", "periodic", "regret")


@dataclass(frozen=True)
class PolicyDecision:
    """One epoch's answer: the subset to hold, and why."""

    subset: FrozenSet[str]
    #: Whether the optimizer was re-run (vs. keeping the previous set).
    reoptimized: bool
    #: Relative regret measured *before* the decision (regret policy
    #: only; 0.0 where not computed).
    regret: float = 0.0


class ReselectionPolicy:
    """Base policy: owns the scenario and algorithm used to (re)select.

    The default scenario is the pure cost minimizer — ``Tradeoff`` with
    ``alpha=0`` — because a lifecycle ledger's natural objective is the
    cumulative bill; it is always feasible, so simulations cannot die
    on a drifted constraint.  Any scenario works.
    """

    name: str = "abstract"

    def __init__(
        self,
        scenario: Optional[Scenario] = None,
        algorithm: str = "greedy",
    ) -> None:
        self._scenario = scenario if scenario is not None else Tradeoff(alpha=0.0)
        self._algorithm = algorithm

    @property
    def scenario(self) -> Scenario:
        """The objective each (re)selection optimizes."""
        return self._scenario

    @property
    def algorithm(self) -> str:
        """The selection algorithm (knapsack / greedy / exhaustive)."""
        return self._algorithm

    def _optimum(self, problem: SelectionProblem) -> FrozenSet[str]:
        return select_views(
            problem, self._scenario, self._algorithm
        ).outcome.subset

    def decide(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]],
    ) -> PolicyDecision:
        """The subset to hold through ``epoch_index``.

        ``current`` is the set held at the end of the previous epoch
        (``None`` on the first epoch, which every policy answers by
        optimizing).
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Display name with parameters."""
        return self.name


class NeverReselect(ReselectionPolicy):
    """Select once at epoch 0, never look again."""

    name = "never"

    def decide(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]],
    ) -> PolicyDecision:
        if current is None:
            return PolicyDecision(self._optimum(problem), reoptimized=True)
        return PolicyDecision(current, reoptimized=False)


class PeriodicReselect(ReselectionPolicy):
    """Re-select every ``period`` epochs."""

    name = "periodic"

    def __init__(
        self,
        period: int = 4,
        scenario: Optional[Scenario] = None,
        algorithm: str = "greedy",
    ) -> None:
        super().__init__(scenario, algorithm)
        if period < 1:
            raise SimulationError(
                f"re-selection period must be >= 1 epoch, got {period}"
            )
        self._period = period

    @property
    def period(self) -> int:
        """Epochs between re-selections."""
        return self._period

    def decide(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]],
    ) -> PolicyDecision:
        if current is None or epoch_index % self._period == 0:
            return PolicyDecision(self._optimum(problem), reoptimized=True)
        return PolicyDecision(current, reoptimized=False)

    def describe(self) -> str:
        return f"periodic(every {self._period})"


class RegretTriggered(ReselectionPolicy):
    """Re-select when the current set's relative regret crosses a bar.

    Regret compares the scenario's primary objective for the held
    subset against the current optimum's: ``(held - best) / |best|``.
    Below ``threshold`` the held set is kept (no churn); above it, the
    optimizer's answer is adopted.
    """

    name = "regret"

    def __init__(
        self,
        threshold: float = 0.05,
        scenario: Optional[Scenario] = None,
        algorithm: str = "greedy",
    ) -> None:
        super().__init__(scenario, algorithm)
        if threshold < 0:
            raise SimulationError(
                f"regret threshold cannot be negative, got {threshold}"
            )
        self._threshold = threshold

    @property
    def threshold(self) -> float:
        """Relative regret above which re-selection triggers."""
        return self._threshold

    def decide(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]],
    ) -> PolicyDecision:
        best = self._optimum(problem)
        if current is None:
            return PolicyDecision(best, reoptimized=True)
        held = problem.evaluate(current)
        if not self._scenario.feasible(held):
            # Under a constrained scenario an infeasible holding can
            # look *cheap* on the objective; regret must not excuse a
            # violated constraint.
            return PolicyDecision(best, reoptimized=True, regret=float("inf"))
        held_obj = self._scenario.key(held)[0]
        best_obj = self._scenario.key(problem.evaluate(best))[0]
        if best_obj == 0:
            regret = 0.0 if held_obj == 0 else float("inf")
        else:
            regret = (held_obj - best_obj) / abs(best_obj)
        if regret > self._threshold:
            return PolicyDecision(best, reoptimized=True, regret=regret)
        return PolicyDecision(current, reoptimized=False, regret=regret)

    def describe(self) -> str:
        return f"regret(>{self._threshold:g})"


def make_policy(
    name: str,
    scenario: Optional[Scenario] = None,
    algorithm: str = "greedy",
    period: int = 4,
    threshold: float = 0.05,
) -> ReselectionPolicy:
    """Build a policy from its registry name (CLI/benchmark entry)."""
    if name == "never":
        return NeverReselect(scenario, algorithm)
    if name == "periodic":
        return PeriodicReselect(period, scenario, algorithm)
    if name == "regret":
        return RegretTriggered(threshold, scenario, algorithm)
    raise SimulationError(
        f"unknown policy {name!r}; choose from {POLICY_NAMES}"
    )
