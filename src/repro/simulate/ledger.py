"""The simulation ledger: per-epoch charges and lifetime totals.

Each epoch produces one :class:`EpochRecord` splitting the bill the
way an operator would read it:

* ``operating_cost`` — steady-state charges: query processing at the
  epoch's frequencies, view maintenance, storage (base + views),
  result egress;
* ``build_cost`` — materialization compute for views (re)built this
  epoch (carried views are *not* re-charged — that is the difference
  between a lifecycle ledger and the paper's single-shot bill);
* ``teardown_cost`` — egress of dropped views (the view is exported /
  archived out of the warehouse on decommission);
* ``migration_cost`` — both transfer legs of a provider switch
  (dataset + held views out of the source, into the target), charged
  only on epochs where a migration fired (``migrated_to`` names the
  target book);
* ``cancelled_cost`` — sunk compute of builds abandoned before
  landing (asynchronous runs only; a build cancelled while still
  queued sinks nothing).

Asynchronous runs (:mod:`repro.simulate.builds`) additionally split an
epoch into :class:`EpochSegment`\\ s at build-completion times: each
segment names the views that were *live* over a fraction of the
period, and the epoch's ``operating_cost`` is the sum of every
segment's full-period charge scaled by its fraction — partial-period
proration.  An epoch whose holdings equalled the decision's subset
throughout (every synchronous epoch, and every async epoch without
in-flight builds) records no segments.

A :class:`SimulationLedger` accumulates the records for one policy and
answers the comparison questions (total cost, hours, churn,
migrations).

Multi-tenant runs add a second layer: each epoch's fleet record is
split by a :class:`~repro.simulate.attribution.SharedCostAttributor`
into one :class:`TenantEpochRecord` per tenant, accumulated in
per-tenant :class:`TenantLedger`\\ s, and a :class:`FleetLedger` rolls
the fleet history and the tenant histories up together — with
:meth:`FleetLedger.verify_attribution` enforcing that the tenant
ledgers sum *exactly* to the fleet ledger, epoch by epoch.

Elastic fleets (tenants arriving and departing mid-lifecycle via
:class:`~repro.simulate.events.TenantArrival` /
:class:`~repro.simulate.events.TenantDeparture`) add two more billed
channels to each epoch record: ``onboarding`` (inbound load of an
arriving tenant's initial result products) and ``offboarding`` (export
of a departing tenant's final footprint), each carried as
``(tenant, amount)`` pairs so attribution can charge them 100% to the
tenant that caused them.  Tenant ledgers become *ragged* — a tenant
has records only for the epochs it was present — and population-scale
runs fold records shard-by-shard into :class:`TenantTotals`
accumulators collected in a :class:`FleetSummary`, never materializing
the full per-tenant record matrix in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..errors import SimulationError
from ..money import Money, ZERO

__all__ = [
    "EpochRecord",
    "EpochSegment",
    "FleetLedger",
    "FleetSummary",
    "SimulationLedger",
    "TenantEpochRecord",
    "TenantLedger",
    "TenantTotals",
]


@dataclass(frozen=True)
class EpochSegment:
    """A sub-interval of one epoch over which the live views were fixed.

    The asynchronous simulator cuts an epoch at every build-completion
    instant; each resulting segment bills its ``subset``'s full-period
    operating charge scaled by ``fraction``.  Fractions across one
    epoch's segments tile exactly to 1 (the last is computed as the
    residual), so partial-period billing conserves money by
    construction.
    """

    start_month: float
    months: float
    fraction: float
    subset: Tuple[str, ...]

    def describe(self) -> str:
        """``[views]@frac`` — the segment's holdings and period share."""
        views = ",".join(self.subset) if self.subset else "-"
        return f"[{views}]@{self.fraction:.4g}"


@dataclass(frozen=True)
class EpochRecord:
    """One epoch's full accounting."""

    epoch: int
    subset: Tuple[str, ...]
    operating_cost: Money
    build_cost: Money
    teardown_cost: Money
    processing_hours: float
    views_built: Tuple[str, ...]
    views_dropped: Tuple[str, ...]
    reoptimized: bool
    regret: float
    events: Tuple[str, ...]
    #: Transfer legs of a provider switch fired this epoch (zero on
    #: ordinary epochs); the re-materialization side of a migration
    #: lands in ``build_cost`` at the target's rates.
    migration_cost: Money = ZERO
    #: Name of the book migrated to this epoch, if any.
    migrated_to: Optional[str] = None
    #: Builds abandoned before landing this epoch (async runs only).
    views_cancelled: Tuple[str, ...] = ()
    #: Sunk compute of the cancelled builds (zero when they never ran).
    cancelled_cost: Money = ZERO
    #: Wall-clock months between submission and landing, summed over
    #: the views that went live this epoch (0.0 when builds are
    #: synchronous or instant).
    build_latency_months: float = 0.0
    #: Partial-period billing intervals (empty when the decision's
    #: subset was live for the whole epoch — every synchronous epoch).
    segments: Tuple[EpochSegment, ...] = ()
    #: Subset-pricing cache hits this epoch contributed (local + shared
    #: layers of the evaluation cache) — the per-epoch delta of the
    #: builder's :class:`~repro.optimizer.problem.EvaluationStats`,
    #: which was previously reachable only through the observer's
    #: problem object.
    cache_hits: int = 0
    #: Subsets actually priced through the cost model this epoch (the
    #: evaluate() traffic the caches did *not* absorb).
    subsets_priced: int = 0
    #: Tenants that arrived this epoch, as ``(tenant, onboarding)``
    #: pairs — the inbound-transfer charge of loading each arriving
    #: tenant's initial result products (empty for static fleets).
    arrivals: Tuple[Tuple[str, Money], ...] = ()
    #: Tenants that departed this epoch, as ``(tenant, settlement)``
    #: pairs — the outbound export of each leaver's final footprint,
    #: priced at the book being left (empty for static fleets).
    departures: Tuple[Tuple[str, Money], ...] = ()

    @property
    def onboarding_cost(self) -> Money:
        """Total inbound-load charges of this epoch's arrivals."""
        return sum((amount for _, amount in self.arrivals), ZERO)

    @property
    def offboarding_cost(self) -> Money:
        """Total settlement exports of this epoch's departures."""
        return sum((amount for _, amount in self.departures), ZERO)

    @property
    def evaluate_calls(self) -> int:
        """Subset evaluations this epoch asked for (hits + pricings)."""
        return self.cache_hits + self.subsets_priced

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this epoch's evaluations answered from cache
        (0.0 when the epoch evaluated nothing)."""
        calls = self.evaluate_calls
        return self.cache_hits / calls if calls else 0.0

    @cached_property
    def total_cost(self) -> Money:
        """Everything this epoch cost (operating + build + teardown +
        migration + cancelled + onboarding + offboarding).

        Cached: the record is frozen, and the explain layer's delta
        decomposition reads each epoch's total twice (as ``total``,
        then as the next epoch's ``previous_total``) on the hot path.
        """
        return (
            self.operating_cost
            + self.build_cost
            + self.teardown_cost
            + self.migration_cost
            + self.cancelled_cost
            + self.onboarding_cost
            + self.offboarding_cost
        )

    @property
    def churn(self) -> int:
        """Views touched by the epoch's decision (built + dropped)."""
        return len(self.views_built) + len(self.views_dropped)

    def describe(self) -> str:
        """One ledger line."""
        views = ",".join(self.subset) if self.subset else "-"
        marks = []
        if self.views_built:
            marks.append("+" + ",".join(self.views_built))
        if self.views_dropped:
            marks.append("-" + ",".join(self.views_dropped))
        if self.views_cancelled:
            marks.append("x" + ",".join(self.views_cancelled))
        if self.migrated_to is not None:
            marks.append(f">>{self.migrated_to}")
        if self.arrivals:
            marks.append("++" + ",".join(t for t, _ in self.arrivals))
        if self.departures:
            marks.append("--" + ",".join(t for t, _ in self.departures))
        change = " ".join(marks) if marks else ""
        events = "; ".join(self.events) if self.events else ""
        return (
            f"e{self.epoch:>3}  C={self.total_cost}  "
            f"T={self.processing_hours:.3f}h  [{views}] {change}"
            + (f"  <{events}>" if events else "")
        )


class SimulationLedger:
    """The per-epoch cost history of one policy's run."""

    def __init__(self, policy_name: str) -> None:
        self._policy = policy_name
        self._records: List[EpochRecord] = []

    def append(self, record: EpochRecord) -> None:
        """Record the next epoch (indexes must arrive in order)."""
        if self._records and record.epoch <= self._records[-1].epoch:
            raise SimulationError(
                f"epoch {record.epoch} recorded after "
                f"epoch {self._records[-1].epoch}"
            )
        self._records.append(record)

    # -- access ---------------------------------------------------------

    @property
    def policy_name(self) -> str:
        """The policy that produced this history."""
        return self._policy

    @property
    def records(self) -> Tuple[EpochRecord, ...]:
        """Every epoch's record, in order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EpochRecord]:
        return iter(self._records)

    # -- totals ---------------------------------------------------------

    @property
    def total_cost(self) -> Money:
        """The lifetime bill."""
        return sum((r.total_cost for r in self._records), ZERO)

    @property
    def total_operating_cost(self) -> Money:
        """Lifetime steady-state charges."""
        return sum((r.operating_cost for r in self._records), ZERO)

    @property
    def total_build_cost(self) -> Money:
        """Lifetime materialization charges."""
        return sum((r.build_cost for r in self._records), ZERO)

    @property
    def total_teardown_cost(self) -> Money:
        """Lifetime decommission charges."""
        return sum((r.teardown_cost for r in self._records), ZERO)

    @property
    def total_migration_cost(self) -> Money:
        """Lifetime provider-switch transfer charges."""
        return sum((r.migration_cost for r in self._records), ZERO)

    @property
    def migration_count(self) -> int:
        """How many epochs fired a provider migration."""
        return sum(1 for r in self._records if r.migrated_to is not None)

    @property
    def total_cancelled_cost(self) -> Money:
        """Lifetime sunk compute of abandoned builds (async runs)."""
        return sum((r.cancelled_cost for r in self._records), ZERO)

    @property
    def cancel_count(self) -> int:
        """Builds abandoned before landing, over the lifetime."""
        return sum(len(r.views_cancelled) for r in self._records)

    @property
    def total_onboarding_cost(self) -> Money:
        """Lifetime inbound-load charges of tenant arrivals."""
        return sum((r.onboarding_cost for r in self._records), ZERO)

    @property
    def total_offboarding_cost(self) -> Money:
        """Lifetime settlement exports of tenant departures."""
        return sum((r.offboarding_cost for r in self._records), ZERO)

    @property
    def arrival_count(self) -> int:
        """Tenants that arrived mid-lifecycle."""
        return sum(len(r.arrivals) for r in self._records)

    @property
    def departure_count(self) -> int:
        """Tenants that departed mid-lifecycle."""
        return sum(len(r.departures) for r in self._records)

    @property
    def total_build_latency_months(self) -> float:
        """Lifetime submit-to-landing wall-clock months, summed over
        every view that went live (0.0 for synchronous runs)."""
        return sum(r.build_latency_months for r in self._records)

    @property
    def total_hours(self) -> float:
        """Lifetime workload processing hours (response-time metric)."""
        return sum(r.processing_hours for r in self._records)

    @property
    def total_cache_hits(self) -> int:
        """Lifetime subset-pricing cache hits across all epochs."""
        return sum(r.cache_hits for r in self._records)

    @property
    def total_subsets_priced(self) -> int:
        """Lifetime subsets priced through the cost model."""
        return sum(r.subsets_priced for r in self._records)

    @property
    def cache_hit_rate(self) -> float:
        """Lifetime fraction of evaluations answered from cache."""
        calls = self.total_cache_hits + self.total_subsets_priced
        return self.total_cache_hits / calls if calls else 0.0

    @property
    def rebuild_count(self) -> int:
        """Views (re)built over the lifetime, initial builds included."""
        return sum(len(r.views_built) for r in self._records)

    @property
    def teardown_count(self) -> int:
        """Views decommissioned over the lifetime."""
        return sum(len(r.views_dropped) for r in self._records)

    @property
    def reoptimization_count(self) -> int:
        """How many epochs re-ran the optimizer."""
        return sum(1 for r in self._records if r.reoptimized)

    @property
    def churn(self) -> int:
        """Total views built + dropped."""
        return self.rebuild_count + self.teardown_count

    # -- display --------------------------------------------------------

    def summary(self) -> str:
        """One comparison line: the acceptance metrics.

        Async-only columns (build latency, cancelled builds) appear
        only when nonzero, so synchronous and zero-latency ledgers
        render byte-identically to the pre-async format.
        """
        migrations = (
            f"  migrations={self.migration_count}"
            if self.migration_count
            else ""
        )
        latency = (
            f"  build-latency={self.total_build_latency_months:.3f}mo"
            if self.total_build_latency_months
            else ""
        )
        cancels = (
            f"  cancels={self.cancel_count}" if self.cancel_count else ""
        )
        churn = (
            f"  arrivals={self.arrival_count}"
            f"  departures={self.departure_count}"
            if self.arrival_count or self.departure_count
            else ""
        )
        return (
            f"{self._policy:<18} total={self.total_cost}  "
            f"hours={self.total_hours:.2f}  "
            f"rebuilds={self.rebuild_count}  "
            f"teardowns={self.teardown_count}  "
            f"reoptimizations={self.reoptimization_count}"
            + migrations
            + latency
            + cancels
            + churn
        )

    def render(self) -> str:
        """The full per-epoch ledger as text."""
        lines = [f"policy: {self._policy}"]
        lines += [r.describe() for r in self._records]
        lines.append(self.summary())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Multi-tenant attribution layer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantEpochRecord:
    """One tenant's attributed share of one epoch's fleet charges.

    The component fields mirror how the fleet bill decomposes —
    processing compute, result transfer, view maintenance, storage
    (base share + view share), builds and teardowns — so a tenant's
    invoice explains *why* it owes what it owes.  Across the fleet's
    tenants, each component sums exactly to the fleet amount (see
    :mod:`repro.simulate.attribution`).
    """

    epoch: int
    tenant: str
    processing_cost: Money
    transfer_cost: Money
    maintenance_cost: Money
    storage_cost: Money
    build_cost: Money
    teardown_cost: Money
    #: The tenant's own frequency-weighted processing hours this epoch.
    processing_hours: float
    #: The tenant's share of a provider switch fired this epoch (zero
    #: on ordinary epochs) — the answer to "which tenant pays for a
    #: migration?".
    migration_cost: Money = ZERO
    #: The tenant's share of sunk compute from builds abandoned this
    #: epoch (async runs only; split by the infrastructure rule).
    cancelled_cost: Money = ZERO
    #: Inbound-load charge of this tenant's own arrival (nonzero only
    #: on the epoch it joined an elastic fleet; 100% direct, no split).
    onboarding_cost: Money = ZERO
    #: Settlement export of this tenant's own departure (nonzero only
    #: on its settlement-only record; 100% direct, no split).
    offboarding_cost: Money = ZERO

    @property
    def operating_cost(self) -> Money:
        """Steady-state share: processing + transfer + maintenance + storage."""
        return (
            self.processing_cost
            + self.transfer_cost
            + self.maintenance_cost
            + self.storage_cost
        )

    @cached_property
    def total_cost(self) -> Money:
        """Everything attributed to the tenant this epoch.

        Cached for the same reason as
        :attr:`EpochRecord.total_cost` — the per-tenant delta fold
        reads consecutive totals pairwise.
        """
        return (
            self.operating_cost
            + self.build_cost
            + self.teardown_cost
            + self.migration_cost
            + self.cancelled_cost
            + self.onboarding_cost
            + self.offboarding_cost
        )

    def describe(self) -> str:
        """One invoice line."""
        migration = (
            f", move={self.migration_cost}" if self.migration_cost else ""
        )
        cancelled = (
            f", sunk={self.cancelled_cost}" if self.cancelled_cost else ""
        )
        onboard = (
            f", onboard={self.onboarding_cost}"
            if self.onboarding_cost
            else ""
        )
        offboard = (
            f", offboard={self.offboarding_cost}"
            if self.offboarding_cost
            else ""
        )
        return (
            f"e{self.epoch:>3}  C={self.total_cost}  "
            f"(proc={self.processing_cost}, maint={self.maintenance_cost}, "
            f"stor={self.storage_cost}, xfer={self.transfer_cost}, "
            f"build={self.build_cost}, drop={self.teardown_cost}"
            f"{migration}{cancelled}{onboard}{offboard})  "
            f"T={self.processing_hours:.3f}h"
        )


class TenantLedger:
    """One tenant's attributed cost history under one policy's run."""

    def __init__(self, tenant: str, policy_name: str) -> None:
        self._tenant = tenant
        self._policy = policy_name
        self._records: List[TenantEpochRecord] = []

    def append(self, record: TenantEpochRecord) -> None:
        """Record the next epoch's share (must belong to this tenant)."""
        if record.tenant != self._tenant:
            raise SimulationError(
                f"record for tenant {record.tenant!r} appended to "
                f"{self._tenant!r}'s ledger"
            )
        if self._records and record.epoch <= self._records[-1].epoch:
            raise SimulationError(
                f"epoch {record.epoch} recorded after "
                f"epoch {self._records[-1].epoch}"
            )
        self._records.append(record)

    # -- access ---------------------------------------------------------

    @property
    def tenant(self) -> str:
        """The tenant this ledger bills."""
        return self._tenant

    @property
    def policy_name(self) -> str:
        """The fleet policy that produced this history."""
        return self._policy

    @property
    def records(self) -> Tuple[TenantEpochRecord, ...]:
        """Every epoch's attributed record, in order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TenantEpochRecord]:
        return iter(self._records)

    # -- totals ---------------------------------------------------------

    @property
    def total_cost(self) -> Money:
        """The tenant's lifetime attributed bill."""
        return sum((r.total_cost for r in self._records), ZERO)

    @property
    def total_operating_cost(self) -> Money:
        """Lifetime attributed steady-state charges."""
        return sum((r.operating_cost for r in self._records), ZERO)

    @property
    def total_build_cost(self) -> Money:
        """Lifetime attributed materialization charges."""
        return sum((r.build_cost for r in self._records), ZERO)

    @property
    def total_teardown_cost(self) -> Money:
        """Lifetime attributed decommission charges."""
        return sum((r.teardown_cost for r in self._records), ZERO)

    @property
    def total_migration_cost(self) -> Money:
        """Lifetime attributed provider-switch charges."""
        return sum((r.migration_cost for r in self._records), ZERO)

    @property
    def total_cancelled_cost(self) -> Money:
        """Lifetime attributed sunk compute of abandoned builds."""
        return sum((r.cancelled_cost for r in self._records), ZERO)

    @property
    def total_onboarding_cost(self) -> Money:
        """The tenant's arrival load charge (zero unless it arrived
        mid-lifecycle)."""
        return sum((r.onboarding_cost for r in self._records), ZERO)

    @property
    def total_offboarding_cost(self) -> Money:
        """The tenant's settlement export (zero unless it departed)."""
        return sum((r.offboarding_cost for r in self._records), ZERO)

    @property
    def total_hours(self) -> float:
        """The tenant's lifetime processing hours."""
        return sum(r.processing_hours for r in self._records)

    # -- display --------------------------------------------------------

    def summary(self) -> str:
        """One comparison line for the tenant."""
        return (
            f"{self._tenant:<12} total={self.total_cost}  "
            f"operating={self.total_operating_cost}  "
            f"build={self.total_build_cost}  "
            f"hours={self.total_hours:.2f}"
        )

    def render(self) -> str:
        """The tenant's full per-epoch invoice as text."""
        lines = [f"tenant: {self._tenant}  (policy: {self._policy})"]
        lines += [r.describe() for r in self._records]
        lines.append(self.summary())
        return "\n".join(lines)


class FleetLedger:
    """A fleet run's full accounting: the fleet ledger + tenant ledgers.

    ``fleet`` is the ordinary :class:`SimulationLedger` of the shared
    warehouse; ``tenants`` maps tenant name to its attributed
    :class:`TenantLedger`.  The two views describe the same money:
    :meth:`verify_attribution` re-checks the books and raises if any
    epoch's tenant shares do not sum exactly to the fleet record.
    """

    def __init__(
        self, fleet: SimulationLedger, tenants: Mapping[str, TenantLedger]
    ) -> None:
        if not tenants:
            raise SimulationError("a fleet ledger needs at least one tenant")
        self._fleet = fleet
        self._tenants: Dict[str, TenantLedger] = dict(tenants)

    @property
    def fleet(self) -> SimulationLedger:
        """The shared warehouse's own per-epoch ledger."""
        return self._fleet

    @property
    def tenants(self) -> Mapping[str, TenantLedger]:
        """Per-tenant attributed ledgers, by tenant name."""
        return dict(self._tenants)

    @property
    def policy_name(self) -> str:
        """The policy that produced this history."""
        return self._fleet.policy_name

    @property
    def total_cost(self) -> Money:
        """The fleet's lifetime bill (equals the sum of tenant bills)."""
        return self._fleet.total_cost

    def tenant(self, name: str) -> TenantLedger:
        """One tenant's ledger, by name."""
        try:
            return self._tenants[name]
        except KeyError:
            raise SimulationError(
                f"no tenant named {name!r}; fleet has "
                f"{sorted(self._tenants)}"
            ) from None

    def verify_attribution(self) -> None:
        """Assert the books balance: tenant shares sum to fleet charges.

        Checked exactly (``Decimal`` equality), per epoch and per
        component (operating / build / teardown / migration /
        cancelled / onboarding / offboarding).  Tenant ledgers may be
        *ragged* — an elastic fleet's tenant has records only for the
        epochs it was present — so each epoch is checked over the
        tenant records that exist for it.  Raises
        :class:`~repro.errors.SimulationError` on the first mismatch.
        """
        fleet_epochs = {r.epoch for r in self._fleet.records}
        by_epoch: Dict[int, List[TenantEpochRecord]] = {}
        for ledger in self._tenants.values():
            for share in ledger.records:
                if share.epoch not in fleet_epochs:
                    raise SimulationError(
                        f"tenant {ledger.tenant!r} has a record for "
                        f"epoch {share.epoch}, which the fleet ledger "
                        f"never billed"
                    )
                by_epoch.setdefault(share.epoch, []).append(share)
        for record in self._fleet.records:
            shares = by_epoch.get(record.epoch, [])
            checks = (
                ("operating", record.operating_cost,
                 sum((s.operating_cost for s in shares), ZERO)),
                ("build", record.build_cost,
                 sum((s.build_cost for s in shares), ZERO)),
                ("teardown", record.teardown_cost,
                 sum((s.teardown_cost for s in shares), ZERO)),
                ("migration", record.migration_cost,
                 sum((s.migration_cost for s in shares), ZERO)),
                ("cancelled", record.cancelled_cost,
                 sum((s.cancelled_cost for s in shares), ZERO)),
                ("onboarding", record.onboarding_cost,
                 sum((s.onboarding_cost for s in shares), ZERO)),
                ("offboarding", record.offboarding_cost,
                 sum((s.offboarding_cost for s in shares), ZERO)),
            )
            for component, fleet_amount, tenant_sum in checks:
                if fleet_amount != tenant_sum:
                    raise SimulationError(
                        f"epoch {record.epoch}: tenant {component} shares "
                        f"sum to {tenant_sum}, fleet charged {fleet_amount}"
                    )

    def summary(self) -> str:
        """The fleet comparison line plus one line per tenant."""
        lines = [self._fleet.summary()]
        lines += [
            "  " + ledger.summary() for ledger in self._tenants.values()
        ]
        return "\n".join(lines)

    def render(self) -> str:
        """Fleet ledger followed by every tenant's invoice."""
        parts = [self._fleet.render()]
        parts += [ledger.render() for ledger in self._tenants.values()]
        return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Streaming aggregation for population-scale fleets
# ---------------------------------------------------------------------------


class TenantTotals:
    """One tenant's lifetime totals, folded record-by-record.

    The streaming counterpart of :class:`TenantLedger`: instead of
    keeping every :class:`TenantEpochRecord`, it accumulates each
    component total as records stream past — O(1) memory per tenant
    regardless of horizon, which is what lets a 10⁴-tenant run merge
    shard outputs without materializing the full per-tenant matrix.
    Folding the same records in the same order as a
    :class:`TenantLedger` would hold produces totals exactly equal to
    the ledger's (``Decimal`` addition in identical sequence).
    """

    __slots__ = (
        "tenant",
        "processing_cost",
        "transfer_cost",
        "maintenance_cost",
        "storage_cost",
        "build_cost",
        "teardown_cost",
        "migration_cost",
        "cancelled_cost",
        "onboarding_cost",
        "offboarding_cost",
        "processing_hours",
        "n_records",
        "first_epoch",
        "last_epoch",
    )

    def __init__(self, tenant: str) -> None:
        self.tenant = tenant
        self.processing_cost = ZERO
        self.transfer_cost = ZERO
        self.maintenance_cost = ZERO
        self.storage_cost = ZERO
        self.build_cost = ZERO
        self.teardown_cost = ZERO
        self.migration_cost = ZERO
        self.cancelled_cost = ZERO
        self.onboarding_cost = ZERO
        self.offboarding_cost = ZERO
        self.processing_hours = 0.0
        self.n_records = 0
        self.first_epoch: Optional[int] = None
        self.last_epoch: Optional[int] = None

    def fold(self, record: TenantEpochRecord) -> None:
        """Accumulate one epoch record (must belong to this tenant,
        and arrive in epoch order)."""
        if record.tenant != self.tenant:
            raise SimulationError(
                f"record for tenant {record.tenant!r} folded into "
                f"{self.tenant!r}'s totals"
            )
        if self.last_epoch is not None and record.epoch <= self.last_epoch:
            raise SimulationError(
                f"tenant {self.tenant!r}: epoch {record.epoch} folded "
                f"after epoch {self.last_epoch}"
            )
        self.processing_cost += record.processing_cost
        self.transfer_cost += record.transfer_cost
        self.maintenance_cost += record.maintenance_cost
        self.storage_cost += record.storage_cost
        self.build_cost += record.build_cost
        self.teardown_cost += record.teardown_cost
        self.migration_cost += record.migration_cost
        self.cancelled_cost += record.cancelled_cost
        self.onboarding_cost += record.onboarding_cost
        self.offboarding_cost += record.offboarding_cost
        self.processing_hours += record.processing_hours
        self.n_records += 1
        if self.first_epoch is None:
            self.first_epoch = record.epoch
        self.last_epoch = record.epoch

    @property
    def operating_cost(self) -> Money:
        """Lifetime steady-state share."""
        return (
            self.processing_cost
            + self.transfer_cost
            + self.maintenance_cost
            + self.storage_cost
        )

    @property
    def total_cost(self) -> Money:
        """The tenant's lifetime attributed bill."""
        return (
            self.operating_cost
            + self.build_cost
            + self.teardown_cost
            + self.migration_cost
            + self.cancelled_cost
            + self.onboarding_cost
            + self.offboarding_cost
        )

    #: CSV column names for :meth:`row`, in order.
    CSV_HEADER = (
        "tenant",
        "first_epoch",
        "last_epoch",
        "n_records",
        "total",
        "processing",
        "transfer",
        "maintenance",
        "storage",
        "build",
        "teardown",
        "migration",
        "cancelled",
        "onboarding",
        "offboarding",
        "hours",
    )

    def row(self) -> Tuple[str, ...]:
        """One CSV row of full-precision totals (exact ``Decimal``
        strings, so equal books render byte-identically)."""
        return (
            self.tenant,
            "" if self.first_epoch is None else str(self.first_epoch),
            "" if self.last_epoch is None else str(self.last_epoch),
            str(self.n_records),
            str(self.total_cost.amount),
            str(self.processing_cost.amount),
            str(self.transfer_cost.amount),
            str(self.maintenance_cost.amount),
            str(self.storage_cost.amount),
            str(self.build_cost.amount),
            str(self.teardown_cost.amount),
            str(self.migration_cost.amount),
            str(self.cancelled_cost.amount),
            str(self.onboarding_cost.amount),
            str(self.offboarding_cost.amount),
            f"{self.processing_hours:.10g}",
        )

    def summary(self) -> str:
        """One comparison line for the tenant."""
        span = (
            f"e{self.first_epoch}-e{self.last_epoch}"
            if self.first_epoch is not None
            else "-"
        )
        return (
            f"{self.tenant:<12} total={self.total_cost}  "
            f"operating={self.operating_cost}  "
            f"build={self.build_cost}  "
            f"hours={self.processing_hours:.2f}  [{span}]"
        )


class FleetSummary:
    """A population-scale fleet run's books: fleet ledger + streamed
    per-tenant totals.

    The streaming counterpart of :class:`FleetLedger` — produced by
    :meth:`~repro.simulate.tenants.MultiTenantSimulator.run_sharded`,
    which folds each shard's :class:`TenantEpochRecord` stream into
    :class:`TenantTotals` without ever holding the full per-tenant
    record matrix.  ``shards`` records how the attribution work was
    partitioned (results are byte-identical for any value).
    """

    def __init__(
        self,
        fleet: SimulationLedger,
        tenants: Mapping[str, TenantTotals],
        shards: int = 1,
    ) -> None:
        if not tenants:
            raise SimulationError("a fleet summary needs at least one tenant")
        self._fleet = fleet
        self._tenants: Dict[str, TenantTotals] = dict(tenants)
        self._shards = shards

    @property
    def fleet(self) -> SimulationLedger:
        """The shared warehouse's own per-epoch ledger."""
        return self._fleet

    @property
    def tenants(self) -> Mapping[str, TenantTotals]:
        """Per-tenant streamed totals, by tenant name (fleet order)."""
        return dict(self._tenants)

    @property
    def shards(self) -> int:
        """How many attribution shards produced these totals."""
        return self._shards

    @property
    def policy_name(self) -> str:
        """The policy that produced this history."""
        return self._fleet.policy_name

    @property
    def total_cost(self) -> Money:
        """The fleet's lifetime bill (equals the sum of tenant bills)."""
        return self._fleet.total_cost

    def tenant(self, name: str) -> TenantTotals:
        """One tenant's totals, by name."""
        try:
            return self._tenants[name]
        except KeyError:
            raise SimulationError(
                f"no tenant named {name!r}; fleet has "
                f"{len(self._tenants)} tenants"
            ) from None

    def verify_totals(self) -> None:
        """Assert the books balance: per-component tenant totals sum
        exactly to the fleet ledger's lifetime totals."""
        totals = list(self._tenants.values())
        checks = (
            ("operating", self._fleet.total_operating_cost,
             sum((t.operating_cost for t in totals), ZERO)),
            ("build", self._fleet.total_build_cost,
             sum((t.build_cost for t in totals), ZERO)),
            ("teardown", self._fleet.total_teardown_cost,
             sum((t.teardown_cost for t in totals), ZERO)),
            ("migration", self._fleet.total_migration_cost,
             sum((t.migration_cost for t in totals), ZERO)),
            ("cancelled", self._fleet.total_cancelled_cost,
             sum((t.cancelled_cost for t in totals), ZERO)),
            ("onboarding", self._fleet.total_onboarding_cost,
             sum((t.onboarding_cost for t in totals), ZERO)),
            ("offboarding", self._fleet.total_offboarding_cost,
             sum((t.offboarding_cost for t in totals), ZERO)),
        )
        for component, fleet_amount, tenant_sum in checks:
            if fleet_amount != tenant_sum:
                raise SimulationError(
                    f"lifetime {component}: tenant totals sum to "
                    f"{tenant_sum}, fleet charged {fleet_amount}"
                )

    def summary(self) -> str:
        """The fleet comparison line plus a tenant-population line."""
        return (
            self._fleet.summary()
            + f"\n  tenants={len(self._tenants)}  shards={self._shards}"
        )

    def render(self, max_tenants: int = 20) -> str:
        """Fleet ledger plus up to ``max_tenants`` tenant lines."""
        lines = [self._fleet.render(), ""]
        shown = 0
        for totals in self._tenants.values():
            if shown >= max_tenants:
                lines.append(
                    f"  ... and {len(self._tenants) - shown} more tenants"
                )
                break
            lines.append("  " + totals.summary())
            shown += 1
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The per-tenant totals as CSV text (header + one row per
        tenant, fleet order, full-precision amounts) — the artifact
        the determinism job ``cmp``\\ s across shard counts."""
        lines = [",".join(TenantTotals.CSV_HEADER)]
        lines += [",".join(t.row()) for t in self._tenants.values()]
        return "\n".join(lines) + "\n"
