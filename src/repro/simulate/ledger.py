"""The simulation ledger: per-epoch charges and lifetime totals.

Each epoch produces one :class:`EpochRecord` splitting the bill the
way an operator would read it:

* ``operating_cost`` — steady-state charges: query processing at the
  epoch's frequencies, view maintenance, storage (base + views),
  result egress;
* ``build_cost`` — materialization compute for views (re)built this
  epoch (carried views are *not* re-charged — that is the difference
  between a lifecycle ledger and the paper's single-shot bill);
* ``teardown_cost`` — egress of dropped views (the view is exported /
  archived out of the warehouse on decommission).

A :class:`SimulationLedger` accumulates the records for one policy and
answers the comparison questions (total cost, hours, churn).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import SimulationError
from ..money import Money, ZERO

__all__ = ["EpochRecord", "SimulationLedger"]


@dataclass(frozen=True)
class EpochRecord:
    """One epoch's full accounting."""

    epoch: int
    subset: Tuple[str, ...]
    operating_cost: Money
    build_cost: Money
    teardown_cost: Money
    processing_hours: float
    views_built: Tuple[str, ...]
    views_dropped: Tuple[str, ...]
    reoptimized: bool
    regret: float
    events: Tuple[str, ...]

    @property
    def total_cost(self) -> Money:
        """Everything this epoch cost: operating + build + teardown."""
        return self.operating_cost + self.build_cost + self.teardown_cost

    @property
    def churn(self) -> int:
        """Views touched by the epoch's decision (built + dropped)."""
        return len(self.views_built) + len(self.views_dropped)

    def describe(self) -> str:
        """One ledger line."""
        views = ",".join(self.subset) if self.subset else "-"
        marks = []
        if self.views_built:
            marks.append("+" + ",".join(self.views_built))
        if self.views_dropped:
            marks.append("-" + ",".join(self.views_dropped))
        change = " ".join(marks) if marks else ""
        events = "; ".join(self.events) if self.events else ""
        return (
            f"e{self.epoch:>3}  C={self.total_cost}  "
            f"T={self.processing_hours:.3f}h  [{views}] {change}"
            + (f"  <{events}>" if events else "")
        )


class SimulationLedger:
    """The per-epoch cost history of one policy's run."""

    def __init__(self, policy_name: str) -> None:
        self._policy = policy_name
        self._records: List[EpochRecord] = []

    def append(self, record: EpochRecord) -> None:
        """Record the next epoch (indexes must arrive in order)."""
        if self._records and record.epoch <= self._records[-1].epoch:
            raise SimulationError(
                f"epoch {record.epoch} recorded after "
                f"epoch {self._records[-1].epoch}"
            )
        self._records.append(record)

    # -- access ---------------------------------------------------------

    @property
    def policy_name(self) -> str:
        """The policy that produced this history."""
        return self._policy

    @property
    def records(self) -> Tuple[EpochRecord, ...]:
        """Every epoch's record, in order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EpochRecord]:
        return iter(self._records)

    # -- totals ---------------------------------------------------------

    @property
    def total_cost(self) -> Money:
        """The lifetime bill."""
        return sum((r.total_cost for r in self._records), ZERO)

    @property
    def total_operating_cost(self) -> Money:
        """Lifetime steady-state charges."""
        return sum((r.operating_cost for r in self._records), ZERO)

    @property
    def total_build_cost(self) -> Money:
        """Lifetime materialization charges."""
        return sum((r.build_cost for r in self._records), ZERO)

    @property
    def total_teardown_cost(self) -> Money:
        """Lifetime decommission charges."""
        return sum((r.teardown_cost for r in self._records), ZERO)

    @property
    def total_hours(self) -> float:
        """Lifetime workload processing hours (response-time metric)."""
        return sum(r.processing_hours for r in self._records)

    @property
    def rebuild_count(self) -> int:
        """Views (re)built over the lifetime, initial builds included."""
        return sum(len(r.views_built) for r in self._records)

    @property
    def teardown_count(self) -> int:
        """Views decommissioned over the lifetime."""
        return sum(len(r.views_dropped) for r in self._records)

    @property
    def reoptimization_count(self) -> int:
        """How many epochs re-ran the optimizer."""
        return sum(1 for r in self._records if r.reoptimized)

    @property
    def churn(self) -> int:
        """Total views built + dropped."""
        return self.rebuild_count + self.teardown_count

    # -- display --------------------------------------------------------

    def summary(self) -> str:
        """One comparison line: the acceptance metrics."""
        return (
            f"{self._policy:<18} total={self.total_cost}  "
            f"hours={self.total_hours:.2f}  "
            f"rebuilds={self.rebuild_count}  "
            f"teardowns={self.teardown_count}  "
            f"reoptimizations={self.reoptimization_count}"
        )

    def render(self) -> str:
        """The full per-epoch ledger as text."""
        lines = [f"policy: {self._policy}"]
        lines += [r.describe() for r in self._records]
        lines.append(self.summary())
        return "\n".join(lines)
