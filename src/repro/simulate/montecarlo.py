"""Monte Carlo policy evaluation: many sampled lifecycles, one verdict.

One stochastic trial answers "what did this policy cost in *that*
future"; a policy comparison needs the answer over the *distribution*
of futures.  :func:`run_monte_carlo` runs ``n_trials`` independent
lifecycle simulations — each trial samples its own drift timeline from
a per-trial child seed (:func:`~repro.simulate.stochastic.derive_seed`,
so trial *k* is the same future no matter how many trials run or in
what order) — and aggregates every policy's
:class:`~repro.simulate.ledger.SimulationLedger` /
:class:`~repro.simulate.ledger.FleetLedger` into per-metric
:class:`DistributionSummary`\\ s: mean, standard deviation and
quantiles of total cost, processing hours, churn, and regret against a
clairvoyant baseline that re-selects every epoch.

Trials are embarrassingly parallel and run through ``multiprocessing``
when ``jobs > 1``.  Because each trial is a pure function of
``(config, trial_index)``, the worker count can never change the
result: ``--jobs 1`` and ``--jobs 8`` produce byte-identical summary
CSVs — CI enforces exactly that.

Everything in a :class:`MonteCarloConfig` is a plain frozen dataclass
(policies are :class:`PolicySpec` value objects, generators are named
presets), so configs pickle cleanly into worker processes and a config
*is* the experiment's identity.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..explain import ExplainLog
from ..explain import activate as activate_explain
from ..explain import current as current_explain
from ..money import Money
from ..optimizer.registry import OptimizerSpec
from ..telemetry import Telemetry, activate, current as current_telemetry
from .arbitrage import ArbitrageAware
from .builds import BUILD_DISCIPLINES, BuildConfig
from .ledger import SimulationLedger
from .policy import POLICY_NAMES, ReselectionPolicy, make_policy
from .presets import (
    default_market,
    elastic_multi_tenant_simulator,
    stochastic_multi_tenant_simulator,
    stochastic_sales_simulator,
)
from .stochastic import FleetChurn, derive_seed, generator_preset

__all__ = [
    "CLAIRVOYANT",
    "DistributionSummary",
    "MonteCarloConfig",
    "MonteCarloResult",
    "PolicySpec",
    "TrialOutcome",
    "run_monte_carlo",
    "run_trial",
]

#: Row label of the clairvoyant baseline (re-select every epoch).
CLAIRVOYANT = "clairvoyant"


@dataclass(frozen=True)
class PolicySpec:
    """A picklable recipe for a re-selection policy.

    Worker processes cannot receive live policy objects (policies may
    close over scenario factories), so the harness ships the recipe
    and builds the policy inside each trial.

    ``arbitrage=True`` wraps the policy in
    :class:`~repro.simulate.arbitrage.ArbitrageAware` (with
    ``migration_horizon`` / ``migration_hold``), and makes every trial
    of the config quote the multi-provider market — so an arbitrage
    spec and its stay-put twin compare over identical worlds.

    ``optimizer`` is the redesigned selection surface: a frozen
    :class:`~repro.optimizer.registry.OptimizerSpec` carrying the
    algorithm *and* its knobs (budgets, seeds, beam widths), which
    pickles into workers like every other field.  When set it takes
    precedence over the legacy ``algorithm`` name string, which stays
    for compatibility.
    """

    name: str
    algorithm: str = "greedy"
    period: int = 4
    threshold: float = 0.05
    hysteresis: int = 1
    arbitrage: bool = False
    migration_horizon: int = 6
    migration_hold: int = 2
    optimizer: Optional[OptimizerSpec] = None

    def __post_init__(self) -> None:
        if self.name not in POLICY_NAMES:
            raise SimulationError(
                f"unknown policy {self.name!r}; choose from {POLICY_NAMES}"
            )
        if self.migration_horizon < 1:
            raise SimulationError(
                f"migration_horizon must be >= 1, got {self.migration_horizon}"
            )
        if self.migration_hold < 1:
            raise SimulationError(
                f"migration_hold must be >= 1, got {self.migration_hold}"
            )

    def build(self) -> ReselectionPolicy:
        """A fresh policy instance for one trial."""
        policy = make_policy(
            self.name,
            period=self.period,
            threshold=self.threshold,
            hysteresis=self.hysteresis,
            # The legacy name string routes through the same registry
            # as a spec object, so both spellings build identically.
            optimizer=(
                self.optimizer if self.optimizer is not None else self.algorithm
            ),
        )
        if self.arbitrage:
            return ArbitrageAware(
                policy,
                horizon=self.migration_horizon,
                hysteresis=self.migration_hold,
            )
        return policy

    def label(self) -> str:
        """The result-row label (the built policy's describe())."""
        return self.build().describe()


def _default_policies() -> Tuple[PolicySpec, ...]:
    return (
        PolicySpec("never"),
        PolicySpec("periodic"),
        PolicySpec("regret"),
    )


@dataclass(frozen=True)
class MonteCarloConfig:
    """One Monte Carlo experiment's full identity.

    ``seed`` fixes the starting world (dataset) shared by every trial;
    trial *k* samples its drift from ``derive_seed(seed, "trial:k")``.
    ``n_tenants = 0`` runs single-warehouse lifecycles; with tenants,
    every trial runs the multi-tenant simulator and per-tenant
    attributed totals join the aggregated metrics.
    """

    generator: str = "mixed"
    n_trials: int = 16
    n_epochs: int = 12
    n_rows: int = 20_000
    seed: int = 42
    dataset_gb: float = 10.0
    n_tenants: int = 0
    attribution: str = "proportional"
    #: Expected tenant arrivals per epoch (Poisson); ``0`` keeps the
    #: fleet fixed.  Requires ``n_tenants >= 1`` (founders anchor the
    #: warehouse).  Each trial resamples the fleet trajectory from its
    #: drift seed, so churn is part of the sampled future.
    tenant_churn: float = 0.0
    #: Expected churned-tenant stay in epochs (exponential).
    tenant_stay: float = 8.0
    policies: Tuple[PolicySpec, ...] = field(
        default_factory=_default_policies
    )
    charge_teardown_egress: bool = True
    #: Build-queue concurrency for the trials' simulators; 0 keeps the
    #: classic synchronous execution (a decided view is a live view).
    build_slots: int = 0
    #: Scheduling discipline when ``build_slots >= 1``.
    build_discipline: str = "fifo"

    def __post_init__(self) -> None:
        generator_preset(self.generator)  # fail fast on unknown presets
        if self.build_slots < 0:
            raise SimulationError(
                f"build_slots cannot be negative, got {self.build_slots}"
            )
        if self.build_discipline not in BUILD_DISCIPLINES:
            raise SimulationError(
                f"unknown build discipline {self.build_discipline!r}; "
                f"choose from {BUILD_DISCIPLINES}"
            )
        if self.n_trials < 1:
            raise SimulationError(
                f"a Monte Carlo run needs >= 1 trial, got {self.n_trials}"
            )
        if self.n_tenants < 0:
            raise SimulationError(
                f"n_tenants cannot be negative, got {self.n_tenants}"
            )
        if self.tenant_churn < 0:
            raise SimulationError(
                f"tenant_churn cannot be negative, got {self.tenant_churn}"
            )
        if self.tenant_stay <= 0:
            raise SimulationError(
                f"tenant_stay must be positive epochs, got {self.tenant_stay}"
            )
        if self.tenant_churn and not self.n_tenants:
            raise SimulationError(
                "tenant_churn needs a multi-tenant config (n_tenants >= 1): "
                "founding tenants anchor the warehouse the churned "
                "tenants join"
            )
        if not self.policies:
            raise SimulationError("compare at least one policy")
        labels = [spec.label() for spec in self.policies]
        if len(set(labels)) != len(labels):
            raise SimulationError(
                f"two policy specs describe identically: {labels}; give "
                "them distinct parameters"
            )
        if CLAIRVOYANT in labels:
            raise SimulationError(
                f"{CLAIRVOYANT!r} names the built-in baseline row"
            )

    @property
    def quotes_market(self) -> bool:
        """Whether trials quote the multi-provider market.

        True as soon as any policy spec is arbitrage-aware.  The
        market is quoted for *every* policy of the config (it is inert
        to non-arbitrage policies), so stay-put and arbitrage rows
        describe the same sampled worlds.
        """
        return any(spec.arbitrage for spec in self.policies)

    @property
    def builds(self) -> "BuildConfig | None":
        """The trials' build-queue configuration (``None`` = sync)."""
        if not self.build_slots:
            return None
        return BuildConfig(
            slots=self.build_slots, discipline=self.build_discipline
        )

    def labels(self) -> Tuple[str, ...]:
        """Result-row labels: the policies, then the baseline."""
        return tuple(s.label() for s in self.policies) + (CLAIRVOYANT,)

    def trial_seed(self, trial: int) -> int:
        """The drift seed trial ``trial`` samples its future from."""
        return derive_seed(self.seed, f"trial:{trial}")


@dataclass(frozen=True)
class TrialOutcome:
    """One policy's ledger totals in one sampled future."""

    trial: int
    policy: str
    total_cost: Money
    build_cost: Money
    teardown_cost: Money
    hours: float
    rebuilds: int
    teardowns: int
    reoptimizations: int
    #: Relative lifetime-cost gap to the clairvoyant baseline in the
    #: same future (0.0 for the baseline itself).
    regret: float
    #: Attributed per-tenant lifetime totals (multi-tenant runs only).
    tenant_costs: Tuple[Tuple[str, Money], ...] = ()
    #: Provider switches fired over the lifetime (arbitrage runs).
    migrations: int = 0
    #: Lifetime migration transfer charges.
    migration_cost: Money = Money(0)
    #: Lifetime sunk compute of cancelled builds (async runs).
    cancelled_cost: Money = Money(0)
    #: Lifetime submit-to-landing wall-clock months (async runs).
    build_latency_months: float = 0.0
    #: Tenant arrivals billed over the lifetime (elastic runs).
    arrivals: int = 0
    #: Tenant departures settled over the lifetime (elastic runs).
    departures: int = 0


def _outcome(
    trial: int,
    label: str,
    ledger: SimulationLedger,
    clairvoyant_cost: Money,
    tenant_costs: Tuple[Tuple[str, Money], ...] = (),
) -> TrialOutcome:
    if clairvoyant_cost == Money(0):
        regret = 0.0 if ledger.total_cost == Money(0) else float("inf")
    else:
        regret = ledger.total_cost.ratio_to(clairvoyant_cost) - 1.0
    return TrialOutcome(
        trial=trial,
        policy=label,
        total_cost=ledger.total_cost,
        build_cost=ledger.total_build_cost,
        teardown_cost=ledger.total_teardown_cost,
        hours=ledger.total_hours,
        rebuilds=ledger.rebuild_count,
        teardowns=ledger.teardown_count,
        reoptimizations=ledger.reoptimization_count,
        regret=regret,
        tenant_costs=tenant_costs,
        migrations=ledger.migration_count,
        migration_cost=ledger.total_migration_cost,
        cancelled_cost=ledger.total_cancelled_cost,
        build_latency_months=ledger.total_build_latency_months,
        arrivals=ledger.arrival_count,
        departures=ledger.departure_count,
    )


def run_trial(config: MonteCarloConfig, trial: int) -> Tuple[TrialOutcome, ...]:
    """One trial: one sampled future, every policy plus the baseline.

    Pure in ``(config, trial)`` — the property the ``--jobs``
    determinism guarantee rests on.  All policies (and the clairvoyant
    baseline) run over *one* simulator, so the trial's subset pricings
    are shared through the evaluation cache.
    """
    if not 0 <= trial < config.n_trials:
        raise SimulationError(
            f"trial index {trial} outside [0, {config.n_trials})"
        )
    drift_seed = config.trial_seed(trial)
    market = default_market() if config.quotes_market else None
    builds = config.builds
    if config.n_tenants:
        if config.tenant_churn:
            simulator = elastic_multi_tenant_simulator(
                n_tenants=config.n_tenants,
                generator=config.generator,
                churn=FleetChurn(
                    arrival_rate=config.tenant_churn,
                    mean_stay=config.tenant_stay,
                ),
                n_epochs=config.n_epochs,
                n_rows=config.n_rows,
                seed=config.seed,
                drift_seed=drift_seed,
                dataset_gb=config.dataset_gb,
                attribution=config.attribution,
                charge_teardown_egress=config.charge_teardown_egress,
                market=market,
                builds=builds,
            )
        else:
            simulator = stochastic_multi_tenant_simulator(
                n_tenants=config.n_tenants,
                generator=config.generator,
                n_epochs=config.n_epochs,
                n_rows=config.n_rows,
                seed=config.seed,
                drift_seed=drift_seed,
                dataset_gb=config.dataset_gb,
                attribution=config.attribution,
                charge_teardown_egress=config.charge_teardown_egress,
                market=market,
                builds=builds,
            )
        # Under churn the sampled tenants differ per trial, so
        # per-tenant metric columns cover only the founding tenants —
        # the names every trial shares.
        reported = simulator.fleet.tenant_names[: config.n_tenants]

        def run(policy):
            fleet_ledger = simulator.run(policy)
            tenant_costs = tuple(
                (name, fleet_ledger.tenant(name).total_cost)
                for name in reported
            )
            return fleet_ledger.fleet, tenant_costs
    else:
        simulator = stochastic_sales_simulator(
            generator=config.generator,
            n_epochs=config.n_epochs,
            n_rows=config.n_rows,
            seed=config.seed,
            drift_seed=drift_seed,
            dataset_gb=config.dataset_gb,
            charge_teardown_egress=config.charge_teardown_egress,
            market=market,
            builds=builds,
        )

        def run(policy):
            return simulator.run(policy), ()

    ledgers = [(spec.label(), *run(spec.build())) for spec in config.policies]
    clairvoyant, clairvoyant_tenants = run(
        make_policy("periodic", period=1)
    )
    outcomes = [
        _outcome(trial, label, ledger, clairvoyant.total_cost, tenants)
        for label, ledger, tenants in ledgers
    ]
    outcomes.append(
        _outcome(
            trial,
            CLAIRVOYANT,
            clairvoyant,
            clairvoyant.total_cost,
            clairvoyant_tenants,
        )
    )
    return tuple(outcomes)


def _trial_with_snapshot(
    config: MonteCarloConfig,
    trial: int,
    collect: bool,
    collect_explain: bool = False,
):
    """Run one trial, optionally under fresh telemetry/explain collectors.

    Returns ``(outcomes, snapshot, explain_snapshot)`` where
    ``snapshot`` is the trial's own registry snapshot and
    ``explain_snapshot`` the trial's explain-log snapshot (each
    ``None`` when its collection flag is false).  Every trial — serial
    or pooled — records into *fresh* collectors whose snapshots the
    parent merges in trial order, so the merged telemetry and the
    merged provenance are byte-identical for any ``jobs``: the serial
    path must not write straight into the parent collectors, or its
    fold order would differ from the pooled path's.  The flags travel
    as arguments rather than being read ambiently so spawn-start
    pools (whose workers reset the ambient objects to the no-op
    singletons) behave exactly like fork-start ones.
    """
    explain_snapshot = None
    if collect_explain:
        with activate_explain(ExplainLog()) as log:
            if not collect:
                outcomes = run_trial(config, trial)
                return outcomes, None, log.snapshot()
            with activate(Telemetry()) as telemetry:
                with telemetry.span("montecarlo.trial", trial=trial):
                    outcomes = run_trial(config, trial)
                telemetry.inc("montecarlo.trials")
                telemetry.inc("montecarlo.outcomes", len(outcomes))
                registry_snapshot = telemetry.registry.snapshot()
            explain_snapshot = log.snapshot()
        return outcomes, registry_snapshot, explain_snapshot
    if not collect:
        return run_trial(config, trial), None, None
    with activate(Telemetry()) as telemetry:
        with telemetry.span("montecarlo.trial", trial=trial):
            outcomes = run_trial(config, trial)
        telemetry.inc("montecarlo.trials")
        telemetry.inc("montecarlo.outcomes", len(outcomes))
        return outcomes, telemetry.registry.snapshot(), None


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sequence."""
    if not ordered:
        raise SimulationError("quantile of an empty sample")
    position = q * (len(ordered) - 1)
    below = math.floor(position)
    above = min(below + 1, len(ordered) - 1)
    weight = position - below
    return ordered[below] * (1.0 - weight) + ordered[above] * weight


@dataclass(frozen=True)
class DistributionSummary:
    """A sample's descriptive statistics (sample stdev, n-1)."""

    n: int
    mean: float
    stdev: float
    minimum: float
    p10: float
    median: float
    p90: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "DistributionSummary":
        """Summarize a non-empty sample."""
        if not values:
            raise SimulationError("cannot summarize an empty sample")
        ordered = sorted(values)
        n = len(ordered)
        mean = sum(ordered) / n
        if n > 1:
            stdev = math.sqrt(
                sum((v - mean) ** 2 for v in ordered) / (n - 1)
            )
        else:
            stdev = 0.0
        return cls(
            n=n,
            mean=mean,
            stdev=stdev,
            minimum=ordered[0],
            p10=_quantile(ordered, 0.10),
            median=_quantile(ordered, 0.50),
            p90=_quantile(ordered, 0.90),
            maximum=ordered[-1],
        )

    def describe(self) -> str:
        """``mean±stdev [p10 p50 p90]`` in compact form."""
        return (
            f"{self.mean:.4g}±{self.stdev:.3g} "
            f"[{self.p10:.4g} {self.median:.4g} {self.p90:.4g}]"
        )


#: Metric name -> extractor, in CSV column order.
_METRICS: Tuple[Tuple[str, Callable[[TrialOutcome], float]], ...] = (
    ("total_cost", lambda o: o.total_cost.to_float()),
    ("build_cost", lambda o: o.build_cost.to_float()),
    ("teardown_cost", lambda o: o.teardown_cost.to_float()),
    ("hours", lambda o: o.hours),
    ("rebuilds", lambda o: float(o.rebuilds)),
    ("teardowns", lambda o: float(o.teardowns)),
    ("reoptimizations", lambda o: float(o.reoptimizations)),
    ("regret", lambda o: o.regret),
    ("migrations", lambda o: float(o.migrations)),
    ("migration_cost", lambda o: o.migration_cost.to_float()),
    ("cancelled_cost", lambda o: o.cancelled_cost.to_float()),
    ("build_latency_months", lambda o: o.build_latency_months),
)

#: Elastic-fleet metrics, appended only when the config churns tenants
#: so churn-free configs keep their exact pre-elastic CSV columns.
_CHURN_METRICS: Tuple[Tuple[str, Callable[[TrialOutcome], float]], ...] = (
    ("arrivals", lambda o: float(o.arrivals)),
    ("departures", lambda o: float(o.departures)),
)


class MonteCarloResult:
    """Aggregated trial outcomes, queryable per policy and metric."""

    def __init__(
        self, config: MonteCarloConfig, outcomes: Sequence[TrialOutcome]
    ) -> None:
        expected = config.n_trials * len(config.labels())
        if len(outcomes) != expected:
            raise SimulationError(
                f"{len(outcomes)} outcomes for {config.n_trials} trials "
                f"x {len(config.labels())} policies (expected {expected})"
            )
        self._config = config
        self._outcomes = tuple(outcomes)
        self._by_policy: Dict[str, List[TrialOutcome]] = {
            label: [] for label in config.labels()
        }
        for outcome in self._outcomes:
            self._by_policy[outcome.policy].append(outcome)
        for label, rows in self._by_policy.items():
            rows.sort(key=lambda o: o.trial)

    # -- access ---------------------------------------------------------

    @property
    def config(self) -> MonteCarloConfig:
        """The experiment this result answers."""
        return self._config

    @property
    def outcomes(self) -> Tuple[TrialOutcome, ...]:
        """Every (trial, policy) outcome."""
        return self._outcomes

    @property
    def policies(self) -> Tuple[str, ...]:
        """Result-row labels, config order then the baseline."""
        return self._config.labels()

    def metric_names(self) -> Tuple[str, ...]:
        """Aggregated metrics, in CSV order (tenant totals last)."""
        names = [name for name, _ in _METRICS]
        if self._config.tenant_churn:
            names += [name for name, _ in _CHURN_METRICS]
        if self._config.n_tenants:
            sample = self._by_policy[self.policies[0]][0]
            names += [
                f"tenant_total_cost[{tenant}]"
                for tenant, _ in sample.tenant_costs
            ]
        return tuple(names)

    def metric(self, policy: str, metric: str) -> DistributionSummary:
        """The distribution of ``metric`` under ``policy``."""
        try:
            rows = self._by_policy[policy]
        except KeyError:
            raise SimulationError(
                f"no policy {policy!r}; rows are {list(self.policies)}"
            ) from None
        for name, extract in (*_METRICS, *_CHURN_METRICS):
            if name == metric:
                return DistributionSummary.from_values(
                    [extract(o) for o in rows]
                )
        if metric.startswith("tenant_total_cost[") and metric.endswith("]"):
            tenant = metric[len("tenant_total_cost["):-1]
            values = [
                cost.to_float()
                for o in rows
                for name, cost in o.tenant_costs
                if name == tenant
            ]
            if values:
                return DistributionSummary.from_values(values)
        raise SimulationError(
            f"unknown metric {metric!r}; metrics are "
            f"{list(self.metric_names())}"
        )

    # -- display --------------------------------------------------------

    def rows(self) -> List[Tuple[str, ...]]:
        """Deterministic CSV rows: one per (policy, metric)."""
        header = (
            "policy", "metric", "n", "mean", "stdev",
            "min", "p10", "median", "p90", "max",
        )
        out: List[Tuple[str, ...]] = [header]
        for policy in self.policies:
            for metric in self.metric_names():
                s = self.metric(policy, metric)
                out.append(
                    (
                        policy,
                        metric,
                        str(s.n),
                        *(
                            format(v, ".12g")
                            for v in (
                                s.mean, s.stdev, s.minimum,
                                s.p10, s.median, s.p90, s.maximum,
                            )
                        ),
                    )
                )
        return out

    def to_csv(self, path) -> None:
        """Write the summary CSV (byte-stable for a given config)."""
        lines = [",".join(row) for row in self.rows()]
        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write("\n".join(lines) + "\n")

    def summary(self) -> str:
        """One line per policy: cost and regret distributions."""
        lines = [
            f"{self._config.n_trials} trials x "
            f"{self._config.n_epochs} epochs, "
            f"generator={self._config.generator}, "
            f"seed={self._config.seed}"
            + (
                f", tenants={self._config.n_tenants}"
                f" ({self._config.attribution})"
                if self._config.n_tenants
                else ""
            )
            + (
                f", churn={self._config.tenant_churn:g}/epoch"
                f" (stay {self._config.tenant_stay:g})"
                if self._config.tenant_churn
                else ""
            )
            + (
                f", builds={self._config.build_slots}x"
                f" {self._config.build_discipline}"
                if self._config.build_slots
                else ""
            )
        ]
        for policy in self.policies:
            cost = self.metric(policy, "total_cost")
            regret = self.metric(policy, "regret")
            churn = self.metric(policy, "rebuilds")
            migrations = ""
            if self._config.quotes_market:
                moved = self.metric(policy, "migrations")
                migrations = f"  migrations {moved.mean:.1f}"
            lines.append(
                f"{policy:<22} cost ${cost.mean:,.2f}±{cost.stdev:,.2f} "
                f"[p10 ${cost.p10:,.2f} p90 ${cost.p90:,.2f}]  "
                f"regret {regret.mean:+.2%} (p90 {regret.p90:+.2%})  "
                f"rebuilds {churn.mean:.1f}"
                + migrations
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------


def _pool_context():
    """Fork where available (cheap), spawn otherwise (Windows/macOS)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_monte_carlo(
    config: MonteCarloConfig,
    jobs: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
) -> MonteCarloResult:
    """Run every trial and aggregate — identically for any ``jobs``.

    ``jobs`` bounds worker processes (clamped to the trial count);
    results are collected in trial order whatever the completion
    order, so parallelism can never reorder the aggregation.
    ``progress`` (serial runs only) is called with
    ``(completed, total)`` after each trial.
    """
    if jobs < 1:
        raise SimulationError(f"jobs must be >= 1, got {jobs}")
    telemetry = current_telemetry()
    explain = current_explain()
    collect = telemetry.enabled
    collect_explain = explain.enabled
    trials = range(config.n_trials)
    if jobs == 1 or config.n_trials == 1:
        bundles = []
        for trial in trials:
            bundles.append(
                _trial_with_snapshot(config, trial, collect, collect_explain)
            )
            if progress is not None:
                progress(trial + 1, config.n_trials)
    else:
        with _pool_context().Pool(min(jobs, config.n_trials)) as pool:
            bundles = pool.starmap(
                _trial_with_snapshot,
                [
                    (config, trial, collect, collect_explain)
                    for trial in trials
                ],
            )
    if collect:
        # Fold the per-trial registries in trial order — the one order
        # both execution paths share — so the merged telemetry is
        # byte-identical whatever the worker count.
        for _, snapshot, _explain in bundles:
            telemetry.registry.merge(snapshot)
    if collect_explain:
        # Same discipline for provenance: each trial's explain log is
        # folded in trial order, stamped with its trial index.
        for trial, (_, _snapshot, explain_snapshot) in zip(trials, bundles):
            explain.merge(explain_snapshot, trial=trial)
    flat = [outcome for outcomes, _, _ in bundles for outcome in outcomes]
    return MonteCarloResult(config, flat)
