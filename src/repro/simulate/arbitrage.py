"""Online pricing arbitrage: provider migration as a policy decision.

The paper treats the provider as fixed context; the lifecycle
simulator's :class:`~repro.simulate.events.PriceChange` made the book
an *event*.  This module makes it a *decision*: each epoch, an
:class:`ArbitrageAware` policy prices the warehouse's holdings and
workload against every candidate book quoted in the state's market
(cheap, because counterfactual problems flow through the shared
:class:`~repro.optimizer.problem.SubsetEvaluationCache`), charges the
would-be switch — dataset + view egress on the source, ingress on the
target, full re-materialization at the target's compute rates
(:mod:`repro.pricing.migration`) — and emits a
:class:`~repro.simulate.events.ProviderMigration` only when the
amortized savings over a forecast horizon beat the switch cost.

Two guards keep spot-price noise from causing thrash:

* the **amortization test** itself — a transient price blip rarely
  clears egress + rebuild within the horizon;
* **hysteresis** — the same candidate family must win for
  ``hysteresis`` consecutive epochs before the policy moves, the same
  hold-N idea :class:`~repro.simulate.policy.RegretTriggered` uses
  for re-selection.

The wrapper composes with any re-selection policy: the inner policy
keeps deciding *what to materialize*, the wrapper decides *where to
run it*, and on migration the subset is re-selected under the
target's book (everything is re-materialized anyway, so there is no
carry benefit to preserve).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, FrozenSet, Optional

from ..errors import SimulationError
from ..explain import ArbitrageAssessmentRecord
from ..explain import current as current_explain
from ..money import Money
from ..optimizer.problem import SelectionProblem
from ..pricing.migration import MigrationEstimate
from ..pricing.providers import Provider
from ..telemetry import current as current_telemetry
from .events import ProviderMigration
from .policy import PolicyDecision, ReselectionPolicy
from .problems import EpochContext
from .state import provider_family

__all__ = [
    "ArbitrageAware",
    "MigrationAssessment",
    "assess_migration",
    "operating_cost",
]


def operating_cost(problem: SelectionProblem, subset: AbstractSet[str]) -> Money:
    """One epoch's steady-state bill for holding ``subset``.

    Everything the subset costs per billing period *except*
    materialization: processing, maintenance, storage and result
    egress.  This is the per-epoch quantity two provider books are
    compared on — build charges are one-offs and belong to the switch
    cost, not the recurring savings.
    """
    breakdown = problem.evaluate(subset).breakdown
    return breakdown.total - breakdown.computing.materialization_cost


@dataclass(frozen=True)
class MigrationAssessment:
    """One candidate book's migration economics at one epoch.

    ``stay_cost`` and ``move_cost`` are per-epoch operating costs of
    the same holdings + workload on the current and candidate books;
    ``estimate`` is the full switch price tag.  The decision rule is
    :attr:`worthwhile`: positive per-epoch savings whose sum over
    ``horizon`` epochs exceeds the switch cost.
    """

    target: Provider
    stay_cost: Money
    move_cost: Money
    estimate: MigrationEstimate
    horizon: int

    @property
    def savings_per_epoch(self) -> Money:
        """What one epoch on the target saves (negative = costs more)."""
        return self.stay_cost - self.move_cost

    @property
    def amortized_savings(self) -> Money:
        """The savings summed over the forecast horizon."""
        return self.savings_per_epoch * self.horizon

    @property
    def net_savings(self) -> Money:
        """Amortized savings minus the switch cost — the decision margin."""
        return self.amortized_savings - self.estimate.total

    @property
    def worthwhile(self) -> bool:
        """Whether the move pays for itself within the horizon."""
        return self.savings_per_epoch > Money(0) and self.net_savings > Money(0)

    def describe(self) -> str:
        """One line: target, per-epoch savings, switch cost, verdict."""
        verdict = "pays" if self.worthwhile else "does not pay"
        return (
            f"-> {self.target.name}: saves {self.savings_per_epoch}/epoch, "
            f"switch {self.estimate.total}, net {self.net_savings} over "
            f"{self.horizon} epochs ({verdict})"
        )


def assess_migration(
    problem: SelectionProblem,
    target_problem: SelectionProblem,
    target: Provider,
    subset: AbstractSet[str],
    held: AbstractSet[str],
    horizon: int,
) -> MigrationAssessment:
    """Price one candidate migration.

    Parameters
    ----------
    problem:
        The epoch's problem on the *current* book.
    target_problem:
        The same world counterfactually billed on ``target`` (from
        :meth:`~repro.simulate.problems.EpochContext.counterfactual`).
    target:
        The candidate book.
    subset:
        The views that would be held (and re-materialized) after the
        move — the inner policy's decision for this epoch.
    held:
        The views that physically exist when the move would fire —
        they are what gets egressed alongside the dataset.
    horizon:
        Epochs the savings are amortized over.
    """
    if horizon < 1:
        raise SimulationError(f"forecast horizon must be >= 1, got {horizon}")
    inputs = problem.inputs
    rebuild = (
        target_problem.evaluate(subset).breakdown.computing.materialization_cost
    )
    estimate = MigrationEstimate.between(
        source=inputs.deployment.provider,
        target=target,
        dataset_gb=inputs.dataset_gb,
        view_sizes_gb={
            name: inputs.view_stats[name].size_gb for name in sorted(held)
        },
        rebuild_cost=rebuild,
    )
    return MigrationAssessment(
        target=target,
        stay_cost=operating_cost(problem, subset),
        move_cost=operating_cost(target_problem, subset),
        estimate=estimate,
        horizon=horizon,
    )


class ArbitrageAware(ReselectionPolicy):
    """Wraps a re-selection policy with provider-migration decisions.

    Each epoch the inner policy decides the subset as usual; the
    wrapper then prices that subset (and the workload) on every other
    family quoted in the state's market, and — when one book's
    amortized savings beat the switch cost for ``hysteresis``
    consecutive epochs — re-selects under the winner's book and
    attaches a :class:`~repro.simulate.events.ProviderMigration` to
    the decision.  The first epoch never migrates (there is nothing
    deployed to move yet), and an empty market makes the wrapper a
    transparent pass-through.

    Parameters
    ----------
    inner:
        The re-selection policy deciding *what* to materialize.
    horizon:
        Epochs the per-epoch savings are amortized over before being
        compared with the switch cost (the ``--migration-horizon``
        CLI knob).
    hysteresis:
        Consecutive epochs the same candidate family must stay
        worthwhile before the policy moves (``--migration-hold``).
        ``1`` migrates on the first worthwhile epoch.
    """

    name = "arbitrage"

    def __init__(
        self,
        inner: ReselectionPolicy,
        horizon: int = 6,
        hysteresis: int = 2,
    ) -> None:
        if isinstance(inner, ArbitrageAware):
            raise SimulationError(
                "arbitrage wrappers do not nest; wrap the base policy once"
            )
        if horizon < 1:
            raise SimulationError(
                f"forecast horizon must be >= 1 epoch, got {horizon}"
            )
        if hysteresis < 1:
            raise SimulationError(
                f"hysteresis must be >= 1 epoch, got {hysteresis}"
            )
        self._inner = inner
        self._horizon = horizon
        self._hysteresis = hysteresis
        # Consecutive epochs the same candidate family has been the
        # worthwhile winner; reset on migration, on a new run, and
        # whenever no candidate (or a different one) wins.
        self._streak = 0
        self._streak_family: Optional[str] = None

    # -- delegation -----------------------------------------------------

    @property
    def inner(self) -> ReselectionPolicy:
        """The wrapped re-selection policy."""
        return self._inner

    @property
    def horizon(self) -> int:
        """Epochs the savings forecast covers."""
        return self._horizon

    @property
    def hysteresis(self) -> int:
        """Consecutive worthwhile epochs required before migrating."""
        return self._hysteresis

    @property
    def scenario(self):
        """The inner policy's objective (delegated)."""
        return self._inner.scenario

    @property
    def algorithm(self) -> str:
        """The inner policy's selection algorithm (delegated)."""
        return self._inner.algorithm

    @property
    def optimizer(self):
        """The inner policy's optimizer spec (delegated)."""
        return self._inner.optimizer

    def optimum(
        self,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]] = None,
    ) -> FrozenSet[str]:
        """The inner policy's optimum for ``problem`` (delegated)."""
        return self._inner.optimum(problem, current)

    def decide(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]],
    ) -> PolicyDecision:
        """Without an epoch context there is nothing to arbitrage against;
        delegate to the inner policy unchanged."""
        return self._inner.decide(epoch_index, problem, current)

    # -- the arbitrage step --------------------------------------------

    def _reset(self) -> None:
        self._streak = 0
        self._streak_family = None

    def decide_in_context(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        current: Optional[FrozenSet[str]],
        context: EpochContext,
    ) -> PolicyDecision:
        """The inner decision, possibly upgraded to a migration."""
        decision = self._inner.decide(epoch_index, problem, current)
        if current is None:
            # Epoch 0: the provider is a deployment choice, not a
            # migration — there is nothing deployed to move yet.
            self._reset()
            return decision
        candidates = context.state.candidate_books()
        if not candidates:
            return decision
        telemetry = current_telemetry()
        explain = current_explain()
        quotes = []
        best: Optional[MigrationAssessment] = None
        with telemetry.span("arbitrage.assess", epoch=epoch_index):
            for book in candidates:
                assessment = assess_migration(
                    problem,
                    context.counterfactual(book),
                    book,
                    decision.subset,
                    current,
                    self._horizon,
                )
                if telemetry.enabled:
                    telemetry.inc("arbitrage.quotes")
                    if assessment.worthwhile:
                        telemetry.inc("arbitrage.worthwhile")
                if explain.enabled:
                    quotes.append(assessment)
                if not assessment.worthwhile:
                    continue
                if best is None or assessment.net_savings > best.net_savings:
                    best = assessment
        if best is None:
            self._reset()
            self._emit_quotes(explain, epoch_index, quotes, best, False)
            return decision
        family = provider_family(best.target.name)
        if family == self._streak_family:
            self._streak += 1
        else:
            self._streak_family = family
            self._streak = 1
        if self._streak < self._hysteresis:
            self._emit_quotes(explain, epoch_index, quotes, best, False)
            return decision
        streak = self._streak
        self._reset()
        if telemetry.enabled:
            telemetry.inc("arbitrage.migrations")
            telemetry.observe(
                "arbitrage.net_savings", best.net_savings
            )
        self._emit_quotes(explain, epoch_index, quotes, best, True, streak)
        # Everything re-materializes on the target anyway, so there is
        # no carry benefit: re-select under the target's book.
        subset = self._inner.optimum(context.counterfactual(best.target))
        return PolicyDecision(
            subset=subset,
            reoptimized=True,
            regret=decision.regret,
            migration=ProviderMigration(
                epoch=epoch_index, provider=best.target
            ),
            trigger="arbitrage",
            streak=streak,
        )

    def _emit_quotes(
        self,
        explain,
        epoch_index: int,
        quotes,
        best: Optional[MigrationAssessment],
        migrated: bool,
        streak: Optional[int] = None,
    ) -> None:
        """Record every book's quote into the ambient explain log.

        ``streak`` is the hold counter *after* this epoch's update
        (passed explicitly on the migration path, where the counter
        has already been reset); ``migrated`` marks the winning quote
        when the move fired.

        Each quote parks as a deferred log slot: the assessment is a
        frozen value object and every other captured input (the
        counter, the shared policy description, the winning identity)
        is immutable, so the record — a dozen exact ``Money`` reads
        plus a dataclass — materializes at log-read time instead of
        inside the decision loop.
        """
        if not explain.enabled:
            return
        counter = streak if streak is not None else self._streak
        # One description per emission batch, not per book: describe()
        # renders nested policy reprs, and every quote shares it.
        policy = self.describe()
        hold = self._hysteresis
        for quote in quotes:
            explain.emit_deferred(
                lambda quote=quote: ArbitrageAssessmentRecord(
                    epoch=epoch_index,
                    policy=policy,
                    target=quote.target.name,
                    stay_cost=quote.stay_cost,
                    move_cost=quote.move_cost,
                    savings_per_epoch=quote.savings_per_epoch,
                    switch_cost=quote.estimate.total,
                    amortized_savings=quote.amortized_savings,
                    net_savings=quote.net_savings,
                    horizon=quote.horizon,
                    worthwhile=quote.worthwhile,
                    streak=counter,
                    hold=hold,
                    migrated=migrated and quote is best,
                )
            )

    def describe(self) -> str:
        """``arbitrage[inner, h=H(, hold N)]``."""
        hold = f", hold {self._hysteresis}" if self._hysteresis > 1 else ""
        return (
            f"arbitrage[{self._inner.describe()}, "
            f"h={self._horizon}{hold}]"
        )
