"""The lifecycle simulator: clock x events x policy -> ledger.

One :class:`LifecycleSimulator` owns a timeline (initial state +
events) and a clock, and can run any number of re-selection policies
over it.  All runs share one :class:`~repro.simulate.problems.
EpochProblemBuilder`, so the second policy's sweep over the same
epochs is answered almost entirely from the subset-evaluation cache —
that sharing is what makes multi-policy comparisons cheap.

Epoch accounting (see :mod:`repro.simulate.ledger` for the split):
the epoch's subset is priced through the existing cost model, then the
materialization charge is narrowed to the views actually (re)built
this epoch — a carried view was paid for when it was built, and only
its maintenance recurs.  Dropped views are charged one decommission
egress of their size.  A provider migration (scheduled
:class:`~repro.simulate.events.ProviderMigration` event, or one
attached to a policy decision) bills both transfer legs — dataset +
held views egressed on the source book, ingressed on the target's —
as the epoch's ``migration_cost``, and re-materializes every kept
view at the target's rates (the whole subset counts as built that
epoch).  With ``cascade_materialization`` enabled,
carried views are zeroed out of the cascade's build plan, which
slightly overstates a rebuild that could have cascaded off a carried
view — the conservative direction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from ..costmodel.total import CostBreakdown
from ..cube.candidates import enumerate_candidates
from ..cube.lattice import CuboidLattice
from ..cube.views import CandidateView
from ..errors import SimulationError
from ..money import Money, ZERO
from ..optimizer.problem import SelectionProblem, SubsetEvaluationCache
from ..pricing.migration import migration_transfer_cost, migration_volume_gb
from ..pricing.providers import Provider
from .clock import SimulationClock
from .events import EventTimeline, ProviderMigration, SimulationEvent
from .ledger import EpochRecord, SimulationLedger
from .policy import ReselectionPolicy
from .problems import EpochContext, EpochProblemBuilder
from .state import WarehouseState

__all__ = ["EpochObserver", "LifecycleSimulator", "full_catalogue"]

#: Per-epoch callback: ``(record, problem, breakdown)``, invoked by
#: :meth:`LifecycleSimulator.run` after each epoch is accounted.
EpochObserver = Callable[[EpochRecord, SelectionProblem, CostBreakdown], None]


def compare_policies(run, policies):
    """Run ``policies`` through ``run``, keyed by their describe() names.

    Shared by :meth:`LifecycleSimulator.compare` and the multi-tenant
    :meth:`~repro.simulate.tenants.MultiTenantSimulator.compare`:
    ``run(policy)`` returns any ledger-like object with a
    ``policy_name``, and two policies describing identically are
    rejected so no result can silently shadow another.
    """
    ledgers = {}
    for policy in policies:
        ledger = run(policy)
        if ledger.policy_name in ledgers:
            raise SimulationError(
                f"two policies describe() as {ledger.policy_name!r}; "
                "give them distinct parameters"
            )
        ledgers[ledger.policy_name] = ledger
    return ledgers


def full_catalogue(lattice: CuboidLattice) -> Tuple[CandidateView, ...]:
    """Every non-base cuboid as a candidate view, stably named.

    The simulator's candidate universe must be fixed for the whole
    lifecycle (views picked at epoch 0 must still be priceable at
    epoch 40, whatever the workload drifted to), so it is the schema's
    lattice rather than any one epoch's query grains.
    """
    return tuple(enumerate_candidates(lattice, useful_only=False))


class LifecycleSimulator:
    """Steps a warehouse through epochs, events and re-selections."""

    def __init__(
        self,
        initial: WarehouseState,
        clock: SimulationClock,
        timeline: Optional[EventTimeline] = None,
        events: Sequence[SimulationEvent] = (),
        catalogue: Optional[Sequence[CandidateView]] = None,
        cache: Optional[SubsetEvaluationCache] = None,
        charge_teardown_egress: bool = True,
    ) -> None:
        if timeline is not None and events:
            raise SimulationError(
                "pass either a timeline or an event sequence, not both"
            )
        self._initial = initial
        self._clock = clock
        # Every cost formula bills one deployment period per epoch, so
        # the epoch length must *be* the deployment's storage period —
        # otherwise the ledger would silently misbill the horizon.
        if abs(clock.months_per_epoch - initial.deployment.storage_months) > 1e-9:
            raise SimulationError(
                f"epoch length ({clock.months_per_epoch} months) must match "
                f"the deployment's billing period "
                f"({initial.deployment.storage_months} months); adjust "
                "storage_months or months_per_epoch"
            )
        self._timeline = (
            timeline if timeline is not None else EventTimeline(events)
        )
        self._timeline.check_within(clock.n_epochs)
        if catalogue is None:
            catalogue = full_catalogue(
                CuboidLattice(initial.workload.schema)
            )
        self._builder = EpochProblemBuilder(catalogue, cache)
        self._charge_teardown = charge_teardown_egress

    # -- accessors ------------------------------------------------------

    @property
    def clock(self) -> SimulationClock:
        """The epoch grid this simulator steps over."""
        return self._clock

    @property
    def timeline(self) -> EventTimeline:
        """The scheduled events."""
        return self._timeline

    @property
    def builder(self) -> EpochProblemBuilder:
        """The shared problem builder (inspect for cache statistics)."""
        return self._builder

    # -- the run --------------------------------------------------------

    def run(
        self,
        policy: ReselectionPolicy,
        observer: Optional[EpochObserver] = None,
    ) -> SimulationLedger:
        """Simulate the full horizon under ``policy``.

        ``observer``, if given, is called once per epoch — after the
        epoch is accounted — with ``(record, problem, breakdown)``,
        where ``breakdown`` is the epoch's priced
        :class:`~repro.costmodel.total.CostBreakdown` (materialization
        narrowed to the views built this epoch).  The multi-tenant
        layer uses this hook to attribute each epoch's charges without
        the core loop knowing tenants exist.
        """
        ledger = SimulationLedger(policy.describe())
        state = self._initial
        current: Optional[FrozenSet[str]] = None
        for epoch in self._clock:
            fired = self._timeline.at(epoch.index)
            # Each migration hop is billed from the book it actually
            # leaves — captured at apply time, because earlier events
            # in the same epoch (a forced PriceChange, another hop)
            # may already have moved the warehouse.
            hops = []
            for event in fired:
                if isinstance(event, ProviderMigration):
                    source = state.deployment.provider
                    state = event.apply(state)
                    hops.append((source, state.deployment.provider))
                else:
                    state = event.apply(state)
            problem = self._builder.problem_for(state)
            context = EpochContext(state=state, builder=self._builder)
            decision = policy.decide_in_context(
                epoch.index, problem, current, context
            )
            described = [e.describe() for e in fired]
            if decision.migration is not None:
                # A policy-decided switch: the state follows the
                # decision, and the epoch is accounted on the target.
                source = state.deployment.provider
                state = decision.migration.apply(state)
                hops.append((source, state.deployment.provider))
                problem = self._builder.problem_for(state)
                described.append(decision.migration.describe())
            held = current if current is not None else frozenset()
            dropped = held - decision.subset
            if hops:
                # Views are not portable between providers: everything
                # kept through the move is re-materialized (and billed)
                # on the target, and the warehouse as it stood —
                # dataset plus held views — is shipped across, once
                # per hop.
                built = frozenset(decision.subset)
                migration_cost = ZERO
                for source, target in hops:
                    migration_cost = migration_cost + self._migration_cost(
                        source, target, problem, held
                    )
                migrated_to = state.deployment.provider.name
            else:
                built = decision.subset - held
                migration_cost = ZERO
                migrated_to = None
            record, breakdown = self._account(
                epoch.index, problem, decision.subset, built, dropped,
                decision.reoptimized, decision.regret, tuple(described),
                migration_cost, migrated_to,
            )
            ledger.append(record)
            if observer is not None:
                observer(record, problem, breakdown)
            current = decision.subset
        return ledger

    @staticmethod
    def _migration_cost(
        source: Provider,
        target: Provider,
        problem: SelectionProblem,
        held: FrozenSet[str],
    ) -> Money:
        """Both transfer legs of a provider switch.

        The shipped volume is the dataset plus the views held going
        into the epoch (what physically exists to move); egress is
        billed on the source book, ingress on the target's.  View
        sizes are provider-independent, so the post-migration
        problem's statistics price them correctly.
        """
        inputs = problem.inputs
        volume = migration_volume_gb(
            inputs.dataset_gb,
            {name: inputs.view_stats[name].size_gb for name in sorted(held)},
        )
        egress, ingress = migration_transfer_cost(source, target, volume)
        return egress + ingress

    def compare(
        self, policies: Iterable[ReselectionPolicy]
    ) -> Dict[str, SimulationLedger]:
        """Run several policies over the same timeline, caches shared."""
        return compare_policies(self.run, policies)

    # -- epoch accounting ----------------------------------------------

    def _account(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        subset: FrozenSet[str],
        built: FrozenSet[str],
        dropped: FrozenSet[str],
        reoptimized: bool,
        regret: float,
        events: Tuple[str, ...],
        migration_cost: Money = ZERO,
        migrated_to: "Optional[str]" = None,
    ) -> Tuple[EpochRecord, CostBreakdown]:
        inputs = problem.inputs
        plan = inputs.plan_for(subset)
        # plan_for orders per-view tuples by sorted view name; charge
        # materialization only for the views built this epoch.
        ordered = sorted(subset)
        epoch_plan = replace(
            plan,
            materialization_hours=tuple(
                hours if name in built else 0.0
                for name, hours in zip(ordered, plan.materialization_hours)
            ),
        )
        breakdown = problem.cost_model.evaluate(epoch_plan)
        build_cost = breakdown.computing.materialization_cost
        operating_cost = breakdown.total - build_cost
        if dropped and self._charge_teardown:
            dropped_gb = sum(
                inputs.view_stats[name].size_gb for name in dropped
            )
            teardown_cost = (
                inputs.deployment.provider.transfer.outbound_cost(dropped_gb)
            )
        else:
            teardown_cost = ZERO
        record = EpochRecord(
            epoch=epoch_index,
            subset=tuple(ordered),
            operating_cost=operating_cost,
            build_cost=build_cost,
            teardown_cost=teardown_cost,
            processing_hours=breakdown.processing_hours,
            views_built=tuple(sorted(built)),
            views_dropped=tuple(sorted(dropped)),
            reoptimized=reoptimized,
            regret=regret,
            events=events,
            migration_cost=migration_cost,
            migrated_to=migrated_to,
        )
        return record, breakdown
