"""The lifecycle simulator: clock x events x policy -> ledger.

One :class:`LifecycleSimulator` owns a timeline (initial state +
events) and a clock, and can run any number of re-selection policies
over it.  All runs share one :class:`~repro.simulate.problems.
EpochProblemBuilder`, so the second policy's sweep over the same
epochs is answered almost entirely from the subset-evaluation cache —
that sharing is what makes multi-policy comparisons cheap.

Epoch accounting (see :mod:`repro.simulate.ledger` for the split):
the epoch's subset is priced through the existing cost model, then the
materialization charge is narrowed to the views actually (re)built
this epoch — a carried view was paid for when it was built, and only
its maintenance recurs.  Dropped views are charged one decommission
egress of their size.  A provider migration (scheduled
:class:`~repro.simulate.events.ProviderMigration` event, or one
attached to a policy decision) bills both transfer legs — dataset +
held views egressed on the source book, ingressed on the target's —
as the epoch's ``migration_cost``, and re-materializes every kept
view at the target's rates (the whole subset counts as built that
epoch).  With ``cascade_materialization`` enabled,
carried views are zeroed out of the cascade's build plan, which
slightly overstates a rebuild that could have cascaded off a carried
view — the conservative direction.

Asynchronous execution (pass a :class:`~repro.simulate.builds.
BuildConfig`) decouples the decision from the epoch clock: a decided
build enters a :class:`~repro.simulate.builds.BuildQueue` and lands
only after its wall-clock duration (``materialization_hours``
converted to months).  Until it lands, queries are answered from the
*previous* holdings; once it lands mid-epoch, the epoch is split into
:class:`~repro.simulate.ledger.EpochSegment`\\ s at the completion
instants and each segment bills its holdings' full-period operating
charge scaled by the period fraction — all through the same
subset-evaluation cache.  Build compute is billed in the epoch the
build *completes*; an in-flight build whose view a later decision
drops is cancelled with only its sunk compute billed
(``cancelled_cost``), and builds still in flight when the horizon
ends are likewise closed out at sunk cost.  With instant builds
(``hours_per_month = inf``) every decision lands at its own epoch's
start and the async ledger reproduces the synchronous one byte for
byte — the parity invariant the tests enforce.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..costmodel.computing import view_computing_cost
from ..costmodel.estimator import PlanningInputs
from ..costmodel.total import CostBreakdown
from ..cube.candidates import enumerate_candidates
from ..cube.lattice import CuboidLattice
from ..cube.views import CandidateView
from ..errors import SimulationError
from ..explain import (
    BuildOutcomeRecord,
    EpochDeltaRecord,
    PolicyTriggerRecord,
    chain_subterms,
    event_cause,
    fleet_epoch_delta,
)
from ..explain import current as current_explain
from ..money import Money, ZERO
from ..optimizer.problem import SelectionProblem, SubsetEvaluationCache
from ..pricing.migration import migration_transfer_cost, migration_volume_gb
from ..pricing.providers import Provider
from ..telemetry import current as current_telemetry
from .arbitrage import operating_cost as _subset_operating_cost
from .builds import BuildConfig, BuildJob, tile_fractions
from .clock import Epoch, SimulationClock
from .events import (
    BuildCancelled,
    BuildCompleted,
    BuildStarted,
    EventTimeline,
    ProviderMigration,
    SimulationEvent,
    TenantArrival,
    TenantDeparture,
)
from .ledger import EpochRecord, EpochSegment, SimulationLedger
from .policy import ReselectionPolicy
from .problems import EpochContext, EpochProblemBuilder
from .state import Holdings, WarehouseState

__all__ = [
    "EpochObserver",
    "LifecycleSimulator",
    "compose_observers",
    "full_catalogue",
]


@runtime_checkable
class EpochObserver(Protocol):
    """The per-epoch callback contract — THE one place it is defined.

    :meth:`LifecycleSimulator.run` invokes the observer exactly once
    per epoch, *after* the epoch is fully accounted and appended to
    the ledger, with:

    ``record``
        The finished :class:`~repro.simulate.ledger.EpochRecord` —
        immutable; observers read it, they never amend it.
    ``problem``
        The epoch's :class:`~repro.optimizer.problem.SelectionProblem`
        (post-migration on migration epochs), through which observers
        reach planning inputs, per-query hours, and evaluation
        statistics.
    ``breakdown``
        The epoch's priced :class:`~repro.costmodel.total.
        CostBreakdown` with materialization narrowed to the views
        built this epoch — the exact numbers the record's charges came
        from.  On segmented async epochs it is the *last* segment's
        breakdown (the epoch-end holdings).

    Observers must not raise (an exception aborts the run) and must
    not mutate simulator state.  Any callable with this shape
    satisfies the protocol — plain functions and closures included;
    tenant attribution (:class:`~repro.simulate.tenants.
    MultiTenantSimulator`) and telemetry observers are both written
    against it and compose via :func:`compose_observers`.
    """

    def __call__(
        self,
        record: EpochRecord,
        problem: SelectionProblem,
        breakdown: CostBreakdown,
    ) -> None:
        """Consume one accounted epoch."""
        ...


def compose_observers(
    *observers: Optional[EpochObserver],
) -> Optional[EpochObserver]:
    """Fan one epoch out to several observers, in argument order.

    ``None`` entries are skipped (so optional observers compose
    without conditionals at the call site); with zero or one live
    observer the result is ``None`` / that observer itself — no
    wrapper is interposed.
    """
    live = [obs for obs in observers if obs is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def fan_out(
        record: EpochRecord,
        problem: SelectionProblem,
        breakdown: CostBreakdown,
    ) -> None:
        for observe in live:
            observe(record, problem, breakdown)

    return fan_out


def compare_policies(run, policies):
    """Run ``policies`` through ``run``, keyed by their describe() names.

    Shared by :meth:`LifecycleSimulator.compare` and the multi-tenant
    :meth:`~repro.simulate.tenants.MultiTenantSimulator.compare`:
    ``run(policy)`` returns any ledger-like object with a
    ``policy_name``, and two policies describing identically are
    rejected so no result can silently shadow another.
    """
    ledgers = {}
    for policy in policies:
        ledger = run(policy)
        if ledger.policy_name in ledgers:
            raise SimulationError(
                f"two policies describe() as {ledger.policy_name!r}; "
                "give them distinct parameters"
            )
        ledgers[ledger.policy_name] = ledger
    return ledgers


def full_catalogue(lattice: CuboidLattice) -> Tuple[CandidateView, ...]:
    """Every non-base cuboid as a candidate view, stably named.

    The simulator's candidate universe must be fixed for the whole
    lifecycle (views picked at epoch 0 must still be priceable at
    epoch 40, whatever the workload drifted to), so it is the schema's
    lattice rather than any one epoch's query grains.
    """
    return tuple(enumerate_candidates(lattice, useful_only=False))


class LifecycleSimulator:
    """Steps a warehouse through epochs, events and re-selections."""

    def __init__(
        self,
        initial: WarehouseState,
        clock: SimulationClock,
        timeline: Optional[EventTimeline] = None,
        events: Sequence[SimulationEvent] = (),
        catalogue: Optional[Sequence[CandidateView]] = None,
        cache: Optional[SubsetEvaluationCache] = None,
        charge_teardown_egress: bool = True,
        builds: Optional[BuildConfig] = None,
    ) -> None:
        if timeline is not None and events:
            raise SimulationError(
                "pass either a timeline or an event sequence, not both"
            )
        self._initial = initial
        self._clock = clock
        # Every cost formula bills one deployment period per epoch, so
        # the epoch length must *be* the deployment's storage period —
        # otherwise the ledger would silently misbill the horizon.
        if abs(clock.months_per_epoch - initial.deployment.storage_months) > 1e-9:
            raise SimulationError(
                f"epoch length ({clock.months_per_epoch} months) must match "
                f"the deployment's billing period "
                f"({initial.deployment.storage_months} months); adjust "
                "storage_months or months_per_epoch"
            )
        self._timeline = (
            timeline if timeline is not None else EventTimeline(events)
        )
        self._timeline.check_within(clock.n_epochs)
        if catalogue is None:
            catalogue = full_catalogue(
                CuboidLattice(initial.workload.schema)
            )
        self._builder = EpochProblemBuilder(catalogue, cache)
        self._charge_teardown = charge_teardown_egress
        self._builds = builds

    # -- accessors ------------------------------------------------------

    @property
    def clock(self) -> SimulationClock:
        """The epoch grid this simulator steps over."""
        return self._clock

    @property
    def timeline(self) -> EventTimeline:
        """The scheduled events."""
        return self._timeline

    @property
    def builder(self) -> EpochProblemBuilder:
        """The shared problem builder (inspect for cache statistics)."""
        return self._builder

    @property
    def builds(self) -> Optional[BuildConfig]:
        """The build-queue configuration (``None`` = synchronous)."""
        return self._builds

    # -- the run --------------------------------------------------------

    def run(
        self,
        policy: ReselectionPolicy,
        observer: Optional[EpochObserver] = None,
    ) -> SimulationLedger:
        """Simulate the full horizon under ``policy``.

        ``observer``, if given, is called once per epoch — after the
        epoch is accounted — with ``(record, problem, breakdown)``,
        where ``breakdown`` is the epoch's priced
        :class:`~repro.costmodel.total.CostBreakdown` (materialization
        narrowed to the views built this epoch).  The multi-tenant
        layer uses this hook to attribute each epoch's charges without
        the core loop knowing tenants exist.

        With a build configuration (``builds=...``) the run is
        asynchronous — see :meth:`_run_async`; without one, this is
        the classic synchronous loop, bit-for-bit unchanged.
        """
        if self._builds is not None:
            return self._run_async(policy, observer)
        telemetry = current_telemetry()
        explain = current_explain()
        ledger = SimulationLedger(policy.describe())
        state = self._initial
        current: Optional[FrozenSet[str]] = None
        previous_record: Optional[EpochRecord] = None
        previous_problem: Optional[SelectionProblem] = None
        stats_before = self._builder.evaluation_stats()
        for epoch in self._clock:
            fired = self._timeline.at(epoch.index)
            # Provenance capture: after each event applies, the
            # (event, intermediate state) pair — the telescoping chain
            # the explain layer later re-prices to attribute the
            # operating delta per event.  Capture is two pointer
            # stores; classification, description, and pricing all
            # happen at log-read time (emit_deferred).  None when
            # explain is off, so the disabled path allocates nothing.
            chain = [] if explain.enabled else None
            # Each migration hop is billed from the book it actually
            # leaves — captured at apply time, because earlier events
            # in the same epoch (a forced PriceChange, another hop)
            # may already have moved the warehouse.
            hops = []
            arrived = []
            departures = []
            settle_inputs = None
            for event in fired:
                if isinstance(event, ProviderMigration):
                    settle_inputs = None
                    source = state.deployment.provider
                    state = event.apply(state)
                    hops.append((source, state.deployment.provider))
                elif isinstance(event, TenantDeparture):
                    # Settlement is priced at the book (and result
                    # sizes) the tenant actually leaves — captured
                    # before its queries drop out of the workload.  A
                    # query's result size is independent of the rest
                    # of the workload, so consecutive departures share
                    # one pricing pass; any other event invalidates it.
                    if settle_inputs is None:
                        settle_inputs = self._builder.problem_for(
                            state
                        ).inputs
                    departures.append(
                        self._settle_departure(state, event, settle_inputs)
                    )
                    state = event.apply(state)
                else:
                    settle_inputs = None
                    state = event.apply(state)
                    if isinstance(event, TenantArrival):
                        arrived.append(event)
                if chain is not None:
                    chain.append((event, state))
            problem = self._builder.problem_for(state)
            arrivals = tuple(
                self._price_arrival(problem, event) for event in arrived
            )
            context = EpochContext(state=state, builder=self._builder)
            with explain.scope(epoch.index, ledger.policy_name):
                with telemetry.span(
                    "epoch.decide",
                    epoch=epoch.index,
                    policy=ledger.policy_name,
                ):
                    decision = policy.decide_in_context(
                        epoch.index, problem, current, context
                    )
            described = [e.describe() for e in fired]
            if decision.migration is not None:
                # A policy-decided switch: the state follows the
                # decision, and the epoch is accounted on the target.
                source = state.deployment.provider
                state = decision.migration.apply(state)
                hops.append((source, state.deployment.provider))
                problem = self._builder.problem_for(state)
                described.append(decision.migration.describe())
                if chain is not None:
                    chain.append((decision.migration, state))
            held = current if current is not None else frozenset()
            dropped = held - decision.subset
            if hops:
                # Views are not portable between providers: everything
                # kept through the move is re-materialized (and billed)
                # on the target, and the warehouse as it stood —
                # dataset plus held views — is shipped across, once
                # per hop.
                built = frozenset(decision.subset)
                migration_cost = ZERO
                for source, target in hops:
                    migration_cost = migration_cost + self._migration_cost(
                        source, target, problem, held
                    )
                migrated_to = state.deployment.provider.name
            else:
                built = decision.subset - held
                migration_cost = ZERO
                migrated_to = None
            with telemetry.span("epoch.account", epoch=epoch.index):
                record, breakdown = self._account(
                    epoch.index, problem, decision.subset, built, dropped,
                    decision.reoptimized, decision.regret, tuple(described),
                    migration_cost, migrated_to,
                    arrivals=arrivals, departures=tuple(departures),
                )
            record, stats_before = self._finish_epoch(
                telemetry, record, stats_before
            )
            ledger.append(record)
            if observer is not None:
                observer(record, problem, breakdown)
            if explain.enabled:
                self._emit_explain(
                    explain, ledger.policy_name, decision, record,
                    previous_record, current, current,
                    chain, problem, previous_problem,
                )
            previous_record = record
            previous_problem = problem
            current = decision.subset
        return ledger

    def _emit_explain(
        self,
        explain,
        policy_name: str,
        decision,
        record: EpochRecord,
        previous_record: Optional[EpochRecord],
        previous_subset: Optional[FrozenSet[str]],
        baseline_subset: Optional[FrozenSet[str]],
        chain,
        problem: SelectionProblem,
        previous_problem: Optional[SelectionProblem],
    ) -> None:
        """Emit one epoch's provenance: trigger, builds, exact delta.

        Called only when explain is enabled, after the epoch's record
        is appended and observed — provenance is derived from finished
        facts, never interleaved with accounting.  All three records
        are parked as deferred slots
        (:meth:`~repro.explain.ExplainLog.emit_deferred`) and
        materialized on first log read: the run loop pays three
        closure allocations per epoch, and the real work — record
        construction, chain re-pricing, the exact ``Money`` fold —
        happens off the run's critical path.  Every input the thunks
        close over is frozen (ledger records, the decision) or
        interned (problems, chain states), so late resolution is
        byte-identical to eager emission — and because no explain
        pricing flows through the shared evaluation cache *during*
        the run, the ledger's cache statistics are exactly those of an
        uninstrumented run.

        ``previous_subset`` is the incumbent the *policy* saw (its
        ``current``); ``baseline_subset`` is the subset the
        telescoping event chain is priced with — the same thing on
        synchronous runs, but the physically *live* holdings at epoch
        start on asynchronous ones (``None`` on the first epoch — no
        chain).  ``chain`` holds ``(event, state)`` snapshots taken
        after each event applied.

        ``problem`` and ``previous_problem`` are the epoch's and the
        previous epoch's decision problems, passed by reference so the
        chain endpoints skip the problem lookup entirely: the carry
        baseline *is* the previous epoch's decision state, and the
        final chain state *is* this epoch's (holdings never enter
        operating pricing — problem inputs are workload × dataset ×
        deployment — so the holdings rewrite between a chain snapshot
        and the decision state cannot move the priced value).  Only
        intermediate states of multi-event epochs build problems of
        their own.
        """
        explain.emit_deferred(
            lambda: PolicyTriggerRecord(
                epoch=record.epoch,
                policy=policy_name,
                trigger=decision.trigger,
                reoptimized=decision.reoptimized,
                regret=decision.regret,
                streak=decision.streak,
                subset=tuple(record.subset),
                previous=(
                    None
                    if previous_subset is None
                    else tuple(sorted(previous_subset))
                ),
            )
        )
        if record.views_built or record.views_cancelled:
            explain.emit_deferred(
                lambda: BuildOutcomeRecord(
                    epoch=record.epoch,
                    policy=policy_name,
                    landed=tuple(record.views_built),
                    cancelled=tuple(record.views_cancelled),
                    build_cost=record.build_cost,
                    cancelled_cost=record.cancelled_cost,
                    latency_months=record.build_latency_months,
                )
            )
        explain.emit_deferred(
            lambda: self._epoch_delta_record(
                policy_name, record, previous_record, baseline_subset,
                chain, problem, previous_problem,
            )
        )

    def _epoch_delta_record(
        self,
        policy_name: str,
        record: EpochRecord,
        previous_record: Optional[EpochRecord],
        baseline_subset: Optional[FrozenSet[str]],
        chain,
        problem: SelectionProblem,
        previous_problem: Optional[SelectionProblem],
    ) -> EpochDeltaRecord:
        """Build one epoch's exact delta record (deferred-thunk body).

        Runs at log-read time, after the simulation returned — see
        :meth:`_emit_explain` for why that is safe.  Chain pricing
        flows through the shared problem builder and evaluation cache,
        so a state the run itself priced resolves as a cache hit.
        """
        subterms = ()
        if previous_record is not None:
            base = (
                baseline_subset
                if baseline_subset is not None
                else frozenset()
            )
            triples = []
            if chain:
                triples.append(
                    (
                        "carry-over",
                        "",
                        _subset_operating_cost(previous_problem, base),
                    )
                )
                last = len(chain) - 1
                for index, (event, chain_state) in enumerate(chain):
                    triples.append(
                        (
                            event_cause(event),
                            event.describe(),
                            _subset_operating_cost(problem, base)
                            if index == last
                            else self._chain_operating(chain_state, base),
                        )
                    )
            subterms = chain_subterms(
                previous_record.operating_cost,
                triples,
                record.operating_cost,
            )
        return fleet_epoch_delta(
            record,
            previous_record,
            policy_name,
            operating_subterms=subterms,
        )

    def _chain_operating(
        self,
        state: WarehouseState,
        subset: FrozenSet[str],
    ) -> Money:
        """Price one intermediate chain state at the baseline subset.

        Only multi-event epochs reach this — the chain's endpoints are
        priced on the epoch problems the run loop already holds (see
        :meth:`_emit_explain`).  Flows through the shared problem
        builder, so a repeated intermediate state is still a cache hit.
        """
        problem = self._builder.problem_for(state)
        return _subset_operating_cost(problem, subset)

    def _finish_epoch(self, telemetry, record, stats_before):
        """Stamp the epoch's cache deltas on its record; emit metrics.

        Returns the amended record and the new stats baseline.  The
        cache fields are computed whether or not telemetry is enabled
        — they are ledger data, and both execution paths derive them
        the same way, so sync/instant-async record equality is kept.
        """
        stats_after = self._builder.evaluation_stats()
        record = replace(
            record,
            cache_hits=stats_after.hits - stats_before.hits,
            subsets_priced=stats_after.priced - stats_before.priced,
        )
        if telemetry.enabled:
            telemetry.inc("simulator.epochs")
            if record.reoptimized:
                telemetry.inc("simulator.reoptimizations")
            if record.migrated_to is not None:
                telemetry.inc("simulator.migrations")
            telemetry.inc("cache.hits", record.cache_hits)
            telemetry.inc("cache.subsets_priced", record.subsets_priced)
            telemetry.observe("simulator.epoch_cost", record.total_cost)
        return record, stats_after

    # -- the asynchronous run ------------------------------------------

    def _run_async(
        self,
        policy: ReselectionPolicy,
        observer: Optional[EpochObserver] = None,
    ) -> SimulationLedger:
        """Simulate with wall-clock builds through a :class:`BuildQueue`.

        The decision loop is identical to the synchronous run (the
        policy still sees its previous *decision* as ``current``, so
        the same policy makes the same choices); what changes is when
        a decision takes physical effect:

        * decided builds are submitted to the queue and land after
          their wall-clock duration — possibly epochs later;
        * queries are answered from the views actually live, so an
          epoch is split at every landing instant and each segment
          bills its holdings' prorated operating charge;
        * build compute is billed in the landing epoch; a build whose
          view a later decision drops is cancelled at sunk cost;
        * a provider migration cancels every in-flight build (it
          targeted the old book) and re-queues the whole subset on
          the target.

        With instant builds every submission lands at its own epoch's
        start and this loop reproduces :meth:`run`'s ledger exactly.
        """
        telemetry = current_telemetry()
        explain = current_explain()
        ledger = SimulationLedger(policy.describe())
        state = self._initial
        queue = self._builds.queue()
        live: FrozenSet[str] = frozenset()
        current: Optional[FrozenSet[str]] = None
        previous_record: Optional[EpochRecord] = None
        previous_problem: Optional[SelectionProblem] = None
        last_index = self._clock.n_epochs - 1
        stats_before = self._builder.evaluation_stats()
        for epoch in self._clock:
            fired = self._timeline.at(epoch.index)
            # Provenance capture (see run()); the async chain is
            # priced at the subset physically live at epoch start.
            baseline_live = live if previous_record is not None else None
            chain = [] if explain.enabled else None
            hops = []
            # Sunk compute of builds a migration abandons was burned on
            # the book being *left*: remember the deployment as it
            # stood before the first hop, so cancellations bill at the
            # rates the compute actually ran under.
            pre_hop_deployment = None
            arrived = []
            departures = []
            settle_inputs = None
            for event in fired:
                if isinstance(event, ProviderMigration):
                    settle_inputs = None
                    if pre_hop_deployment is None:
                        pre_hop_deployment = state.deployment
                    source = state.deployment.provider
                    state = event.apply(state)
                    hops.append((source, state.deployment.provider))
                elif isinstance(event, TenantDeparture):
                    if settle_inputs is None:
                        settle_inputs = self._builder.problem_for(
                            state
                        ).inputs
                    departures.append(
                        self._settle_departure(state, event, settle_inputs)
                    )
                    state = event.apply(state)
                else:
                    settle_inputs = None
                    state = event.apply(state)
                    if isinstance(event, TenantArrival):
                        arrived.append(event)
                if chain is not None:
                    chain.append((event, state))
            epoch_holdings = Holdings(
                live=live, pending=queue.pending_views()
            )
            state = state.with_holdings(epoch_holdings)
            problem = self._builder.problem_for(state)
            arrivals = tuple(
                self._price_arrival(problem, event) for event in arrived
            )
            context = EpochContext(state=state, builder=self._builder)
            with explain.scope(epoch.index, ledger.policy_name):
                with telemetry.span(
                    "epoch.decide",
                    epoch=epoch.index,
                    policy=ledger.policy_name,
                ):
                    decision = policy.decide_in_context(
                        epoch.index, problem, current, context
                    )
            described = [e.describe() for e in fired]
            if decision.migration is not None:
                if pre_hop_deployment is None:
                    pre_hop_deployment = state.deployment
                source = state.deployment.provider
                state = decision.migration.apply(state)
                hops.append((source, state.deployment.provider))
                problem = self._builder.problem_for(state)
                described.append(decision.migration.describe())
                if chain is not None:
                    chain.append((decision.migration, state))
            target = decision.subset
            live_at_start = live
            # In-flight builds the decision no longer wants are
            # abandoned at sunk cost; a migration abandons all of them
            # (they were building for the book being left).
            doomed = (
                queue.pending_views()
                if hops
                else queue.pending_views() - target
            )
            cancellations = list(queue.cancel(doomed, epoch.start_month))
            dropped = live - target
            live = live & target
            if hops:
                # Views are not portable between providers: ship the
                # warehouse as it physically stands, then rebuild the
                # whole target subset from scratch on the new book.
                migration_cost = ZERO
                for source, hop_target in hops:
                    migration_cost = migration_cost + self._migration_cost(
                        source, hop_target, problem, live_at_start
                    )
                migrated_to = state.deployment.provider.name
                live = frozenset()
            else:
                migration_cost = ZERO
                migrated_to = None
            # Submit what the decision wants but the warehouse neither
            # has nor is already building; durations come from this
            # epoch's cost model and are frozen into the job.
            plan = problem.inputs.plan_for(target)
            hours_by_view = dict(
                zip(sorted(target), plan.materialization_hours)
            )
            for view in sorted(target - live - queue.pending_views()):
                queue.submit(
                    BuildJob(
                        view=view,
                        hours=hours_by_view[view],
                        submitted_month=epoch.start_month,
                    )
                )
            completions = list(queue.advance_to(epoch.end_month))
            if epoch.index == last_index:
                # The horizon ends with builds in flight: close them
                # out at sunk cost so no compute silently vanishes.
                cancellations.extend(
                    queue.cancel(queue.pending_views(), epoch.end_month)
                )
            delayed = queue.drain_delayed_starts()
            with telemetry.span("epoch.account", epoch=epoch.index):
                record, breakdown, live = self._account_async(
                    epoch, problem, plan, decision, live, dropped,
                    completions, cancellations, delayed, tuple(described),
                    migration_cost, migrated_to,
                    cancel_deployment=(
                        pre_hop_deployment
                        if pre_hop_deployment is not None
                        else problem.inputs.deployment
                    ),
                    arrivals=arrivals, departures=tuple(departures),
                )
            record, stats_before = self._finish_epoch(
                telemetry, record, stats_before
            )
            ledger.append(record)
            if observer is not None:
                observer(record, problem, breakdown)
            if explain.enabled:
                self._emit_explain(
                    explain, ledger.policy_name, decision, record,
                    previous_record, current, baseline_live,
                    chain, problem, previous_problem,
                )
            previous_record = record
            previous_problem = problem
            current = target
        return ledger

    def _account_async(
        self,
        epoch: Epoch,
        problem: SelectionProblem,
        plan,
        decision,
        live: FrozenSet[str],
        dropped: FrozenSet[str],
        completions,
        cancellations,
        delayed_starts,
        described: Tuple[str, ...],
        migration_cost: Money,
        migrated_to: Optional[str],
        cancel_deployment=None,
        arrivals: Tuple[Tuple[str, Money], ...] = (),
        departures: Tuple[Tuple[str, Money], ...] = (),
    ) -> Tuple[EpochRecord, CostBreakdown, FrozenSet[str]]:
        """Price one asynchronous epoch; returns the epoch-end holdings.

        The epoch is cut at every landing instant into segments of
        constant live holdings.  When the single resulting segment
        already equals the decision's subset — instant builds, or an
        epoch with nothing in flight — accounting is delegated to the
        synchronous :meth:`_account`, which is what makes zero-latency
        parity exact rather than approximate.

        ``plan`` is the caller's already-computed
        ``inputs.plan_for(target)`` (reused, not recomputed);
        ``cancel_deployment`` is the deployment whose rates sunk
        compute is billed at — the pre-migration book on migration
        epochs, the epoch's own deployment otherwise.
        """
        target = decision.subset
        # -- segmentation: holdings only grow within an epoch ----------
        runs = []  # (start_month, end_month, holdings)
        seg_start = epoch.start_month
        holdings = live
        for completion in completions:
            month = min(completion.completed_month, epoch.end_month)
            if month > seg_start:
                runs.append((seg_start, month, holdings))
                seg_start = month
            holdings = holdings | {completion.job.view}
        if seg_start < epoch.end_month or not runs:
            runs.append((seg_start, epoch.end_month, holdings))
        live_at_end = holdings

        # -- ledger marks: only the asynchrony is worth narrating ------
        marks = list(described)
        marks += [
            BuildCancelled(
                epoch=epoch.index, view=c.job.view, month=c.cancelled_month
            ).describe()
            for c in cancellations
        ]
        marks += [
            BuildStarted(
                epoch=epoch.index, view=job.view, month=month
            ).describe()
            for job, month in delayed_starts
        ]
        marks += [
            BuildCompleted(
                epoch=epoch.index, view=c.job.view, month=c.completed_month
            ).describe()
            for c in completions
            if c.completed_month > epoch.start_month
        ]

        built = frozenset(c.job.view for c in completions)
        sunk_hours = sum(c.sunk_hours for c in cancellations)
        cancelled_names = tuple(sorted(c.job.view for c in cancellations))
        latency = sum(c.latency_months for c in completions)

        single_full = (
            len(runs) == 1
            and runs[0][2] == target
            and not sunk_hours
            and sum(c.job.hours for c in completions)
            == sum(
                hours
                for name, hours in zip(
                    sorted(target), plan.materialization_hours
                )
                if name in built
            )
        )
        if single_full:
            # The decision's subset was live for the whole period and
            # every landing was this epoch's own instant build: the
            # synchronous accounting applies verbatim (byte parity).
            record, breakdown = self._account(
                epoch.index, problem, target, built, dropped,
                decision.reoptimized, decision.regret, tuple(marks),
                migration_cost, migrated_to, plan=plan,
                arrivals=arrivals, departures=departures,
            )
            if cancelled_names or latency:
                record = replace(
                    record,
                    views_cancelled=cancelled_names,
                    build_latency_months=latency,
                )
            return record, breakdown, live_at_end

        # -- general path: prorated segments + completion billing ------
        fractions = tile_fractions(
            [end - start for start, end, _ in runs], epoch.months
        )
        operating = ZERO
        hours = 0.0
        segments = []
        breakdown = None
        for (start, end, held), fraction in zip(runs, fractions):
            breakdown = problem.evaluate(held).breakdown
            full = breakdown.total - breakdown.computing.materialization_cost
            operating = operating + (
                full if fraction == 1.0 else full * fraction
            )
            hours += breakdown.processing_hours * fraction
            segments.append(
                EpochSegment(
                    start_month=start,
                    months=end - start,
                    fraction=fraction,
                    subset=tuple(sorted(held)),
                )
            )
        inputs = problem.inputs
        build_cost = self._compute_bill(
            inputs.deployment, sum(c.job.hours for c in completions)
        )
        cancelled_cost = self._compute_bill(
            cancel_deployment if cancel_deployment is not None
            else inputs.deployment,
            sunk_hours,
        )
        if dropped and self._charge_teardown:
            dropped_gb = sum(
                inputs.view_stats[name].size_gb for name in dropped
            )
            teardown_cost = (
                inputs.deployment.provider.transfer.outbound_cost(dropped_gb)
            )
        else:
            teardown_cost = ZERO
        record = EpochRecord(
            epoch=epoch.index,
            subset=tuple(sorted(target)),
            operating_cost=operating,
            build_cost=build_cost,
            teardown_cost=teardown_cost,
            processing_hours=hours,
            views_built=tuple(sorted(built)),
            views_dropped=tuple(sorted(dropped)),
            reoptimized=decision.reoptimized,
            regret=decision.regret,
            events=tuple(marks),
            migration_cost=migration_cost,
            migrated_to=migrated_to,
            views_cancelled=cancelled_names,
            cancelled_cost=cancelled_cost,
            build_latency_months=latency,
            segments=tuple(segments),
            arrivals=arrivals,
            departures=departures,
        )
        return record, breakdown, live_at_end

    @staticmethod
    def _compute_bill(deployment, hours: float) -> Money:
        """Materialization compute for ``hours`` at ``deployment``'s rates.

        Billed through the same :func:`~repro.costmodel.computing.
        view_computing_cost` path the cost model uses, summed and
        rounded once per epoch — matching how the synchronous
        accounting rounds the views built together in one epoch.
        """
        if not hours:
            return ZERO
        return view_computing_cost(
            deployment.provider.compute,
            deployment.instance_type,
            deployment.n_instances,
            query_hours=(),
            materialization_hours=(hours,),
        ).materialization_cost

    def _settle_departure(
        self,
        state: WarehouseState,
        event: TenantDeparture,
        inputs: Optional[PlanningInputs] = None,
    ) -> Tuple[str, Money]:
        """Price a departing tenant's settlement export.

        The tenant's remaining result products — one copy of each
        query it still had — are exported at the book being left: the
        state as it stands *before* the departure applies (earlier
        same-epoch events, including migrations, have already acted).
        ``inputs`` may carry that state's already-priced inputs (the
        epoch loops reuse one pricing pass across consecutive
        departures — result sizes do not depend on the queries other
        departures removed).  A tenant whose queries all drifted away
        settles at zero.
        """
        if not event.names:
            return event.tenant, ZERO
        if inputs is None:
            inputs = self._builder.problem_for(state).inputs
        volume = sum(
            inputs.result_sizes_gb[name]
            for name in event.names
            if name in inputs.result_sizes_gb
        )
        if not volume:
            return event.tenant, ZERO
        cost = state.deployment.provider.transfer.outbound_cost(volume)
        return event.tenant, cost

    @staticmethod
    def _price_arrival(
        problem: SelectionProblem, event: TenantArrival
    ) -> Tuple[str, Money]:
        """Price an arriving tenant's onboarding load.

        One copy of each arriving query's result product is loaded
        into the warehouse at the post-events book's inbound rates.
        (The marginal *view* demand the arrival creates bills through
        the ordinary build path and the per-view user split.)
        """
        inputs = problem.inputs
        volume = sum(
            inputs.result_sizes_gb[query.name]
            for query in event.queries
            if query.name in inputs.result_sizes_gb
        )
        if not volume:
            return event.tenant, ZERO
        cost = inputs.deployment.provider.transfer.inbound_cost(volume)
        return event.tenant, cost

    @staticmethod
    def _migration_cost(
        source: Provider,
        target: Provider,
        problem: SelectionProblem,
        held: FrozenSet[str],
    ) -> Money:
        """Both transfer legs of a provider switch.

        The shipped volume is the dataset plus the views held going
        into the epoch (what physically exists to move); egress is
        billed on the source book, ingress on the target's.  View
        sizes are provider-independent, so the post-migration
        problem's statistics price them correctly.
        """
        inputs = problem.inputs
        volume = migration_volume_gb(
            inputs.dataset_gb,
            {name: inputs.view_stats[name].size_gb for name in sorted(held)},
        )
        egress, ingress = migration_transfer_cost(source, target, volume)
        return egress + ingress

    def compare(
        self, policies: Iterable[ReselectionPolicy]
    ) -> Dict[str, SimulationLedger]:
        """Run several policies over the same timeline, caches shared."""
        return compare_policies(self.run, policies)

    # -- epoch accounting ----------------------------------------------

    def _account(
        self,
        epoch_index: int,
        problem: SelectionProblem,
        subset: FrozenSet[str],
        built: FrozenSet[str],
        dropped: FrozenSet[str],
        reoptimized: bool,
        regret: float,
        events: Tuple[str, ...],
        migration_cost: Money = ZERO,
        migrated_to: "Optional[str]" = None,
        plan=None,
        arrivals: Tuple[Tuple[str, Money], ...] = (),
        departures: Tuple[Tuple[str, Money], ...] = (),
    ) -> Tuple[EpochRecord, CostBreakdown]:
        inputs = problem.inputs
        # The async path hands down the plan it already computed for
        # the same (problem, subset); the sync loop computes it here.
        if plan is None:
            plan = inputs.plan_for(subset)
        # plan_for orders per-view tuples by sorted view name; charge
        # materialization only for the views built this epoch.
        ordered = sorted(subset)
        epoch_plan = replace(
            plan,
            materialization_hours=tuple(
                hours if name in built else 0.0
                for name, hours in zip(ordered, plan.materialization_hours)
            ),
        )
        breakdown = problem.cost_model.evaluate(epoch_plan)
        build_cost = breakdown.computing.materialization_cost
        operating_cost = breakdown.total - build_cost
        if dropped and self._charge_teardown:
            dropped_gb = sum(
                inputs.view_stats[name].size_gb for name in dropped
            )
            teardown_cost = (
                inputs.deployment.provider.transfer.outbound_cost(dropped_gb)
            )
        else:
            teardown_cost = ZERO
        record = EpochRecord(
            epoch=epoch_index,
            subset=tuple(ordered),
            operating_cost=operating_cost,
            build_cost=build_cost,
            teardown_cost=teardown_cost,
            processing_hours=breakdown.processing_hours,
            views_built=tuple(sorted(built)),
            views_dropped=tuple(sorted(dropped)),
            reoptimized=reoptimized,
            regret=regret,
            events=events,
            migration_cost=migration_cost,
            migrated_to=migrated_to,
            arrivals=arrivals,
            departures=departures,
        )
        return record, breakdown
